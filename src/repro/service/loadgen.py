"""Load generator: many concurrent sessions against a running service.

Drives N client sessions from N threads (each its own TCP connection,
session and tenant), replays a deterministic per-session query schedule
drawn from the TPC-DS suite, and reports throughput (qps), latency
percentiles (p50/p95/p99, measured client-side over the full
request-to-answer round trip), the outcome mix (served vs. each rejection
reason vs. errors) and the digest of every served answer keyed by
(query, mode) — the hook the benchmark uses to assert served answers are
bit-identical to library-mode execution.

Used three ways: in-process by ``benchmarks/bench_service_load.py``, from
the CLI as ``repro loadgen`` (the CI service-smoke job), and as a minimal
example of writing a client.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import AdmissionRejected, GovernanceError, ProtocolError, ServiceError
from repro.service.client import ServiceClient

__all__ = ["LoadConfig", "LoadReport", "run_load", "percentile"]


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Exact q-quantile (nearest-rank) of a sample; None when empty."""
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one load run."""

    sessions: int = 100
    queries_per_session: int = 3
    #: Tenant names assigned round-robin across sessions.
    tenants: Sequence[str] = ("alpha", "beta", "gamma", "delta")
    #: Queries sampled (seeded) per request; None = server's full suite.
    query_names: Optional[Sequence[str]] = None
    mode: str = "quickr"
    #: Per-query deadline forwarded to the service; None = none.
    deadline_ms: Optional[float] = None
    #: Client-side wait bound per request (covers queue + execution).
    timeout_seconds: float = 120.0
    seed: int = 1


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    sessions: int
    requests: int = 0
    served: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    #: Served answers that rode the degradation ladder (reply.degraded).
    degraded: int = 0
    #: Queries ended by the governance contract, keyed by reason code
    #: (``deadline`` / ``budget`` / ``client-disconnect`` / ...).
    cancelled: Dict[str, int] = field(default_factory=dict)
    errors: int = 0
    protocol_errors: int = 0
    wall_seconds: float = 0.0
    #: Client-observed round-trip latencies of *served* requests (seconds).
    latencies: List[float] = field(default_factory=list)
    #: (query, mode) -> set of distinct served digests (1 = deterministic).
    digests: Dict[Any, set] = field(default_factory=dict)
    #: Server-side stats snapshot taken after the run.
    server_stats: Optional[Dict[str, Any]] = None

    @property
    def qps(self) -> float:
        return self.served / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_percentiles(self) -> Dict[str, Optional[float]]:
        return {
            "p50": percentile(self.latencies, 0.50),
            "p95": percentile(self.latencies, 0.95),
            "p99": percentile(self.latencies, 0.99),
            "max": max(self.latencies) if self.latencies else None,
        }

    def latency_histogram(self, num_buckets: int = 20) -> List[Dict[str, float]]:
        """Equal-width buckets over the observed latency range (for the CI
        artifact; exact percentiles above are the load-bearing numbers)."""
        if not self.latencies:
            return []
        low, high = min(self.latencies), max(self.latencies)
        width = (high - low) / num_buckets or 1e-9
        counts = [0] * num_buckets
        for value in self.latencies:
            counts[min(num_buckets - 1, int((value - low) / width))] += 1
        return [
            {"le_seconds": round(low + (i + 1) * width, 6), "count": counts[i]}
            for i in range(num_buckets)
        ]

    def summary(self) -> Dict[str, Any]:
        out = {
            "sessions": self.sessions,
            "requests": self.requests,
            "served": self.served,
            "rejected": dict(sorted(self.rejected.items())),
            "degraded": self.degraded,
            "cancelled": dict(sorted(self.cancelled.items())),
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "wall_seconds": round(self.wall_seconds, 3),
            "qps": round(self.qps, 2),
            "latency_seconds": {
                k: (round(v, 6) if v is not None else None)
                for k, v in self.latency_percentiles().items()
            },
            "distinct_digests_per_query": {
                f"{q}/{m}": len(d) for (q, m), d in sorted(self.digests.items())
            },
        }
        if self.server_stats is not None:
            admission = self.server_stats.get("admission", {})
            out["peak_queue_depth"] = admission.get("peak_queue_depth")
            out["max_queue_depth"] = admission.get("max_queue_depth")
        return out

    def write_json(self, path: str, **extra: Any) -> None:
        payload = {**self.summary(), **extra,
                   "latency_histogram": self.latency_histogram()}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)


def _session_worker(host: str, port: int, config: LoadConfig, index: int,
                    start_barrier: threading.Barrier, report: LoadReport,
                    lock: threading.Lock) -> None:
    tenant = config.tenants[index % len(config.tenants)]
    rng = random.Random(config.seed * 10_007 + index)
    try:
        client = ServiceClient(host, port, timeout=config.timeout_seconds)
    except OSError:
        with lock:
            report.errors += config.queries_per_session
            report.requests += config.queries_per_session
        start_barrier.wait()
        return
    try:
        client.hello(tenant=tenant, mode=config.mode)
        names = list(config.query_names or client.queries)
        start_barrier.wait()  # all sessions fire together
        for _ in range(config.queries_per_session):
            name = rng.choice(names)
            t0 = time.perf_counter()
            try:
                reply = client.query(name, deadline_ms=config.deadline_ms)
            except AdmissionRejected as exc:
                with lock:
                    report.requests += 1
                    report.rejected[exc.reason] = report.rejected.get(exc.reason, 0) + 1
                continue
            except GovernanceError as exc:
                reason = exc.reason_code
                with lock:
                    report.requests += 1
                    report.cancelled[reason] = report.cancelled.get(reason, 0) + 1
                continue
            except ProtocolError:
                with lock:
                    report.requests += 1
                    report.protocol_errors += 1
                continue
            except (ServiceError, OSError):
                with lock:
                    report.requests += 1
                    report.errors += 1
                continue
            latency = time.perf_counter() - t0
            with lock:
                report.requests += 1
                report.served += 1
                if reply.degraded is not None:
                    report.degraded += 1
                report.latencies.append(latency)
                report.digests.setdefault((name, config.mode), set()).add(reply.digest)
    except threading.BrokenBarrierError:
        pass
    finally:
        client.close()


def run_load(host: str, port: int, config: LoadConfig) -> LoadReport:
    """Run one load shape against a live server; returns the report."""
    report = LoadReport(sessions=config.sessions)
    lock = threading.Lock()
    barrier = threading.Barrier(config.sessions + 1, timeout=60.0)
    threads = [
        threading.Thread(
            target=_session_worker,
            args=(host, port, config, index, barrier, report, lock),
            name=f"loadgen-{index}",
            daemon=True,
        )
        for index in range(config.sessions)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()  # release every session at once
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - t0
    try:
        with ServiceClient(host, port, timeout=30.0) as probe:
            report.server_stats = probe.stats()
    except (ServiceError, OSError):
        pass
    return report
