"""The in-flight query governor: degrade accuracy, never availability.

Admission control decides whether a query may *start*; the governor is
the policy layer for queries already running. It owns two things:

* **The governance contract.** Every admitted ticket gets a
  :class:`~repro.engine.governance.GovernanceContext` — absolute
  monotonic deadline, memory budget, shared cancellation token — created
  at submit time (so a still-queued query is cancellable) and threaded
  through the engine, which polls it at every morsel/operator/task
  boundary.
* **The degradation ladder.** When that contract trips — or is clearly
  about to — the governor re-plans one rung down instead of failing the
  query, trading accuracy for an answer that arrives:

  ========================  ====================================================
  rung                      meaning
  ========================  ====================================================
  ``exact``                 the production QO, no samplers
  ``quickr``                ASALQA's sampled plan (the paper's normal mode)
  ``quickr-coarse``         the sampled plan with every *uniform* sampler's
                            rate multiplied down — same plan shape, fewer rows
  ``quickr-select``         the coarse plan plus *weighted partition
                            selection*: only ~``selection_fraction`` of the
                            catalog partitions run, rows reweighted by their
                            partition's inverse inclusion probability
                            (requires a partition catalog and a
                            uniform/universe-sampled plan)
  ``partial``               survivors-so-far: the parallel salvage path
                            reweights completed partitions (Horvitz-Thompson)
                            and widens the CIs; never re-planned, only reached
                            mid-flight
  ========================  ====================================================

  Only *uniform* samplers are coarsened: their ``1/p`` weight
  self-corrects, so any rate stays unbiased. Universe samplers are left
  alone — the rewrite's ``universe_rescale`` bakes the chosen ``p`` into
  COUNT-DISTINCT rescaling, so editing it after planning would bias the
  answer, which is exactly the kind of silent wrongness the ladder must
  never introduce.

Downgrade triggers, in the order they are checked:

* **pressure** (pre-flight) — the run queue is nearly full or the
  process's mapped shared memory is above the watermark; start one rung
  lower so the cluster sheds load by answering approximately rather than
  by queueing exactly.
* **infeasible-deadline** (pre-flight, re-checked between rungs) — the
  admission EWMA says this rung cannot finish inside the remaining
  budget; don't waste the attempt.
* **budget** (mid-flight) — the engine raised
  :class:`~repro.errors.BudgetExceeded`; a coarser sample has smaller
  intermediates, so step down and retry while the deadline allows.
* **deadline** (mid-flight) — never retried: an expired deadline would
  instantly re-trip on the first checkpoint of the retry. The parallel
  salvage path already turns this into a ``partial`` answer when the plan
  is degradable; otherwise the query fails as ``cancelled.deadline``.

Every downgrade is recorded in the reply (``degraded: {rung, reason,
ladder}``) and in ``service.governor.*`` metrics — a governed service
degrades *loudly*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.algebra.addressing import plan_fingerprint
from repro.algebra.logical import LogicalNode, SamplerNode
from repro.engine.governance import GovernanceContext
from repro.errors import BudgetExceeded
from repro.obs import log as obs_log
from repro.samplers.uniform import UniformSpec

_LOG = obs_log.logger("service.governor")

__all__ = ["RUNGS", "GovernorConfig", "QueryGovernor", "coarsen_samplers"]

#: The degradation ladder, most exact first. ``partial`` is terminal and
#: never planned for — it is what the parallel salvage path returns.
RUNGS = ("exact", "quickr", "quickr-coarse", "quickr-select", "partial")

#: Rungs the governor can actually plan and execute.
_PLANNABLE = RUNGS[:-1]


@dataclass(frozen=True)
class GovernorConfig:
    """Policy knobs of the in-flight governor."""

    #: Master switch; disabled = no GovernanceContext, PR-7 behavior.
    enabled: bool = True
    #: Memory budget applied to every query (live intermediate bytes per
    #: execution context); None = unbounded.
    default_memory_budget_bytes: Optional[int] = None
    #: Queue fill fraction above which new queries start one rung lower.
    queue_pressure_fraction: float = 0.75
    #: Process-mapped shared-memory bytes above which the same applies;
    #: None disables the memory watermark.
    memory_pressure_bytes: Optional[int] = None
    #: Multiplier applied to every uniform sampler's rate at the
    #: ``quickr-coarse`` rung.
    coarsen_factor: float = 0.25
    #: Floor under coarsening — a sampler never drops below this rate.
    min_sampler_p: float = 1e-4
    #: Expected fraction of catalog partitions executed at the
    #: ``quickr-select`` rung (the executor's weighted partition
    #: selection); rows are Horvitz-Thompson reweighted so estimates stay
    #: unbiased while CIs widen.
    selection_fraction: float = 0.5
    #: Maximum ladder steps one query may take (pre-flight + mid-flight).
    max_downgrades: int = 2
    #: Safety multiplier on the EWMA runtime estimate when judging whether
    #: a rung fits the remaining deadline budget.
    deadline_safety: float = 1.0


def coarsen_samplers(
    plan: LogicalNode, factor: float, min_p: float = 1e-4
) -> Tuple[LogicalNode, int]:
    """Rebuild ``plan`` with every uniform sampler's rate scaled by
    ``factor`` (floored at ``min_p``); returns ``(new_plan, changed)``.

    Non-uniform samplers pass through untouched (see the module docstring
    for why universe rates are frozen after planning). ``changed == 0``
    means the plan has no headroom at this rung — the caller should treat
    the rung as unavailable rather than re-run an identical plan.
    """
    changed = 0

    def rebuild(node: LogicalNode) -> LogicalNode:
        nonlocal changed
        if node.children:
            node = node.with_children([rebuild(child) for child in node.children])
        if isinstance(node, SamplerNode) and isinstance(node.spec, UniformSpec):
            new_p = max(float(min_p), node.spec.p * float(factor))
            if new_p < node.spec.p:
                changed += 1
                node = node.with_spec(UniformSpec(new_p, seed=node.spec.seed))
        return node

    return rebuild(plan), changed


class QueryGovernor:
    """Walks one admitted query down the degradation ladder.

    Shared by all service workers; stateless between queries apart from
    metrics. Collaborators are passed in (not reached through the service)
    so tests can drive the ladder directly.
    """

    def __init__(self, config, planner, executor, admission, registry):
        self.config = config
        self.planner = planner
        self.executor = executor
        self.admission = admission
        self.registry = registry

    # -- contract creation ----------------------------------------------------
    def governance_for(self, deadline_at: Optional[float]) -> GovernanceContext:
        """The per-query contract, created at submit time."""
        return GovernanceContext(
            deadline_at=deadline_at,
            memory_budget_bytes=self.config.default_memory_budget_bytes,
        )

    # -- pressure -------------------------------------------------------------
    def pressure_reason(self) -> Optional[str]:
        """Why the service is under pressure right now, or None."""
        depth = self.admission.queue_depth
        threshold = (
            self.config.queue_pressure_fraction
            * self.admission.config.max_queue_depth
        )
        if depth >= threshold:
            return f"queue depth {depth} >= {threshold:.0f}"
        if self.config.memory_pressure_bytes is not None:
            from repro.memory import memory_stats

            mapped = memory_stats().get("bytes_mapped", 0)
            if mapped >= self.config.memory_pressure_bytes:
                return (
                    f"mapped shared memory {mapped} B >= "
                    f"{self.config.memory_pressure_bytes} B"
                )
        return None

    # -- ladder mechanics -----------------------------------------------------
    @staticmethod
    def initial_rung(mode: str) -> str:
        return "exact" if mode == "exact" else "quickr"

    @staticmethod
    def next_rung(rung: str) -> Optional[str]:
        index = _PLANNABLE.index(rung)
        return _PLANNABLE[index + 1] if index + 1 < len(_PLANNABLE) else None

    def _step_down(self, rung: str, query) -> Optional[Tuple[str, LogicalNode]]:
        """The next rung *with an available plan* below ``rung``, walking
        past rungs that add nothing for this query (no uniform sampler to
        coarsen, no partition catalog to select from)."""
        stepped = self.next_rung(rung)
        while stepped is not None:
            plan = self._plan_for(stepped, query)
            if plan is not None:
                return stepped, plan
            stepped = self.next_rung(stepped)
        return None

    def _plan_for(self, rung: str, query) -> Optional[LogicalNode]:
        """The plan for one rung; None when the rung adds nothing (e.g. no
        uniform sampler left to coarsen)."""
        if rung == "exact":
            return self.planner.plan_baseline(query).plan
        if rung == "quickr":
            return self.planner.plan(query).plan
        if rung == "quickr-coarse":
            base = self.planner.plan(query).plan
            coarse, changed = coarsen_samplers(
                base, self.config.coarsen_factor, self.config.min_sampler_p
            )
            return coarse if changed else None
        if rung == "quickr-select":
            # Selection itself happens in the executor (driven by the
            # governance contract); the rung is only available when it can
            # actually fire: a partition catalog on the database and a
            # weighted (uniform/universe) sampled plan.
            database = getattr(self.executor, "database", None)
            if getattr(database, "partition_stats", None) is None:
                return None
            base = self.planner.plan(query).plan
            kinds = {
                node.spec.kind
                for node in base.walk()
                if isinstance(node, SamplerNode)
            }
            if not kinds & {"uniform", "universe"}:
                return None
            coarse, changed = coarsen_samplers(
                base, self.config.coarsen_factor, self.config.min_sampler_p
            )
            return coarse if changed else base
        raise ValueError(f"rung {rung!r} is not plannable")

    def _infeasible(self, rung: str, query_name: str,
                    ctx: GovernanceContext) -> Optional[str]:
        """Whether the EWMA says this rung cannot meet the deadline."""
        remaining = ctx.remaining_seconds()
        if remaining is None or remaining <= 0:
            return None  # no deadline / already expired: check() handles it
        mode = "exact" if rung == "exact" else "quickr"
        estimate = self.admission.estimator.estimate((query_name, mode))
        if estimate is not None and estimate * self.config.deadline_safety > remaining:
            return (
                f"estimated {estimate * 1000:.0f} ms exceeds remaining "
                f"{remaining * 1000:.0f} ms"
            )
        return None

    def _record_downgrade(self, ticket, ladder: List[Dict[str, str]],
                          from_rung: str, to_rung: str, reason: str) -> None:
        ladder.append({"from": from_rung, "to": to_rung, "reason": reason})
        self.registry.counter(
            "service.governor.downgrades", rung=to_rung, reason=reason
        ).inc()
        flight = getattr(ticket, "flight", None)
        if flight is not None:
            flight.note(
                "governor", "downgrade",
                from_rung=from_rung, to_rung=to_rung, reason=reason,
            )
        _LOG.info(
            "downgrading %s (%s): %s -> %s [%s]",
            ticket.query_name, ticket.tenant, from_rung, to_rung, reason,
        )

    # -- the ladder -----------------------------------------------------------
    def run(self, ticket, query) -> Tuple[Any, Optional[Dict[str, Any]]]:
        """Execute one ticket, stepping down the ladder as its contract
        demands; returns ``(result, degraded_info)``.

        ``degraded_info`` is None for an undegraded answer, else
        ``{"rung", "reason", "ladder"}`` — the rung actually served, the
        first downgrade's reason, and the full step list. Governance
        errors that cannot be absorbed (cancellation, an expired deadline
        with nothing salvageable, a budget trip at the bottom rung)
        propagate to the caller typed.
        """
        ctx = ticket.governance
        rung = self.initial_rung(ticket.mode)
        ladder: List[Dict[str, str]] = []

        pressure = self.pressure_reason()
        if pressure is not None:
            step = self._step_down(rung, query)
            if step is not None:
                self._record_downgrade(ticket, ladder, rung, step[0], "pressure")
                rung = step[0]

        while True:
            ctx.check()  # fail fast: queued-cancel or already-expired deadline
            if len(ladder) < self.config.max_downgrades:
                infeasible = self._infeasible(rung, ticket.query_name, ctx)
                if infeasible is not None:
                    step = self._step_down(rung, query)
                    if step is not None:
                        self._record_downgrade(
                            ticket, ladder, rung, step[0], "infeasible-deadline"
                        )
                        rung = step[0]
                        continue
            plan = self._plan_for(rung, query)
            if plan is None:
                # Every step guards plan availability, so this is only
                # reachable if the plan changed under us (it cannot: the
                # planner memoizes); kept as a defensive typed failure.
                raise BudgetExceeded(
                    f"no coarser plan available below rung {rung!r}"
                )
            flight = getattr(ticket, "flight", None)
            if flight is not None:
                flight.plan_fingerprint = plan_fingerprint(plan)
                flight.note(
                    "governor", "attempt",
                    rung=rung, fingerprint=flight.plan_fingerprint[:12],
                )
            ctx.selection_fraction = (
                self.config.selection_fraction if rung == "quickr-select" else None
            )
            try:
                result = self.executor.execute(plan, governance=ctx)
            except BudgetExceeded:
                step = self._step_down(rung, query)
                if (
                    step is None
                    or len(ladder) >= self.config.max_downgrades
                    or ctx.token.cancelled
                    or ctx.expired()
                ):
                    raise
                self._record_downgrade(ticket, ladder, rung, step[0], "budget")
                rung = step[0]
                continue
            break

        degraded_info: Optional[Dict[str, Any]] = None
        if result.degraded:
            # The engine salvaged survivors mid-flight: the terminal rung.
            reason = getattr(result, "abort_reason", None) or "partition-loss"
            self._record_downgrade(ticket, ladder, rung, "partial", reason)
            rung = "partial"
        if ladder:
            degraded_info = {
                "rung": rung,
                "reason": ladder[0]["reason"],
                "ladder": list(ladder),
            }
            self.registry.counter("service.governor.degraded_replies").inc()
        return result, degraded_info
