"""Concurrent query service: multi-session server over the shared engine.

Turns the single-caller library into a long-running service (the
ROADMAP's query-service layer, modeled on VerdictDB's client/server
split): a threaded TCP front-end speaking newline-delimited JSON
(:mod:`~repro.service.protocol`), per-connection sessions with tenant
identity and defaults (:mod:`~repro.service.session`), admission control
with backpressure, per-tenant quotas, deadline-aware drops and weighted
round-robin fair scheduling (:mod:`~repro.service.admission`) — all
multiplexed onto one shared :class:`~repro.engine.executor.Executor`,
``PlanCache`` and metrics registry (:mod:`~repro.service.server`).
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    QueryTicket,
    RuntimeEstimator,
    REJECT_BACKPRESSURE,
    REJECT_DEADLINE,
    REJECT_DRAINING,
    REJECT_QUOTA,
)
from repro.service.auditor import AuditorConfig, QueryAuditor
from repro.service.client import QueryReply, ServiceClient
from repro.service.governor import GovernorConfig, QueryGovernor, RUNGS, coarsen_samplers
from repro.service.loadgen import LoadConfig, LoadReport, run_load
from repro.service.server import QueryServer, QueryService, ServiceConfig
from repro.service.session import Session, SessionManager

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "QueryTicket",
    "RuntimeEstimator",
    "REJECT_BACKPRESSURE",
    "REJECT_DEADLINE",
    "REJECT_DRAINING",
    "REJECT_QUOTA",
    "AuditorConfig",
    "QueryAuditor",
    "GovernorConfig",
    "QueryGovernor",
    "RUNGS",
    "coarsen_samplers",
    "QueryReply",
    "ServiceClient",
    "LoadConfig",
    "LoadReport",
    "run_load",
    "QueryServer",
    "QueryService",
    "ServiceConfig",
    "Session",
    "SessionManager",
]
