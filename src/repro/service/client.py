"""Client library for the query service.

:class:`ServiceClient` is a thin blocking wrapper over one TCP connection:
``hello`` opens a session (tenant + defaults), ``query`` submits one query
and returns a :class:`QueryReply` with the reconstructed answer table —
digest-verified end to end — and the server's timing breakdown. Admission
rejections surface as :class:`~repro.errors.AdmissionRejected` with the
server's reason (``backpressure`` / ``quota`` / ``deadline``), so callers
can implement retry-with-backoff against explicit signals.

The client is intentionally one-request-at-a-time per connection;
concurrency comes from opening many sessions (each is cheap), which is
exactly how the load generator and the benchmark drive the server.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.engine.table import Table
from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    DeadlineExceeded,
    ProtocolError,
    QueryCancelled,
    ServiceError,
)
from repro.service import protocol

__all__ = ["QueryReply", "ServiceClient"]


@dataclass
class QueryReply:
    """One served answer, as seen from the client."""

    query: str
    mode: str
    table: Optional[Table]
    digest: str
    num_rows: int
    #: Server-side timing breakdown: queue_wait_ms, execute_ms, compile_ms,
    #: plan_cache_hit, degraded.
    stats: Dict[str, Any]
    session_id: str
    tenant: str
    #: None for a full-fidelity answer; otherwise the governor's ladder
    #: record ``{"rung", "reason", "ladder"}`` — the answer is still
    #: statistically valid (reweighted, CIs widened) but approximate.
    degraded: Optional[Dict[str, Any]] = None


class ServiceClient:
    """Blocking JSON-line client for one connection to the service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: Optional[float] = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = protocol.read_messages(self._sock)
        self._next_id = 0
        self.session_id: Optional[str] = None
        self.tenant: Optional[str] = None
        #: Query names the server advertised in the hello response.
        self.queries: tuple = ()

    # -- plumbing -------------------------------------------------------------
    def _call(self, op: str, **fields: Any) -> Dict[str, Any]:
        self._next_id += 1
        request_id = self._next_id
        protocol.send_message(self._sock, {"id": request_id, "op": op, **fields})
        try:
            response = next(self._reader)
        except StopIteration:
            raise ServiceError("server closed the connection") from None
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request {request_id}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            code = str(error.get("code", "unknown"))
            message = str(error.get("message", "unknown error"))
            if code.startswith("rejected."):
                raise AdmissionRejected(code.split(".", 1)[1], message)
            if code.startswith("cancelled."):
                reason = code.split(".", 1)[1]
                if reason == "deadline":
                    raise DeadlineExceeded(message)
                if reason == "budget":
                    raise BudgetExceeded(message)
                raise QueryCancelled(message, reason_code=reason)
            raise ServiceError(f"{code}: {message}")
        return response

    # -- session --------------------------------------------------------------
    def hello(self, tenant: str = "default", mode: str = "quickr",
              deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        defaults: Dict[str, Any] = {"mode": mode}
        if deadline_ms is not None:
            defaults["deadline_ms"] = deadline_ms
        response = self._call("hello", tenant=tenant, defaults=defaults)
        self.session_id = response["session_id"]
        self.tenant = response["tenant"]
        self.queries = tuple(response.get("queries", ()))
        return response

    # -- operations ------------------------------------------------------------
    def query(self, name: str, mode: Optional[str] = None,
              deadline_ms: Optional[float] = None) -> QueryReply:
        fields: Dict[str, Any] = {"query": name}
        if mode is not None:
            fields["mode"] = mode
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        response = self._call("query", **fields)
        wire = response["answer"]
        return QueryReply(
            query=response["query"],
            mode=response["mode"],
            table=protocol.table_from_wire(wire),
            digest=wire["digest"],
            num_rows=wire["num_rows"],
            stats=response.get("stats", {}),
            session_id=response.get("session_id", ""),
            tenant=response.get("tenant", ""),
            degraded=response.get("degraded"),
        )

    def ping(self) -> bool:
        return bool(self._call("ping").get("pong"))

    def stats(self) -> Dict[str, Any]:
        return self._call("stats")["stats"]

    def slo(self) -> Dict[str, Any]:
        """The server's accuracy/SLO ledger report (calibration + burn)."""
        return self._call("slo")["slo"]

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged before it goes down)."""
        self._call("shutdown")

    def close(self) -> None:
        try:
            self._call("close")
        except (ServiceError, OSError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
