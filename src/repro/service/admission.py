"""Admission control and fair scheduling for the query service.

A shared cluster serving ad-hoc queries (the paper's setting) dies by
queueing, not by CPU: without admission control a burst from one tenant
grows the run queue without bound, every query's latency inflates
together, and deadline-bearing queries waste machine-hours computing
answers nobody is still waiting for. This module implements the three
policies the service applies *before* a query touches the engine:

* **backpressure** — one bounded run queue in front of the shared worker
  pool. When it is full the service rejects instantly with
  ``rejected.backpressure``; the contract is an explicit "try again",
  never an unbounded queue or a hung connection (BlinkDB's bounded
  response-time contract applied at the front door).
* **per-tenant quotas** — a cap on each tenant's *outstanding* queries
  (queued + running). One tenant's burst exhausts its own quota and its
  excess is rejected with ``rejected.quota`` while other tenants' traffic
  is untouched.
* **deadline-aware drop** — a query carrying ``deadline_ms`` is admitted
  only while the deadline is feasible: at submit and again at dispatch
  (after its queue wait) the remaining budget is compared against an
  EWMA estimate of the query's runtime, learned online per (query, mode).
  Infeasible queries are dropped with ``rejected.deadline`` — cheaper to
  refuse than to compute an answer that arrives dead.

Dispatch across tenants is **smooth weighted round-robin** (the nginx
algorithm): each pick adds every backlogged tenant's weight to its
running credit, dispatches the largest credit, and charges the winner the
total active weight. Over any window, tenant throughput converges to the
weight ratio, with no tenant starved and no bursty interleaving.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import AdmissionRejected
from repro.obs import log as obs_log
from repro.obs.registry import MetricsRegistry

_LOG = obs_log.logger("service.admission")

__all__ = [
    "AdmissionConfig",
    "QueryTicket",
    "RuntimeEstimator",
    "AdmissionController",
    "REJECT_BACKPRESSURE",
    "REJECT_QUOTA",
    "REJECT_DEADLINE",
    "REJECT_DRAINING",
]

REJECT_BACKPRESSURE = "backpressure"
REJECT_QUOTA = "quota"
REJECT_DEADLINE = "deadline"
REJECT_DRAINING = "draining"


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller.

    ``max_queue_depth`` bounds *queued* (not yet running) queries across
    all tenants; ``tenant_quota`` bounds one tenant's outstanding queries
    (queued + running). ``tenant_weights`` feeds the weighted round-robin
    (missing tenants get ``default_weight``). ``deadline_safety`` inflates
    the runtime estimate when judging feasibility, biasing toward
    admitting (a dropped query is work refused; an admitted one that
    misses its deadline is merely late).
    """

    max_queue_depth: int = 64
    tenant_quota: int = 16
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    deadline_safety: float = 1.0
    #: EWMA smoothing for the per-(query, mode) runtime estimate.
    ewma_alpha: float = 0.3

    def weight_of(self, tenant: str) -> float:
        return float(self.tenant_weights.get(tenant, self.default_weight))


class QueryTicket:
    """One admitted (or rejected) query's journey through the service.

    The connection thread submits and blocks on :meth:`wait`; a worker
    thread resolves with a result, a rejection, or a failure. The ticket
    carries the timing breakdown (queue wait vs execution) the service
    reports back to the client.
    """

    __slots__ = (
        "session", "tenant", "query_name", "mode", "deadline_at",
        "enqueued_at", "dispatched_at", "completed_at",
        "_done", "result", "error", "rejection", "queue_span", "queue_tracer",
        "governance", "flight",
    )

    def __init__(self, session, query_name: str, mode: str,
                 deadline_at: Optional[float] = None, governance=None):
        self.session = session
        self.tenant: str = session.tenant
        self.query_name = query_name
        self.mode = mode
        #: Absolute monotonic deadline; None = run whenever.
        self.deadline_at = deadline_at
        #: In-flight contract (:class:`~repro.engine.governance.GovernanceContext`);
        #: attached at submit so even a still-queued query is cancellable.
        self.governance = governance
        self.enqueued_at = time.monotonic()
        self.dispatched_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._done = threading.Event()
        self.result: Optional[Any] = None
        self.error: Optional[BaseException] = None
        self.rejection: Optional[AdmissionRejected] = None
        #: Open ``service.queue_wait`` span, ended at dispatch/drop, and
        #: the tracer that opened it (the worker ends cross-thread).
        self.queue_span = None
        self.queue_tracer = None
        #: Flight-recorder record (:class:`repro.obs.flight.QueryRecord`)
        #: when the service runs one; every layer notes decisions into it.
        self.flight = None

    # -- completion (worker side) -------------------------------------------
    def resolve(self, result: Any) -> None:
        self.result = result
        self.completed_at = time.monotonic()
        self._done.set()

    def reject(self, reason: str, message: str) -> None:
        self.rejection = AdmissionRejected(reason, message)
        self.completed_at = time.monotonic()
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.completed_at = time.monotonic()
        self._done.set()

    def cancel(self, reason: str) -> bool:
        """Fire the governance token (no-op without a contract).

        The engine unwinds at its next cooperative checkpoint and the
        worker then fails the ticket with the typed governance error —
        this call only requests, never completes."""
        if self.governance is None:
            return False
        return self.governance.token.cancel(reason)

    def close_queue_span(self, status: str = "ok", **attributes: Any) -> None:
        """End the open ``service.queue_wait`` span, if tracing is on."""
        if self.queue_span is not None and self.queue_tracer is not None:
            self.queue_tracer.end(self.queue_span, status=status, **attributes)
        self.queue_span = None

    # -- waiting (connection side) ------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    @property
    def queue_wait_seconds(self) -> float:
        end = self.dispatched_at if self.dispatched_at is not None else self.completed_at
        if end is None:
            end = time.monotonic()
        return max(0.0, end - self.enqueued_at)

    def remaining_seconds(self, now: Optional[float] = None) -> Optional[float]:
        if self.deadline_at is None:
            return None
        return self.deadline_at - (now if now is not None else time.monotonic())


class RuntimeEstimator:
    """Online EWMA of execution time per (query, mode).

    The deadline policy needs *some* forward estimate; an EWMA of observed
    runtimes is self-calibrating (warm plan caches shrink it, load-induced
    slowdown grows it) and costs one dict lookup. Unknown queries return
    ``None`` — they are admitted on deadline alone, and their first
    execution seeds the estimate.
    """

    def __init__(self, alpha: float = 0.3):
        self.alpha = float(alpha)
        self._lock = threading.Lock()
        self._ewma: Dict[Any, float] = {}

    def observe(self, key: Any, seconds: float) -> None:
        with self._lock:
            previous = self._ewma.get(key)
            self._ewma[key] = (
                seconds if previous is None
                else self.alpha * seconds + (1.0 - self.alpha) * previous
            )

    def estimate(self, key: Any) -> Optional[float]:
        with self._lock:
            return self._ewma.get(key)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {str(k): v for k, v in self._ewma.items()}


class _TenantQueue:
    __slots__ = ("tenant", "weight", "credit", "queue", "running")

    def __init__(self, tenant: str, weight: float):
        self.tenant = tenant
        self.weight = weight
        #: Smooth-WRR running credit.
        self.credit = 0.0
        self.queue: List[QueryTicket] = []
        #: Dispatched-but-not-finished count (quota accounting).
        self.running = 0

    @property
    def outstanding(self) -> int:
        return len(self.queue) + self.running


class AdmissionController:
    """Bounded, tenant-fair run queue in front of the shared engine.

    ``submit`` is called by connection threads and either enqueues the
    ticket or raises :class:`AdmissionRejected`; ``next_ticket`` is called
    by worker threads and blocks for the next dispatchable ticket,
    applying the weighted round-robin and dropping newly-infeasible
    deadline queries on the way; ``task_done`` returns the tenant's quota
    slot and feeds the runtime estimator.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or AdmissionConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.estimator = RuntimeEstimator(alpha=self.config.ewma_alpha)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._tenants: Dict[str, _TenantQueue] = {}
        self._queued_total = 0
        self._closed = False
        self._draining = False
        #: Tickets dispatched to workers and not yet finished — the set a
        #: drain cancels when the grace period runs out.
        self._running_tickets: List[QueryTicket] = []
        # Peak queue depth since start — the boundedness evidence the
        # load benchmark and the CI smoke assert on.
        self.peak_queue_depth = 0

    # -- submit side ---------------------------------------------------------
    def submit(self, ticket: QueryTicket) -> None:
        """Enqueue or raise :class:`AdmissionRejected` (never blocks)."""
        config = self.config
        reason = message = None
        with self._ready:
            if self._closed:
                reason, message = REJECT_BACKPRESSURE, "service is shutting down"
            elif self._draining:
                reason, message = REJECT_DRAINING, (
                    "service is draining: finishing in-flight queries, "
                    "not admitting new ones"
                )
            elif self._queued_total >= config.max_queue_depth:
                reason, message = REJECT_BACKPRESSURE, (
                    f"run queue is full ({self._queued_total}/{config.max_queue_depth})"
                )
            else:
                tenant = self._tenants.get(ticket.tenant)
                if tenant is None:
                    tenant = _TenantQueue(ticket.tenant, config.weight_of(ticket.tenant))
                    self._tenants[ticket.tenant] = tenant
                if tenant.outstanding >= config.tenant_quota:
                    reason, message = REJECT_QUOTA, (
                        f"tenant {ticket.tenant!r} has {tenant.outstanding} queries "
                        f"outstanding (quota {config.tenant_quota})"
                    )
                else:
                    infeasible = self._deadline_infeasible(ticket)
                    if infeasible:
                        reason, message = REJECT_DEADLINE, infeasible
                    else:
                        tenant.queue.append(ticket)
                        self._queued_total += 1
                        if self._queued_total > self.peak_queue_depth:
                            self.peak_queue_depth = self._queued_total
                        self._ready.notify()
        self._observe_queue_depth()
        if reason is not None:
            self._count_rejection(ticket, reason)
            raise AdmissionRejected(reason, message)
        self.registry.counter("service.admitted", tenant=ticket.tenant).inc()

    def _deadline_infeasible(self, ticket: QueryTicket,
                             now: Optional[float] = None) -> Optional[str]:
        """A human-readable reason when the deadline cannot be met, else None."""
        remaining = ticket.remaining_seconds(now)
        if remaining is None:
            return None
        if remaining <= 0:
            return (f"deadline already expired "
                    f"({-remaining * 1000:.0f} ms ago)")
        estimate = self.estimator.estimate((ticket.query_name, ticket.mode))
        if estimate is not None and estimate * self.config.deadline_safety > remaining:
            return (f"estimated runtime {estimate * 1000:.0f} ms exceeds the "
                    f"remaining deadline budget {remaining * 1000:.0f} ms")
        return None

    # -- dispatch side -------------------------------------------------------
    def next_ticket(self, timeout: Optional[float] = None) -> Optional[QueryTicket]:
        """Next ticket by weighted round-robin; None on timeout/shutdown.

        Tickets whose deadline became infeasible while queued are rejected
        here (their waiters unblock with ``rejected.deadline``) and do not
        occupy a worker.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            dropped: List[QueryTicket] = []
            ticket = None
            with self._ready:
                while self._queued_total == 0 and not self._closed:
                    wait = None if deadline is None else deadline - time.monotonic()
                    if wait is not None and wait <= 0:
                        break
                    self._ready.wait(wait)
                if self._queued_total == 0:
                    return None
                ticket = self._pick_locked(dropped)
            self._observe_queue_depth()
            for drop in dropped:
                self._finish_drop(drop)
            if ticket is not None:
                return ticket
            # Everything queued was dropped; go back to waiting.
            if self._closed:
                return None

    def _pick_locked(self, dropped: List[QueryTicket]) -> Optional[QueryTicket]:
        """One smooth-WRR pick; moves infeasible tickets into ``dropped``."""
        now = time.monotonic()
        while self._queued_total > 0:
            active = [t for t in self._tenants.values() if t.queue]
            total_weight = sum(t.weight for t in active)
            for tenant in active:
                tenant.credit += tenant.weight
            winner = max(active, key=lambda t: (t.credit, t.tenant))
            winner.credit -= total_weight
            ticket = winner.queue.pop(0)
            self._queued_total -= 1
            infeasible = self._deadline_infeasible(ticket, now)
            if infeasible is None:
                winner.running += 1
                ticket.dispatched_at = time.monotonic()
                self._running_tickets.append(ticket)
                return ticket
            ticket.rejection = AdmissionRejected(
                REJECT_DEADLINE, f"dropped after queueing: {infeasible}"
            )
            dropped.append(ticket)
        return None

    def _finish_drop(self, ticket: QueryTicket) -> None:
        rejection = ticket.rejection
        self._count_rejection(ticket, rejection.reason)
        _LOG.info("dropped %s for tenant %s: %s",
                  ticket.query_name, ticket.tenant, rejection)
        if ticket.flight is not None:
            ticket.flight.note(
                "admission", "queued-drop",
                reason=rejection.reason, detail=str(rejection),
            )
        ticket.close_queue_span(status="cancelled", reason=rejection.reason)
        ticket.reject(rejection.reason, str(rejection))

    def task_done(self, ticket: QueryTicket, execute_seconds: Optional[float]) -> None:
        """Return the quota slot; feed the runtime estimator on success."""
        with self._ready:
            tenant = self._tenants.get(ticket.tenant)
            if tenant is not None and tenant.running > 0:
                tenant.running -= 1
            if ticket in self._running_tickets:
                self._running_tickets.remove(ticket)
        if execute_seconds is not None:
            self.estimator.observe((ticket.query_name, ticket.mode), execute_seconds)
        self.registry.histogram(
            "service.queue_wait_seconds", tenant=ticket.tenant
        ).observe(ticket.queue_wait_seconds)

    # -- drain / shutdown / introspection -------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting (``rejected.draining``) while workers keep
        serving what is already queued and running."""
        with self._ready:
            self._draining = True
        _LOG.info("draining: admission closed, %d queued, %d running",
                  self.queue_depth, len(self.running_tickets()))

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def running_tickets(self) -> List[QueryTicket]:
        """Snapshot of dispatched-but-unfinished tickets."""
        with self._lock:
            return list(self._running_tickets)

    def wait_idle(self, timeout: float, poll_seconds: float = 0.02) -> bool:
        """Block until nothing is queued or running, or ``timeout`` passes."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                idle = self._queued_total == 0 and not self._running_tickets
            if idle:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_seconds)

    def close(self) -> List[QueryTicket]:
        """Stop admitting; drain and return still-queued tickets (already
        rejected with backpressure so their waiters unblock)."""
        with self._ready:
            self._closed = True
            drained: List[QueryTicket] = []
            for tenant in self._tenants.values():
                drained.extend(tenant.queue)
                tenant.queue.clear()
            self._queued_total = 0
            self._ready.notify_all()
        for ticket in drained:
            self._count_rejection(ticket, REJECT_BACKPRESSURE)
            ticket.close_queue_span(status="cancelled", reason="shutdown")
            ticket.reject(REJECT_BACKPRESSURE, "service is shutting down")
        return drained

    def _count_rejection(self, ticket: QueryTicket, reason: str) -> None:
        self.registry.counter(
            "service.rejected", tenant=ticket.tenant, reason=reason
        ).inc()

    def _observe_queue_depth(self) -> None:
        self.registry.gauge("service.queue_depth").set(float(self.queue_depth))

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued_total

    def outstanding(self, tenant: str) -> int:
        with self._lock:
            entry = self._tenants.get(tenant)
            return entry.outstanding if entry is not None else 0

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            tenants = {
                name: {
                    "weight": entry.weight,
                    "queued": len(entry.queue),
                    "running": entry.running,
                }
                for name, entry in sorted(self._tenants.items())
            }
            return {
                "queue_depth": self._queued_total,
                "draining": self._draining,
                "running": len(self._running_tickets),
                "peak_queue_depth": self.peak_queue_depth,
                "max_queue_depth": self.config.max_queue_depth,
                "tenant_quota": self.config.tenant_quota,
                "tenants": tenants,
            }


def drain_worker(controller: AdmissionController,
                 handler: Callable[[QueryTicket], Optional[float]],
                 poll_seconds: float = 0.1) -> None:
    """Worker-thread loop: pull tickets until the controller closes.

    ``handler`` executes one ticket, resolves/fails it, and returns the
    execution seconds to feed the runtime estimator (None on failure).
    Exceptions escaping the handler fail the ticket rather than killing
    the worker; either way ``task_done`` runs exactly once per ticket.
    """
    while True:
        ticket = controller.next_ticket(timeout=poll_seconds)
        if ticket is None:
            if controller._closed:
                return
            continue
        execute_seconds = None
        try:
            execute_seconds = handler(ticket)
        except BaseException as exc:  # noqa: BLE001 - worker must survive
            _LOG.error("handler failed for %s: %s", ticket.query_name, exc)
            if not ticket._done.is_set():
                ticket.fail(exc)
        finally:
            controller.task_done(ticket, execute_seconds)
