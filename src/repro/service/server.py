"""The query service: a long-running, multi-session server over the engine.

Two layers:

* :class:`QueryService` — transport-free core. Owns the shared engine
  stack (one :class:`~repro.optimizer.planner.QuickrPlanner`, one
  :class:`~repro.engine.executor.Executor` and therefore one
  ``PlanCache``, one :class:`~repro.obs.registry.MetricsRegistry`), the
  session registry and the admission controller, plus the pool of worker
  threads that drain the run queue. Tests and the in-process load
  benchmark drive this directly.
* :class:`QueryServer` — the TCP front-end. A listener thread accepts
  connections; each connection gets a reader thread that decodes
  JSON-line requests (:mod:`repro.service.protocol`), routes them through
  the service, and writes responses. Many concurrent clients multiplex
  onto the one shared engine underneath — the paper's setting of ad-hoc
  queries continuously arriving at a shared cluster.

Every query passes ``service.admit`` (admission decision),
``service.queue_wait`` (run-queue residency) and ``service.execute``
(engine time) spans, labeled with session and tenant, and the registry
gains ``service.*`` counters/histograms with tenant labels — so one trace
shows a query's whole life from socket to answer.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.executor import Executor
from repro.engine.table import Database
from repro.errors import AdmissionRejected, GovernanceError, ProtocolError, ReproError
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.obs.accuracy import AccuracyLedger
from repro.obs.export import MetricsHTTPServer, TelemetrySnapshotWriter
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.optimizer.planner import QuickrPlanner
from repro.service import protocol
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    QueryTicket,
    drain_worker,
)
from repro.service.auditor import AuditorConfig, QueryAuditor
from repro.service.governor import GovernorConfig, QueryGovernor
from repro.service.session import DEFAULT_TENANT, MODES, Session, SessionManager

_LOG = obs_log.logger("service.server")

__all__ = ["ServiceConfig", "QueryService", "QueryServer"]


@dataclass
class ServiceConfig:
    """Service-level knobs (engine knobs ride on the Executor itself)."""

    #: Worker threads draining the shared run queue.
    num_workers: int = 4
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: In-flight governance policy (deadlines, budgets, degradation ladder).
    governor: GovernorConfig = field(default_factory=GovernorConfig)
    #: Include full answer rows in responses (False = digest only).
    include_rows: bool = True
    #: Hard cap on rows serialized into one response.
    max_result_rows: int = 100_000
    #: Grace given to in-flight queries on shutdown before their tokens
    #: are fired (``shutdown-drain``).
    drain_seconds: float = 5.0
    #: Per-connection socket read timeout — the slow-loris guard: a peer
    #: that stalls mid-frame (or goes silent) longer than this is
    #: disconnected cleanly instead of pinning a reader thread forever.
    #: None disables.
    idle_timeout_seconds: Optional[float] = 300.0
    #: Per-connection frame-size cap (protocol robustness guard).
    max_frame_bytes: int = protocol.MAX_LINE_BYTES
    # -- telemetry plane -----------------------------------------------------
    #: Port of the ``/metrics`` + ``/healthz`` scrape endpoint; None
    #: disables the HTTP exporter.
    metrics_port: Optional[int] = None
    metrics_host: str = "127.0.0.1"
    #: Path of the periodic JSONL telemetry snapshot stream; None disables.
    telemetry_path: Optional[str] = None
    telemetry_interval_seconds: float = 10.0
    #: Directory postmortem bundles are written into; None keeps the
    #: flight-recorder ring in memory only (nothing touches disk).
    postmortem_dir: Optional[str] = None
    #: Flight-recorder ring size (recent queries kept in memory).
    flight_capacity: int = 256
    #: On-disk postmortem retention: oldest bundles deleted past this.
    max_postmortems: int = 16
    #: Background exact-replay accuracy auditor (off by default; the CLI's
    #: ``--audit-fraction`` turns it on).
    audit: AuditorConfig = field(
        default_factory=lambda: AuditorConfig(enabled=False)
    )
    #: Per-tenant latency SLO fed to the accuracy/SLO ledger; None tracks
    #: only cancellations as violations.
    latency_slo_ms: Optional[float] = None
    #: SLO target (0.99 = a 1% error budget).
    slo_target: float = 0.99


class QueryService:
    """Transport-free service core: sessions + admission + shared engine."""

    def __init__(
        self,
        database: Database,
        config: Optional[ServiceConfig] = None,
        executor: Optional[Executor] = None,
        planner: Optional[QuickrPlanner] = None,
        registry: Optional[MetricsRegistry] = None,
        query_builders: Optional[Dict[str, Any]] = None,
    ):
        self.config = config or ServiceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.database = database
        self.executor = executor if executor is not None else Executor(
            database, registry=self.registry
        )
        self.planner = planner if planner is not None else QuickrPlanner(database)
        self.sessions = SessionManager()
        self.admission = AdmissionController(self.config.admission, self.registry)
        self.governor = QueryGovernor(
            self.config.governor, self.planner, self.executor,
            self.admission, self.registry,
        )
        self._workers: List[threading.Thread] = []
        self._started = False
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        if query_builders is not None:
            self._query_builders = dict(query_builders)
        else:
            from repro.workloads.tpcds import QUERY_BUILDERS

            self._query_builders = dict(QUERY_BUILDERS)
        # Telemetry plane: flight recorder, accuracy/SLO ledger, auditor,
        # and (lazily started) scrape endpoint + snapshot writer.
        self.flight = FlightRecorder(
            capacity=self.config.flight_capacity,
            dump_dir=self.config.postmortem_dir,
            max_bundles=self.config.max_postmortems,
        )
        self.ledger = AccuracyLedger(
            self.registry,
            latency_slo_ms=self.config.latency_slo_ms,
            slo_target=self.config.slo_target,
        )
        self.auditor = QueryAuditor(
            self.config.audit, self.planner, self.executor, self.admission,
            self.ledger, self.registry, self._query_builders, self.database,
        )
        self._metrics_server: Optional[MetricsHTTPServer] = None
        self._telemetry: Optional[TelemetrySnapshotWriter] = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "QueryService":
        with self._lifecycle_lock:
            if self._started:
                return self
            self._started = True
            for index in range(self.config.num_workers):
                thread = threading.Thread(
                    target=drain_worker,
                    args=(self.admission, self._handle_ticket),
                    name=f"service-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._workers.append(thread)
            self.auditor.start()
            if self.config.metrics_port is not None and self._metrics_server is None:
                self._metrics_server = MetricsHTTPServer(
                    self.registry,
                    host=self.config.metrics_host,
                    port=self.config.metrics_port,
                    extra=self._health_extra,
                ).start()
            if self.config.telemetry_path is not None and self._telemetry is None:
                self._telemetry = TelemetrySnapshotWriter(
                    self.registry,
                    self.config.telemetry_path,
                    interval_seconds=self.config.telemetry_interval_seconds,
                    extra=self._health_extra,
                ).start()
        _LOG.info("service started with %d workers", len(self._workers))
        return self

    def _health_extra(self) -> Dict[str, Any]:
        return {
            "queue_depth": self.admission.queue_depth,
            "draining": self.admission.draining,
            "audit_backlog": self.auditor.backlog,
        }

    def close(self) -> None:
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        self.admission.close()
        for thread in self._workers:
            thread.join(timeout=10.0)
        self.auditor.close()
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        if self._telemetry is not None:
            self._telemetry.close()
            self._telemetry = None
        _LOG.info("service closed")

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting (``rejected.draining``), let
        in-flight and queued queries finish for ``grace_seconds``, then
        fire the stragglers' cancellation tokens and close.

        Returns True when everything finished inside the grace period
        (nothing had to be cancelled)."""
        grace = self.config.drain_seconds if grace_seconds is None else grace_seconds
        self.admission.begin_drain()
        finished = self.admission.wait_idle(max(0.0, grace))
        if not finished:
            stragglers = self.admission.running_tickets()
            for ticket in stragglers:
                if ticket.cancel("shutdown-drain"):
                    self.registry.counter(
                        "service.governor.cancelled", reason="shutdown-drain"
                    ).inc()
            _LOG.warning(
                "drain grace (%.1fs) expired; cancelled %d in-flight queries",
                grace, len(stragglers),
            )
            # Bounded wait for the engine to unwind at its checkpoints.
            self.admission.wait_idle(10.0)
        self.close()
        return finished

    @property
    def query_names(self) -> Tuple[str, ...]:
        return tuple(self._query_builders)

    # -- session ops ---------------------------------------------------------
    def open_session(
        self,
        tenant: str = DEFAULT_TENANT,
        default_mode: str = "quickr",
        default_deadline_ms: Optional[float] = None,
    ) -> Session:
        session = self.sessions.open(tenant, default_mode, default_deadline_ms)
        self.registry.counter("service.sessions", tenant=session.tenant).inc()
        return session

    # -- query path ----------------------------------------------------------
    def submit(
        self,
        session: Session,
        query_name: str,
        mode: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> QueryTicket:
        """Admission-check and enqueue one query; raises
        :class:`AdmissionRejected` or :class:`ProtocolError` immediately,
        otherwise returns the ticket to wait on."""
        resolved_mode = session.resolve_mode(mode)
        if resolved_mode not in MODES:
            raise ProtocolError(f"unknown mode {resolved_mode!r}; expected one of {MODES}")
        if query_name not in self._query_builders:
            raise ProtocolError(
                f"unknown query {query_name!r}; available: "
                f"{', '.join(self._query_builders)}"
            )
        resolved_deadline = session.resolve_deadline_ms(deadline_ms)
        deadline_at = (
            time.monotonic() + resolved_deadline / 1000.0
            if resolved_deadline is not None else None
        )
        session.record_submitted()
        self.registry.counter("service.requests", tenant=session.tenant).inc()
        # Live traffic always outranks the background auditor: a replay in
        # flight yields at its next engine checkpoint and requeues.
        self.auditor.preempt()
        governance = (
            self.governor.governance_for(deadline_at)
            if self.config.governor.enabled else None
        )
        ticket = QueryTicket(
            session, query_name, resolved_mode, deadline_at, governance=governance
        )
        ticket.flight = self.flight.record(
            session.session_id, session.tenant, query_name, resolved_mode,
            deadline_ms=resolved_deadline,
        )
        tracer = obs_trace.current_tracer()
        admit_span = (
            tracer.begin("service.admit", session=session.session_id,
                         tenant=session.tenant, query=query_name, mode=resolved_mode)
            if tracer is not None else None
        )
        try:
            self.admission.submit(ticket)
        except AdmissionRejected as exc:
            session.record_rejected()
            ticket.flight.note("admission", "rejected",
                               reason=exc.reason, detail=str(exc))
            self.flight.finish(ticket.flight, f"rejected.{exc.reason}")
            if admit_span is not None:
                tracer.end(admit_span, status="rejected", reason=exc.reason)
            raise
        ticket.flight.note("admission", "admitted",
                           queue_depth=self.admission.queue_depth)
        if admit_span is not None:
            tracer.end(admit_span, queue_depth=self.admission.queue_depth)
        if tracer is not None:
            ticket.queue_span = tracer.begin(
                "service.queue_wait", parent_id=admit_span.span_id if admit_span else None,
                session=session.session_id, tenant=session.tenant, query=query_name,
            )
            ticket.queue_tracer = tracer
        return ticket

    def execute(
        self,
        session: Session,
        query_name: str,
        mode: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit and wait; returns the response payload dict.

        This is the one call a connection thread makes per query request.
        Raises :class:`AdmissionRejected` on rejection/drop, re-raises the
        engine's error on execution failure.
        """
        ticket = self.submit(session, query_name, mode, deadline_ms)
        if not ticket.wait(timeout):
            raise ReproError(f"query {query_name!r} timed out waiting for the service")
        if ticket.rejection is not None:
            session.record_rejected()
            raise ticket.rejection
        if ticket.error is not None:
            if not isinstance(ticket.error, GovernanceError):
                # Governance endings were already recorded as cancelled
                # by the worker; don't double-book them as failures.
                session.record_failed()
            raise ticket.error
        return ticket.result

    def _capture_spans(self, ticket: QueryTicket, query_tracer, previous) -> None:
        """End per-query span capture: pop the override, store the buffer
        in the flight record, and splice it back into whatever tracer was
        active before (so ``--trace`` output is unchanged)."""
        obs_trace.pop_override(previous)
        spans = query_tracer.buffer()
        if ticket.flight is not None:
            ticket.flight.spans = spans
        target = obs_trace.current_tracer()
        if target is not None and target is not query_tracer:
            target.adopt(spans)

    def _finish_query(self, ticket: QueryTicket, outcome: str,
                      latency_seconds: Optional[float], cancelled: bool) -> None:
        """Terminal bookkeeping of one dispatched query: feed the SLO
        ledger, snapshot the governance ticket into the flight record, and
        dump a postmortem bundle when the ending was bad."""
        self.ledger.record_request(
            ticket.tenant, latency_seconds, cancelled=cancelled
        )
        record = ticket.flight
        if record is None:
            return
        ctx = ticket.governance
        if ctx is not None:
            record.governance = {
                "checks": ctx.checks,
                "peak_live_bytes": ctx.peak_live_bytes,
                "memory_budget_bytes": ctx.memory_budget_bytes,
                "deadline_at": ctx.deadline_at,
                "cancelled": ctx.token.cancelled,
                "cancel_reason": ctx.token.reason,
            }
        snapshot = (
            self.registry.snapshot()
            if self.flight.dump_dir is not None and self.flight.should_dump(outcome)
            else None
        )
        self.flight.finish(record, outcome, snapshot)

    def _handle_ticket(self, ticket: QueryTicket) -> Optional[float]:
        """Worker-side execution of one admitted ticket."""
        ticket.close_queue_span(wait_seconds=round(ticket.queue_wait_seconds, 6))
        session = ticket.session
        record = ticket.flight
        if record is not None:
            record.note(
                "service", "dispatch",
                queue_wait_ms=round(ticket.queue_wait_seconds * 1000.0, 3),
            )
        t0 = time.perf_counter()
        degraded_info: Optional[Dict[str, Any]] = None
        # Execution records into a private per-query tracer so the flight
        # record gets exactly this query's spans even when several workers
        # interleave; _capture_spans splices them back afterwards.
        query_tracer = obs_trace.Tracer(
            name=f"query-{record.query_id if record is not None else 0}"
        )
        previous = obs_trace.push_override(query_tracer)
        try:
            with obs_trace.maybe_span(
                "service.execute", session=session.session_id, tenant=ticket.tenant,
                query=ticket.query_name, mode=ticket.mode,
            ):
                query = self._query_builders[ticket.query_name](self.database)
                if ticket.governance is not None:
                    result, degraded_info = self.governor.run(ticket, query)
                else:
                    if ticket.mode == "exact":
                        plan = self.planner.plan_baseline(query).plan
                    else:
                        plan = self.planner.plan(query).plan
                    result = self.executor.execute(plan)
        except GovernanceError as exc:
            # The contract fired and nothing was salvageable: the query is
            # over, typed — never a hang, never a worker kept busy.
            self._capture_spans(ticket, query_tracer, previous)
            session.record_cancelled()
            self.registry.counter(
                "service.governor.cancelled", reason=exc.reason_code
            ).inc()
            self._finish_query(
                ticket, f"cancelled.{exc.reason_code}",
                ticket.queue_wait_seconds + (time.perf_counter() - t0),
                cancelled=True,
            )
            ticket.fail(exc)
            return None
        except BaseException as exc:  # noqa: BLE001 - reported to the client
            self._capture_spans(ticket, query_tracer, previous)
            session.record_failed()
            self._finish_query(
                ticket, "failed",
                ticket.queue_wait_seconds + (time.perf_counter() - t0),
                cancelled=True,
            )
            ticket.fail(exc)
            return None
        self._capture_spans(ticket, query_tracer, previous)
        execute_seconds = time.perf_counter() - t0
        self.registry.histogram(
            "service.execute_seconds", tenant=ticket.tenant
        ).observe(execute_seconds)
        wire = protocol.table_to_wire(
            result.table,
            include_rows=(
                self.config.include_rows
                and result.table.num_rows <= self.config.max_result_rows
            ),
        )
        session.record_served(wire["digest"], result.table.num_rows, execute_seconds)
        if degraded_info is not None:
            session.record_degraded()
        rung = (
            degraded_info["rung"] if degraded_info is not None
            else ("exact" if ticket.mode == "exact" else "quickr")
        )
        if record is not None:
            record.degraded = degraded_info
            if result.parallel is not None and result.parallel.pruning:
                record.pruning = result.parallel.pruning
            record.note(
                "service", "served", rung=rung, rows=result.table.num_rows,
                execute_ms=round(execute_seconds * 1000.0, 3),
            )
        self._finish_query(
            ticket,
            "served.degraded" if degraded_info is not None else "served",
            ticket.queue_wait_seconds + execute_seconds,
            cancelled=False,
        )
        self.auditor.maybe_enqueue(
            ticket.query_name, ticket.mode, ticket.tenant, rung, result.table
        )
        ticket.resolve({
            "query": ticket.query_name,
            "mode": ticket.mode,
            "answer": wire,
            # None for a full-fidelity answer, else {rung, reason, ladder}.
            "degraded": degraded_info,
            "stats": {
                "queue_wait_ms": round(ticket.queue_wait_seconds * 1000.0, 3),
                "execute_ms": round(execute_seconds * 1000.0, 3),
                "compile_ms": round((result.compile_seconds or 0.0) * 1000.0, 3),
                "plan_cache_hit": bool(result.plan_cache_hit),
                "degraded": bool(result.degraded or degraded_info),
            },
        })
        return execute_seconds

    # -- introspection -------------------------------------------------------
    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        """(host, port) of the running ``/metrics`` endpoint, if any."""
        server = self._metrics_server
        return server.address if server is not None else None

    def stats(self) -> Dict[str, Any]:
        return {
            "sessions": self.sessions.summary(),
            "admission": self.admission.summary(),
            "plan_cache": self.executor.plan_cache.stats(),
            "runtime_estimates": self.admission.estimator.snapshot(),
            "queries": {
                "served": self.registry.total("service.admitted"),
                "rejected": self.registry.total("service.rejected"),
            },
            "governor": {
                "enabled": self.config.governor.enabled,
                "downgrades": self.registry.total("service.governor.downgrades"),
                "degraded_replies": self.registry.total(
                    "service.governor.degraded_replies"
                ),
                "cancelled": self.registry.total("service.governor.cancelled"),
                "client_disconnects": self.registry.total(
                    "service.governor.client_disconnects"
                ),
            },
            "auditor": self.auditor.summary(),
            "flight": {
                "recorded": len(self.flight.recent()),
                "dumped": self.flight.dumped,
                "dump_dir": self.flight.dump_dir,
            },
        }

    def slo_report(self) -> Dict[str, Any]:
        """The ``repro slo`` payload: the ledger's calibration/burn report
        plus auditor and flight-recorder state."""
        report = self.ledger.report()
        report["auditor"] = self.auditor.summary()
        report["flight"] = {
            "recorded": len(self.flight.recent()),
            "dumped": self.flight.dumped,
            "dump_dir": self.flight.dump_dir,
        }
        return report


class QueryServer:
    """Threaded TCP front-end for a :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._listener = socket.create_server((host, port))
        # A blocked accept() holds the listening socket open past close()
        # (the in-flight syscall pins the file description), so the port
        # would keep accepting after stop(). Poll with a timeout instead;
        # accepted connections come back in blocking mode.
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[socket.socket] = []
        self._conn_threads: List[threading.Thread] = []
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "QueryServer":
        self.service.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()
        _LOG.info("listening on %s:%d", *self.address)
        return self

    def stop(self, drain_seconds: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting, drain in flight (new
        submissions get ``rejected.draining``, running queries keep their
        grace, stragglers are cancelled), close connections."""
        if self._stopping.is_set():
            # Another thread is (or was) tearing down; wait it out so
            # callers can rely on the port being released on return.
            self._stopped.wait(timeout=30.0)
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.service.drain(drain_seconds)
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._conn_threads):
            thread.join(timeout=5.0)
        self._stopped.set()
        _LOG.info("server stopped")

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until shutdown (e.g. via the shutdown op) has completed."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- accept/read loops ---------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed during shutdown
            with self._conn_lock:
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, peer),
                name=f"service-conn-{peer[1]}", daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        handler = _Connection(self, conn)
        try:
            handler.run()
        finally:
            with self._conn_lock:
                if conn in self._connections:
                    self._connections.remove(conn)


class _Connection:
    """State machine of one client connection: session + request loop."""

    def __init__(self, server: QueryServer, conn: socket.socket):
        self.server = server
        self.service = server.service
        self.conn = conn
        self.session: Optional[Session] = None

    def respond(self, message: Dict[str, Any]) -> None:
        protocol.send_message(self.conn, message)

    def run(self) -> None:
        config = self.service.config
        if config.idle_timeout_seconds is not None:
            # Slow-loris guard: a peer stalling mid-frame (or silent past
            # the idle window) raises socket.timeout — an OSError — and
            # the connection closes instead of pinning this thread.
            try:
                self.conn.settimeout(config.idle_timeout_seconds)
            except OSError:
                return
        try:
            for request in protocol.read_messages(
                self.conn, max_line_bytes=config.max_frame_bytes
            ):
                if not self._handle(request):
                    break
        except ProtocolError as exc:
            self.service.registry.counter("service.protocol_errors").inc()
            try:
                self.respond(protocol.error_response(None, "protocol", str(exc)))
            except OSError:
                pass
        except OSError:
            pass  # peer vanished (or timed out) mid-exchange; nothing left to say
        finally:
            if self.session is not None:
                self.service.sessions.close(self.session.session_id)
            try:
                self.conn.close()
            except OSError:
                pass

    def _ensure_session(self) -> Session:
        """Queries before ``hello`` bill the default tenant."""
        if self.session is None:
            self.session = self.service.open_session()
        return self.session

    def _handle(self, request: Dict[str, Any]) -> bool:
        """Process one request; False ends the connection."""
        request_id = request.get("id")
        op = request.get("op")
        try:
            if op == "hello":
                return self._op_hello(request_id, request)
            if op == "query":
                return self._op_query(request_id, request)
            if op == "ping":
                self.respond(protocol.ok_response(request_id, pong=True))
                return True
            if op == "stats":
                self.respond(protocol.ok_response(request_id, stats=self.service.stats()))
                return True
            if op == "slo":
                self.respond(protocol.ok_response(
                    request_id, slo=self.service.slo_report()
                ))
                return True
            if op == "close":
                self.respond(protocol.ok_response(request_id, closed=True))
                return False
            if op == "shutdown":
                self.respond(protocol.ok_response(request_id, stopping=True))
                # Stop from a helper thread: stop() joins connection
                # threads, and this *is* one.
                threading.Thread(target=self.server.stop, daemon=True).start()
                return False
            raise ProtocolError(f"unknown op {op!r}")
        except ProtocolError as exc:
            self.service.registry.counter("service.protocol_errors").inc()
            self.respond(protocol.error_response(request_id, "protocol", str(exc)))
            return True

    def _op_hello(self, request_id, request: Dict[str, Any]) -> bool:
        if self.session is not None:
            self.service.sessions.close(self.session.session_id)
        defaults = request.get("defaults") or {}
        try:
            self.session = self.service.open_session(
                tenant=str(request.get("tenant", DEFAULT_TENANT)),
                default_mode=str(defaults.get("mode", "quickr")),
                default_deadline_ms=defaults.get("deadline_ms"),
            )
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        self.respond(protocol.ok_response(
            request_id,
            session_id=self.session.session_id,
            tenant=self.session.tenant,
            protocol_version=protocol.PROTOCOL_VERSION,
            queries=list(self.service.query_names),
        ))
        return True

    def _peer_closed(self) -> bool:
        """Non-blocking probe for a client that hung up mid-query.

        The connection protocol is one-request-at-a-time, so while a query
        is in flight the socket should be quiet; a *readable* socket whose
        peeked read returns no bytes is an EOF — the client is gone. (A
        pipelining client that sends early merely reports not-closed.)
        """
        try:
            readable, _, _ = select.select([self.conn], [], [], 0)
        except (OSError, ValueError):
            return True  # socket already torn down
        if not readable:
            return False
        try:
            return self.conn.recv(1, socket.MSG_PEEK) == b""
        except (BlockingIOError, socket.timeout):
            return False
        except OSError:
            return True

    def _op_query(self, request_id, request: Dict[str, Any]) -> bool:
        session = self._ensure_session()
        query_name = request.get("query")
        if not isinstance(query_name, str):
            raise ProtocolError("query op requires a string 'query' field")
        mode = request.get("mode")
        deadline_ms = request.get("deadline_ms")
        try:
            ticket = self.service.submit(session, query_name, mode, deadline_ms)
        except AdmissionRejected as exc:
            self.respond(protocol.error_response(
                request_id, f"rejected.{exc.reason}", str(exc),
                retryable=exc.reason not in ("deadline",),
            ))
            return True
        # Wait for the ticket while watching the socket: a client that
        # disconnects mid-query fires the cancellation token, and the
        # engine stops at its next morsel/task boundary instead of
        # finishing an answer nobody is waiting for.
        while not ticket.wait(0.05):
            if self._peer_closed():
                if ticket.cancel("client-disconnect"):
                    self.service.registry.counter(
                        "service.governor.client_disconnects"
                    ).inc()
                    _LOG.info(
                        "client of %s vanished; cancelled %s mid-flight",
                        session.session_id, query_name,
                    )
                # Bounded wait for the worker to unwind and release the
                # quota slot; then close — there is no one to answer.
                ticket.wait(30.0)
                return False
        if ticket.rejection is not None:
            session.record_rejected()
            exc = ticket.rejection
            self.respond(protocol.error_response(
                request_id, f"rejected.{exc.reason}", str(exc),
                retryable=exc.reason not in ("deadline",),
            ))
            return True
        if ticket.error is not None:
            error = ticket.error
            if isinstance(error, GovernanceError):
                # session.queries_cancelled was recorded by the worker.
                self.respond(protocol.error_response(
                    request_id, f"cancelled.{error.reason_code}", str(error),
                    retryable=error.reason_code not in ("deadline",),
                ))
                return True
            session.record_failed()
            self.respond(protocol.error_response(
                request_id, "execution", f"{type(error).__name__}: {error}"
            ))
            return True
        self.respond(protocol.ok_response(
            request_id, session_id=session.session_id, tenant=session.tenant,
            **ticket.result,
        ))
        return True
