"""Per-session state of the query service.

A *session* is one client connection's registration with the service: it
names the tenant the connection bills against (admission quotas and fair
scheduling are per-tenant, so many sessions of one tenant share a budget)
and carries the defaults — execution mode, deadline — that individual
query requests may omit or override. Sessions are cheap bookkeeping
objects; all heavy state (plan caches, the worker pool) lives in the
shared engine underneath.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Session", "SessionManager", "DEFAULT_TENANT"]

#: Tenant billed when a connection never sends ``hello``.
DEFAULT_TENANT = "default"

#: Execution modes a session or query may request.
MODES = ("quickr", "exact")


@dataclass
class Session:
    """One client connection's identity and defaults."""

    session_id: str
    tenant: str = DEFAULT_TENANT
    #: Default execution mode for queries that do not specify one.
    default_mode: str = "quickr"
    #: Default per-query deadline (milliseconds); None = no deadline.
    default_deadline_ms: Optional[float] = None
    created_at: float = field(default_factory=time.monotonic)
    # Rolling outcome counters, reported by the ``stats`` op.
    queries_submitted: int = 0
    queries_served: int = 0
    queries_rejected: int = 0
    queries_failed: int = 0
    #: Served, but down the degradation ladder (reply carried ``degraded``).
    queries_degraded: int = 0
    #: Ended by the governance contract (cancel / deadline / budget) with
    #: nothing salvageable.
    queries_cancelled: int = 0
    #: Digest + shape of the most recent served answer (not the rows — a
    #: session is not a result cache, the PlanCache below is).
    last_result: Optional[Dict[str, Any]] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def resolve_mode(self, requested: Optional[str]) -> str:
        return requested if requested is not None else self.default_mode

    def resolve_deadline_ms(self, requested: Optional[float]) -> Optional[float]:
        return requested if requested is not None else self.default_deadline_ms

    def record_submitted(self) -> None:
        with self._lock:
            self.queries_submitted += 1

    def record_served(self, digest: str, num_rows: int, execute_seconds: float) -> None:
        with self._lock:
            self.queries_served += 1
            self.last_result = {
                "digest": digest,
                "num_rows": num_rows,
                "execute_seconds": execute_seconds,
            }

    def record_rejected(self) -> None:
        with self._lock:
            self.queries_rejected += 1

    def record_failed(self) -> None:
        with self._lock:
            self.queries_failed += 1

    def record_degraded(self) -> None:
        with self._lock:
            self.queries_degraded += 1

    def record_cancelled(self) -> None:
        with self._lock:
            self.queries_cancelled += 1

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "session_id": self.session_id,
                "tenant": self.tenant,
                "default_mode": self.default_mode,
                "default_deadline_ms": self.default_deadline_ms,
                "age_seconds": time.monotonic() - self.created_at,
                "queries_submitted": self.queries_submitted,
                "queries_served": self.queries_served,
                "queries_rejected": self.queries_rejected,
                "queries_failed": self.queries_failed,
                "queries_degraded": self.queries_degraded,
                "queries_cancelled": self.queries_cancelled,
                "last_result": dict(self.last_result) if self.last_result else None,
            }


class SessionManager:
    """Registry of live sessions, keyed by server-issued session id."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._counter = itertools.count(1)
        self.sessions_opened = 0
        self.sessions_closed = 0

    def open(
        self,
        tenant: str = DEFAULT_TENANT,
        default_mode: str = "quickr",
        default_deadline_ms: Optional[float] = None,
    ) -> Session:
        if default_mode not in MODES:
            raise ValueError(f"unknown mode {default_mode!r}; expected one of {MODES}")
        with self._lock:
            session_id = f"s{next(self._counter)}"
            session = Session(
                session_id=session_id,
                tenant=str(tenant),
                default_mode=default_mode,
                default_deadline_ms=default_deadline_ms,
            )
            self._sessions[session_id] = session
            self.sessions_opened += 1
        return session

    def close(self, session_id: str) -> None:
        with self._lock:
            if self._sessions.pop(session_id, None) is not None:
                self.sessions_closed += 1

    def get(self, session_id: str) -> Optional[Session]:
        with self._lock:
            return self._sessions.get(session_id)

    def live(self) -> int:
        with self._lock:
            return len(self._sessions)

    def by_tenant(self) -> Dict[str, int]:
        """Live session count per tenant."""
        with self._lock:
            out: Dict[str, int] = {}
            for session in self._sessions.values():
                out[session.tenant] = out.get(session.tenant, 0) + 1
        return out

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            sessions = list(self._sessions.values())
            opened, closed = self.sessions_opened, self.sessions_closed
        return {
            "live": len(sessions),
            "opened": opened,
            "closed": closed,
            "by_tenant": {
                tenant: sum(1 for s in sessions if s.tenant == tenant)
                for tenant in sorted({s.tenant for s in sessions})
            },
        }
