"""Wire protocol of the query service: JSON objects, one per line.

The service speaks newline-delimited JSON over a plain TCP stream — the
same shape VerdictDB's pandas-sql server uses, chosen because every
language (and ``nc``) can speak it and because a line is a natural frame:
no length prefixes, no partial-read state machine. Each request carries a
client-chosen ``id`` echoed verbatim in the response, so a client may
pipeline requests and match answers by id.

Requests::

    {"id": 1, "op": "hello", "tenant": "ads", "defaults": {"mode": "quickr"}}
    {"id": 2, "op": "query", "query": "q12", "mode": "quickr", "deadline_ms": 2000}
    {"id": 3, "op": "stats"}
    {"id": 4, "op": "ping"}
    {"id": 5, "op": "close"}

Responses are ``{"id": ..., "ok": true, ...payload}`` or ``{"id": ...,
"ok": false, "error": {"code": ..., "message": ...}}``. Admission
rejections are *successful protocol exchanges* with ``ok: false`` and an
``error.code`` of ``rejected.backpressure`` / ``rejected.quota`` /
``rejected.deadline`` — the service's contract is that overload produces
explicit rejections, never hangs or dropped connections.

Answer tables travel as columns (name → dtype + values). JSON round-trips
every value exactly in CPython — ``repr`` of a float is shortest-exact, so
``float64`` bits survive — and each payload carries a SHA-256
``digest`` over the canonical bytes (names, dtypes, raw column buffers).
The digest is how the load benchmark asserts served answers are
bit-identical to library-mode execution, and :func:`table_from_wire`
re-derives it client-side as an end-to-end integrity check.
"""

from __future__ import annotations

import hashlib
import json
import socket
from typing import Any, Dict, Iterator, Optional

import numpy as np

from repro.engine.table import Table
from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "encode_message",
    "decode_message",
    "read_messages",
    "send_message",
    "error_response",
    "ok_response",
    "table_digest",
    "table_to_wire",
    "table_from_wire",
]

#: Bumped when the message schema changes incompatibly; ``hello`` echoes it.
PROTOCOL_VERSION = 1

#: Upper bound on one frame. A line above this is a protocol error (a
#: defensive cap so a garbage peer cannot balloon server memory).
MAX_LINE_BYTES = 64 * 1024 * 1024


def encode_message(message: Dict[str, Any]) -> bytes:
    """One frame: compact JSON plus the newline terminator."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


def read_messages(
    sock: socket.socket, max_line_bytes: int = MAX_LINE_BYTES
) -> Iterator[Dict[str, Any]]:
    """Yield decoded frames from a socket until the peer closes.

    Buffers partial lines across ``recv`` boundaries; a frame larger than
    ``max_line_bytes`` (default :data:`MAX_LINE_BYTES`) raises
    :class:`ProtocolError`. A socket read timeout (the server's slow-loris
    guard) surfaces as ``socket.timeout`` — an ``OSError`` the caller
    turns into a clean disconnect.
    """
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            if buffer.strip():
                raise ProtocolError("connection closed mid-frame")
            return
        buffer += chunk
        if len(buffer) > max_line_bytes and b"\n" not in buffer:
            raise ProtocolError(f"frame exceeds {max_line_bytes} bytes")
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            if len(line) > max_line_bytes:
                raise ProtocolError(f"frame exceeds {max_line_bytes} bytes")
            if line.strip():
                yield decode_message(line)


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(encode_message(message))


def ok_response(request_id: Any, **payload: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, **payload}


def error_response(request_id: Any, code: str, message: str, **extra: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message, **extra}}


# -- answer-table serialization ------------------------------------------------

def table_digest(table: Table) -> str:
    """SHA-256 over the table's canonical bytes.

    Covers column names and order, dtypes, row count and the raw column
    buffers — two tables share a digest iff they are bit-identical.
    """
    h = hashlib.sha256()
    h.update(repr(table.num_rows).encode())
    for name in table.column_names:
        values = np.ascontiguousarray(table.column(name))
        h.update(name.encode("utf-8"))
        if values.dtype.kind in ("U", "S", "O"):
            # String buffers are width/padding-sensitive (``<U5`` vs ``<U10``
            # holding equal values), so hash the elements, not the buffer.
            h.update(b"str")
            for item in values.tolist():
                h.update(str(item).encode("utf-8"))
                h.update(b"\x00")
        else:
            h.update(str(values.dtype).encode())
            h.update(values.tobytes())
    return h.hexdigest()


def _column_to_wire(values: np.ndarray) -> Dict[str, Any]:
    kind = values.dtype.kind
    if kind in ("U", "S", "O"):
        return {"dtype": "str", "values": [str(v) for v in values.tolist()]}
    out: Dict[str, Any] = {"dtype": str(values.dtype), "values": values.tolist()}
    if kind == "f":
        # repr-based JSON round-trips finite floats exactly, but tolist()
        # emits float('nan')/inf which json serializes as bare NaN/Infinity
        # tokens — legal for Python's json module, kept explicit here.
        out["floats"] = True
    return out


def table_to_wire(table: Table, include_rows: bool = True) -> Dict[str, Any]:
    """JSON-able view of an answer table plus its bit-identity digest."""
    out: Dict[str, Any] = {
        "name": table.name,
        "num_rows": int(table.num_rows),
        "column_order": list(table.column_names),
        "digest": table_digest(table),
    }
    if include_rows:
        out["columns"] = {
            name: _column_to_wire(table.column(name)) for name in table.column_names
        }
    return out


def table_from_wire(wire: Dict[str, Any], verify: bool = True) -> Optional[Table]:
    """Reconstruct the answer table; returns None for digest-only payloads.

    With ``verify`` (default) the digest is recomputed from the
    reconstructed arrays and checked against the server's — a bit flip
    anywhere in transit or in (de)serialization fails loudly.
    """
    columns = wire.get("columns")
    if columns is None:
        return None
    arrays = {}
    for name in wire["column_order"]:
        spec = columns[name]
        if spec["dtype"] == "str":
            arrays[name] = np.array([str(v) for v in spec["values"]], dtype=str)
        else:
            arrays[name] = np.array(spec["values"], dtype=np.dtype(spec["dtype"]))
    table = Table(wire.get("name", "answer"), arrays)
    if verify:
        digest = table_digest(table)
        if digest != wire["digest"]:
            raise ProtocolError(
                f"answer digest mismatch: server sent {wire['digest'][:12]}…, "
                f"reconstruction hashes to {digest[:12]}…"
            )
    return table
