"""The background accuracy auditor: exact replays of served answers.

The service promises calibrated error bars; the auditor checks the
promise against ground truth. A deterministic stride of served
*approximate* answers (every ``k``-th, ``k ≈ 1/sample_fraction``) is
enqueued for audit together with the answer actually returned; a single
background thread replays each one **exactly** (``plan_baseline``, no
samplers) on the shared executor and reports the comparison to the
:class:`~repro.obs.accuracy.AccuracyLedger`, which maintains per
``(tenant, sampler-kind, governor-rung)`` observed-coverage calibration.

The audit workload must never compete with live traffic, so it runs at
strictly lowest priority:

* the worker only starts a replay when the admission run queue is empty
  — audits wait for an idle engine;
* every replay runs under its own :class:`GovernanceContext` whose token
  the service fires (``auditor-yield``) the moment a new live query is
  submitted; the engine unwinds at its next morsel/task checkpoint and
  the audit goes back in the queue;
* a replay preempted ``max_attempts`` times is abandoned (counted in the
  ledger as ``accuracy.audits_abandoned``) rather than retried forever.

Sampling bias caveat (documented, deliberate): stride sampling is
deterministic and cheap but correlated with arrival order — a tenant
whose queries always land on the same stride phase can be over- or
under-audited. For the ledger's purpose (aggregate calibration over many
queries) this is acceptable; DESIGN §15 discusses the trade-off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.algebra.logical import SamplerNode
from repro.engine.governance import GovernanceContext
from repro.errors import GovernanceError
from repro.obs import log as obs_log
from repro.obs.accuracy import AccuracyLedger, compare_tables

_LOG = obs_log.logger("service.auditor")

__all__ = ["AuditorConfig", "QueryAuditor"]


@dataclass(frozen=True)
class AuditorConfig:
    """Knobs of the background accuracy auditor."""

    enabled: bool = True
    #: Fraction of served approximate answers replayed exactly. Realized
    #: as a deterministic stride: every ``round(1/fraction)``-th answer.
    sample_fraction: float = 0.1
    #: Bounded audit backlog; overflow is dropped (never backpressure).
    max_queue: int = 32
    #: Preemptions tolerated per audit before it is abandoned.
    max_attempts: int = 3
    #: Poll interval while waiting for the engine to go idle.
    idle_poll_seconds: float = 0.05

    @property
    def stride(self) -> int:
        if self.sample_fraction <= 0:
            return 0
        return max(1, int(round(1.0 / self.sample_fraction)))


@dataclass
class _AuditJob:
    query_name: str
    mode: str
    tenant: str
    rung: str
    approx: Any  # the Table actually served
    attempts: int = 0
    enqueued_at: float = field(default_factory=time.monotonic)


class QueryAuditor:
    """Replays a sampled fraction of served answers exactly, off-peak.

    Collaborators are passed in explicitly (planner, executor, admission,
    ledger, registry, query builders, database) so tests can drive audits
    without a running server, and so this module never imports the
    service core (no cycle).
    """

    def __init__(
        self,
        config: AuditorConfig,
        planner,
        executor,
        admission,
        ledger: AccuracyLedger,
        registry,
        query_builders: Dict[str, Any],
        database,
    ):
        self.config = config
        self.planner = planner
        self.executor = executor
        self.admission = admission
        self.ledger = ledger
        self.registry = registry
        self.query_builders = dict(query_builders)
        self.database = database
        self._lock = threading.Lock()
        self._queue: List[_AuditJob] = []
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Governance context of the replay currently executing (if any);
        #: :meth:`preempt` fires its token from the service thread.
        self._inflight: Optional[GovernanceContext] = None
        #: True from the moment a job is popped until its audit finishes.
        #: ``_inflight`` alone leaves a gap while the replay is being
        #: planned, during which ``wait_drained`` would report idle.
        self._busy = False
        self._served_approx = 0
        self.audits_completed = 0
        self.audits_preempted = 0

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "QueryAuditor":
        if self._thread is None and self.config.enabled and self.config.stride:
            self._thread = threading.Thread(
                target=self._run, name="service-auditor", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        self._wake.set()
        self.preempt(reason="auditor-shutdown")
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # -- service-side hooks ----------------------------------------------------
    def maybe_enqueue(self, query_name: str, mode: str, tenant: str,
                      rung: str, approx_table) -> bool:
        """Called by the service worker after serving one answer.

        Exact answers have nothing to audit; approximate ones hit the
        stride. Returns True when an audit was enqueued.
        """
        if not self.config.enabled or self.config.stride == 0:
            return False
        if mode == "exact" or rung == "exact":
            return False
        with self._lock:
            self._served_approx += 1
            if self._served_approx % self.config.stride != 0:
                return False
            if len(self._queue) >= self.config.max_queue:
                dropped = True
            else:
                dropped = False
                self._queue.append(
                    _AuditJob(query_name, mode, tenant, rung, approx_table)
                )
        if dropped:
            self.ledger.record_abandoned("queue-full")
            return False
        self.registry.counter("auditor.enqueued", tenant=tenant).inc()
        self._wake.set()
        return True

    def preempt(self, reason: str = "auditor-yield") -> bool:
        """Yield to live traffic: cancel the in-flight replay (if any).

        Called by the service on every live submit; the audit requeues
        and resumes when the engine is idle again.
        """
        with self._lock:
            ctx = self._inflight
        if ctx is None:
            return False
        return ctx.token.cancel(reason)

    # -- introspection ---------------------------------------------------------
    @property
    def backlog(self) -> int:
        with self._lock:
            return len(self._queue)

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.config.enabled,
                "sample_fraction": self.config.sample_fraction,
                "stride": self.config.stride,
                "served_approx": self._served_approx,
                "backlog": len(self._queue),
                "completed": self.audits_completed,
                "preempted": self.audits_preempted,
            }

    def wait_drained(self, timeout: float) -> bool:
        """Test helper: block until the backlog is empty and nothing is
        in flight, or ``timeout`` passes."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                idle = (not self._queue and self._inflight is None
                        and not self._busy)
            if idle:
                return True
            time.sleep(0.01)
        return False

    # -- worker ----------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            job = self._next_job()
            if job is None:
                continue
            try:
                self._audit(job)
            finally:
                with self._lock:
                    self._busy = False

    def _next_job(self) -> Optional[_AuditJob]:
        """Next audit, only once the live queue is empty (lowest priority)."""
        self._wake.wait(timeout=0.5)
        if self._stop.is_set():
            return None
        with self._lock:
            if not self._queue:
                self._wake.clear()
                return None
        # Idle gate: never start while live queries are queued.
        while self.admission.queue_depth > 0:
            if self._stop.wait(self.config.idle_poll_seconds):
                return None
        with self._lock:
            if not self._queue:
                return None
            self._busy = True
            return self._queue.pop(0)

    def _sampler_kinds(self, query) -> str:
        """Sampler kinds in this query's quickr plan (memoized planner, so
        this re-plan is a cache hit), as a stable label like ``uniform``
        or ``distinct+uniform``; ``none`` for sampler-free plans."""
        try:
            plan = self.planner.plan(query).plan
        except Exception:  # noqa: BLE001 - label only, never fail the audit
            return "unknown"
        kinds = sorted({
            node.spec.kind for node in plan.walk()
            if isinstance(node, SamplerNode)
        })
        return "+".join(kinds) if kinds else "none"

    def _audit(self, job: _AuditJob) -> None:
        try:
            query = self.query_builders[job.query_name](self.database)
            exact_plan = self.planner.plan_baseline(query).plan
        except Exception as exc:  # noqa: BLE001 - audit must not kill the thread
            _LOG.warning("audit of %s failed to plan: %s", job.query_name, exc)
            self.ledger.record_abandoned("plan-failed")
            return
        ctx = GovernanceContext()
        with self._lock:
            self._inflight = ctx
        t0 = time.perf_counter()
        try:
            result = self.executor.execute(exact_plan, governance=ctx)
        except GovernanceError:
            # Preempted by live traffic (or shutdown): requeue or abandon.
            job.attempts += 1
            self.audits_preempted += 1
            self.registry.counter("auditor.preempted").inc()
            if self._stop.is_set() or job.attempts >= self.config.max_attempts:
                self.ledger.record_abandoned("preempted")
            else:
                with self._lock:
                    if len(self._queue) < self.config.max_queue:
                        self._queue.append(job)
                        self._wake.set()
                        job = None
                if job is not None:
                    self.ledger.record_abandoned("queue-full")
            return
        except Exception as exc:  # noqa: BLE001
            _LOG.warning("exact replay of %s failed: %s", job.query_name, exc)
            self.ledger.record_abandoned("replay-failed")
            return
        finally:
            with self._lock:
                self._inflight = None
        comparison = compare_tables(job.approx, result.table)
        comparison.query = job.query_name
        comparison.tenant = job.tenant
        comparison.sampler_kind = self._sampler_kinds(query)
        comparison.rung = job.rung
        comparison.audit_seconds = time.perf_counter() - t0
        self.ledger.record_audit(comparison)
        self.audits_completed += 1
        self.registry.counter("auditor.completed", tenant=job.tenant).inc()
        _LOG.debug(
            "audited %s (%s/%s/%s): coverage %d/%d, %d groups missed",
            job.query_name, job.tenant, comparison.sampler_kind, job.rung,
            comparison.cells_covered, comparison.cells_checked,
            comparison.groups_missed,
        )
