"""The accuracy/SLO ledger: is the error bar we returned actually honest?

Quickr's contract is a cheap answer *with a calibrated confidence
interval*: each aggregate column ``x`` on a sampled answer carries an
``x__ci`` column holding the 95% CI half-width. Nothing in the serving
path verifies that promise — the ledger does. The background auditor
(:mod:`repro.service.auditor`) re-executes a fraction of served
approximate queries exactly and reports each comparison here; the ledger
maintains, per ``(tenant, sampler-kind, governor rung)``:

* **observed coverage** — the fraction of audited aggregate cells whose
  CI actually contained the exact value, to be compared against the
  nominal level (95%). A well-calibrated system hovers at or above
  nominal; systematically lower coverage means the variance estimates
  are optimistic for that slice of traffic.
* **relative error** — mean/max |approx - exact| / |exact| over audited
  cells, the headline accuracy number.
* **missed groups** — group-by rows present exactly but absent from the
  sampled answer (small-group loss, the failure mode CI columns cannot
  express).

Separately the ledger tracks the **latency SLO error budget** per tenant:
every request is recorded with its latency and outcome; a violation is a
served answer over the SLO latency or a cancelled query. With an SLO
target of ``slo_target`` (e.g. 0.99 = 1% allowed violations), the burn
rate is ``observed_violation_rate / allowed_rate`` — burn > 1 means the
budget is being spent faster than the SLO allows.

Everything the ledger learns is mirrored into the metrics registry
(``accuracy.*`` and ``slo.*`` instruments), so the scrape endpoint and
the JSONL telemetry stream carry calibration state without extra wiring,
and :meth:`AccuracyLedger.report` renders the ``repro slo`` view.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.registry import MetricsRegistry

__all__ = ["AuditComparison", "AccuracyLedger", "compare_tables", "CI_SUFFIX"]

#: Suffix of CI half-width columns on sampled answers (mirrors
#: ``repro.engine.operators.CI_SUFFIX`` without importing the engine).
CI_SUFFIX = "__ci"


@dataclass
class AuditComparison:
    """Outcome of one exact-replay audit of one served answer."""

    query: str
    tenant: str
    sampler_kind: str
    rung: str
    #: Aggregate cells compared (CI column present, both values finite).
    cells_checked: int = 0
    #: Cells whose CI half-width covered the exact value.
    cells_covered: int = 0
    #: Group rows in the exact answer with no match in the approximation.
    groups_missed: int = 0
    #: Group rows matched between the two answers.
    groups_matched: int = 0
    max_rel_error: float = 0.0
    mean_rel_error: float = 0.0
    audit_seconds: float = 0.0


def compare_tables(approx, exact) -> AuditComparison:
    """Compare a sampled answer against its exact replay.

    Aggregate columns are identified by their ``__ci`` companions; the
    remaining columns are the group keys rows are aligned on. Returns a
    comparison with query/tenant/kind/rung left blank for the caller to
    fill.
    """
    out = AuditComparison(query="", tenant="", sampler_kind="", rung="")
    ci_cols = [c for c in approx.column_names if c.endswith(CI_SUFFIX)]
    agg_cols = [c[: -len(CI_SUFFIX)] for c in ci_cols]
    key_cols = [
        c for c in approx.column_names
        if c not in agg_cols and not c.endswith(CI_SUFFIX)
    ]
    approx_by_key = {
        tuple(approx.column(k)[i] for k in key_cols): i
        for i in range(approx.num_rows)
    }
    rel_errors: List[float] = []
    for j in range(exact.num_rows):
        key = tuple(exact.column(k)[j] for k in key_cols)
        i = approx_by_key.get(key)
        if i is None:
            out.groups_missed += 1
            continue
        out.groups_matched += 1
        for agg, ci in zip(agg_cols, ci_cols):
            if agg not in exact.column_names:
                continue
            truth = float(exact.column(agg)[j])
            est = float(approx.column(agg)[i])
            half = float(approx.column(ci)[i])
            if not (np.isfinite(truth) and np.isfinite(est)):
                continue
            out.cells_checked += 1
            if abs(est - truth) <= half:
                out.cells_covered += 1
            denom = abs(truth) if abs(truth) > 1e-12 else 1.0
            rel_errors.append(abs(est - truth) / denom)
    if rel_errors:
        out.max_rel_error = float(max(rel_errors))
        out.mean_rel_error = float(np.mean(rel_errors))
    return out


@dataclass
class _CalibrationCell:
    """Running calibration totals for one (tenant, kind, rung)."""

    audits: int = 0
    cells_checked: int = 0
    cells_covered: int = 0
    groups_missed: int = 0
    groups_matched: int = 0
    rel_error_sum: float = 0.0
    rel_error_max: float = 0.0
    audit_seconds: float = 0.0

    @property
    def observed_coverage(self) -> Optional[float]:
        if self.cells_checked == 0:
            return None
        return self.cells_covered / self.cells_checked


@dataclass
class _TenantSLO:
    """Latency-SLO accounting for one tenant."""

    requests: int = 0
    violations: int = 0
    cancelled: int = 0
    latency_sum: float = 0.0


class AccuracyLedger:
    """Per-(tenant, sampler-kind, rung) calibration plus SLO burn.

    Thread-safe; written by the auditor thread and the service workers,
    read by the scrape endpoint and ``repro slo``.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        nominal_coverage: float = 0.95,
        latency_slo_ms: Optional[float] = None,
        slo_target: float = 0.99,
    ):
        if not 0.0 < nominal_coverage < 1.0:
            raise ValueError("nominal_coverage must be in (0, 1)")
        if not 0.0 < slo_target < 1.0:
            raise ValueError("slo_target must be in (0, 1)")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.nominal_coverage = float(nominal_coverage)
        self.latency_slo_ms = latency_slo_ms
        self.slo_target = float(slo_target)
        self._lock = threading.Lock()
        self._calibration: Dict[Tuple[str, str, str], _CalibrationCell] = {}
        self._slo: Dict[str, _TenantSLO] = {}
        #: Audits the auditor could not finish (preempted past the retry
        #: cap, or the replay itself failed).
        self.audits_abandoned = 0

    # -- calibration side (auditor thread) -------------------------------------
    def record_audit(self, comparison: AuditComparison) -> None:
        key = (comparison.tenant, comparison.sampler_kind, comparison.rung)
        with self._lock:
            cell = self._calibration.get(key)
            if cell is None:
                cell = self._calibration[key] = _CalibrationCell()
            cell.audits += 1
            cell.cells_checked += comparison.cells_checked
            cell.cells_covered += comparison.cells_covered
            cell.groups_missed += comparison.groups_missed
            cell.groups_matched += comparison.groups_matched
            cell.rel_error_sum += comparison.mean_rel_error * max(
                1, comparison.cells_checked
            )
            cell.rel_error_max = max(cell.rel_error_max, comparison.max_rel_error)
            cell.audit_seconds += comparison.audit_seconds
            coverage = cell.observed_coverage
        labels = dict(
            tenant=comparison.tenant,
            kind=comparison.sampler_kind,
            rung=comparison.rung,
        )
        registry = self.registry
        registry.counter("accuracy.audits", **labels).inc()
        registry.counter("accuracy.cells_checked", **labels).inc(
            comparison.cells_checked
        )
        registry.counter("accuracy.cells_covered", **labels).inc(
            comparison.cells_covered
        )
        registry.counter("accuracy.groups_missed", **labels).inc(
            comparison.groups_missed
        )
        if coverage is not None:
            registry.gauge("accuracy.observed_coverage", **labels).set(coverage)
        registry.histogram("accuracy.audit_seconds").observe(
            comparison.audit_seconds
        )

    def record_abandoned(self, reason: str) -> None:
        with self._lock:
            self.audits_abandoned += 1
        self.registry.counter("accuracy.audits_abandoned", reason=reason).inc()

    # -- SLO side (service workers) --------------------------------------------
    def record_request(
        self, tenant: str, latency_seconds: Optional[float], cancelled: bool = False
    ) -> None:
        """One finished request: served (with its latency) or cancelled."""
        over_slo = (
            not cancelled
            and self.latency_slo_ms is not None
            and latency_seconds is not None
            and latency_seconds * 1000.0 > self.latency_slo_ms
        )
        violation = cancelled or over_slo
        with self._lock:
            slo = self._slo.get(tenant)
            if slo is None:
                slo = self._slo[tenant] = _TenantSLO()
            slo.requests += 1
            if latency_seconds is not None:
                slo.latency_sum += latency_seconds
            if cancelled:
                slo.cancelled += 1
            if violation:
                slo.violations += 1
            burn = self._burn_locked(slo)
        self.registry.counter("slo.requests", tenant=tenant).inc()
        if violation:
            self.registry.counter(
                "slo.violations",
                tenant=tenant,
                reason="cancelled" if cancelled else "latency",
            ).inc()
        if burn is not None:
            self.registry.gauge("slo.error_budget_burn", tenant=tenant).set(burn)

    def _burn_locked(self, slo: _TenantSLO) -> Optional[float]:
        if slo.requests == 0:
            return None
        allowed = 1.0 - self.slo_target
        return (slo.violations / slo.requests) / allowed

    # -- reporting -------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The ``repro slo`` payload: calibration rows + per-tenant burn."""
        with self._lock:
            calibration = [
                {
                    "tenant": tenant,
                    "sampler_kind": kind,
                    "rung": rung,
                    "audits": cell.audits,
                    "cells_checked": cell.cells_checked,
                    "cells_covered": cell.cells_covered,
                    "observed_coverage": cell.observed_coverage,
                    "nominal_coverage": self.nominal_coverage,
                    "groups_matched": cell.groups_matched,
                    "groups_missed": cell.groups_missed,
                    "mean_rel_error": (
                        cell.rel_error_sum / cell.cells_checked
                        if cell.cells_checked else None
                    ),
                    "max_rel_error": cell.rel_error_max,
                    "audit_seconds": round(cell.audit_seconds, 4),
                }
                for (tenant, kind, rung), cell in sorted(self._calibration.items())
            ]
            slo = {
                tenant: {
                    "requests": entry.requests,
                    "violations": entry.violations,
                    "cancelled": entry.cancelled,
                    "mean_latency_ms": (
                        round(entry.latency_sum / entry.requests * 1000.0, 3)
                        if entry.requests else None
                    ),
                    "error_budget_burn": self._burn_locked(entry),
                }
                for tenant, entry in sorted(self._slo.items())
            }
            abandoned = self.audits_abandoned
        return {
            "nominal_coverage": self.nominal_coverage,
            "latency_slo_ms": self.latency_slo_ms,
            "slo_target": self.slo_target,
            "calibration": calibration,
            "slo": slo,
            "audits_abandoned": abandoned,
        }
