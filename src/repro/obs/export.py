"""Telemetry export: OpenMetrics text exposition and JSONL snapshots.

The :class:`~repro.obs.registry.MetricsRegistry` is an in-process store;
this module makes it observable from *outside* the process, the missing
half of a production telemetry plane:

* :func:`render_openmetrics` — the Prometheus/OpenMetrics text exposition
  of a registry. Counters gain the mandated ``_total`` suffix, histograms
  render as cumulative ``_bucket{le="..."}`` series plus ``_sum``/
  ``_count``, gauges render as-is, and the exposition terminates with the
  ``# EOF`` marker OpenMetrics requires. Metric names are sanitized into
  the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset (``service.queue_depth`` →
  ``repro_service_queue_depth``); label values are escaped per the spec.
* :func:`validate_openmetrics` — a self-check used by tests and the CI
  smoke job: syntax of every sample line, ``# TYPE`` before first sample,
  counter samples suffixed ``_total``, cumulative non-decreasing buckets
  ending in ``+Inf``, and the ``# EOF`` terminator.
* :class:`MetricsHTTPServer` — a stdlib ``ThreadingHTTPServer`` exposing
  ``GET /metrics`` (the scrape endpoint) and ``GET /healthz``; runs on a
  daemon thread beside the query service.
* :class:`TelemetrySnapshotWriter` — a periodic JSONL writer appending
  ``{"ts", "metrics", ...extra}`` lines, the poor-man's remote-write for
  environments without a scraper.

Everything here *reads* the registry; nothing mutates it, so attaching an
exporter to a loaded service changes no counters and contends only for
the per-instrument snapshot locks (microseconds per scrape).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import log as obs_log
from repro.obs.registry import Histogram, MetricsRegistry

_LOG = obs_log.logger("obs.export")

__all__ = [
    "CONTENT_TYPE",
    "render_openmetrics",
    "validate_openmetrics",
    "MetricsHTTPServer",
    "TelemetrySnapshotWriter",
]

#: The OpenMetrics content type served at /metrics.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Default prefix namespacing every exported metric.
PREFIX = "repro"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)(?: [0-9.e+-]+)?$"
)


def _sanitize(name: str, prefix: str = PREFIX) -> str:
    base = _NAME_OK.sub("_", name)
    if prefix:
        base = f"{prefix}_{base}"
    if not re.match(r"[a-zA-Z_:]", base):
        base = "_" + base
    return base


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_OK.sub("_", k)}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_openmetrics(registry: MetricsRegistry, prefix: str = PREFIX) -> str:
    """The OpenMetrics text exposition of every instrument in ``registry``."""
    families: Dict[str, Tuple[str, List[str]]] = {}
    for kind, name, labels, instrument in registry.instruments():
        metric = _sanitize(name, prefix)
        family = families.setdefault(metric, (kind, []))
        lines = family[1]
        if kind == "counter":
            lines.append(
                f"{metric}_total{_labels_text(labels)} "
                f"{_format_value(instrument.snapshot())}"
            )
        elif kind == "gauge":
            value = instrument.snapshot()
            if value is None:
                continue  # a never-set gauge has no sample
            lines.append(f"{metric}{_labels_text(labels)} {_format_value(value)}")
        elif kind == "histogram":
            assert isinstance(instrument, Histogram)
            buckets, counts = instrument.bucket_counts()
            snap = instrument.snapshot()
            cumulative = 0
            for upper, count in zip(buckets, counts):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(float(upper))
                lines.append(
                    f"{metric}_bucket{_labels_text(bucket_labels)} {cumulative}"
                )
            total = cumulative + counts[len(buckets)]
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(f"{metric}_bucket{_labels_text(inf_labels)} {total}")
            lines.append(
                f"{metric}_sum{_labels_text(labels)} {_format_value(snap['sum'])}"
            )
            lines.append(f"{metric}_count{_labels_text(labels)} {total}")
    out: List[str] = []
    for metric in sorted(families):
        kind, lines = families[metric]
        if not lines:
            continue
        out.append(f"# TYPE {metric} {kind}")
        out.extend(lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def validate_openmetrics(text: str) -> List[str]:
    """Schema/syntax check of an OpenMetrics exposition; [] means valid.

    Not a full spec parser — it checks the invariants our renderer (and a
    Prometheus scraper) relies on: the ``# EOF`` terminator, ``# TYPE``
    metadata preceding samples, parseable sample lines, counter samples
    suffixed ``_total``, and cumulative histogram buckets that are
    non-decreasing and end at ``+Inf`` with the ``_count`` value.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        problems.append("missing '# EOF' terminator")
    types: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    counts: Dict[str, float] = {}
    for i, line in enumerate(lines):
        if not line.strip() or line.strip() == "# EOF":
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3]
                if name in types:
                    problems.append(f"line {i + 1}: duplicate TYPE for {name}")
                types[name] = kind
            elif len(parts) >= 2 and parts[1] in ("HELP", "UNIT"):
                pass
            else:
                problems.append(f"line {i + 1}: malformed comment {line!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {i + 1}: unparseable sample {line!r}")
            continue
        sample = match.group("name")
        family = sample
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if sample.endswith(suffix) and sample[: -len(suffix)] in types:
                family = sample[: -len(suffix)]
                break
        kind = types.get(family)
        if kind is None:
            problems.append(f"line {i + 1}: sample {sample!r} has no preceding TYPE")
            continue
        if kind == "counter" and not sample.endswith("_total"):
            problems.append(
                f"line {i + 1}: counter sample {sample!r} must end in _total"
            )
        try:
            raw = match.group("value")
            value = float("inf") if raw == "+Inf" else float(raw)
        except ValueError:
            problems.append(f"line {i + 1}: non-numeric value {match.group('value')!r}")
            continue
        if kind == "histogram" and sample.endswith("_bucket"):
            labels = match.group("labels") or ""
            le = re.search(r'le="([^"]*)"', labels)
            if le is None:
                problems.append(f"line {i + 1}: histogram bucket without le label")
                continue
            upper = float("inf") if le.group(1) == "+Inf" else float(le.group(1))
            series = re.sub(r'le="[^"]*",?', "", labels)
            buckets.setdefault(family + series, []).append((upper, value))
        if kind == "histogram" and sample.endswith("_count"):
            counts[family + (match.group("labels") or "")] = value
    for series, entries in buckets.items():
        ordered = sorted(entries)
        values = [v for _, v in ordered]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(f"{series}: bucket counts are not cumulative")
        if not ordered or not math.isinf(ordered[-1][0]):
            problems.append(f"{series}: no +Inf bucket")
        elif series in counts and ordered[-1][1] != counts[series]:
            problems.append(
                f"{series}: +Inf bucket {ordered[-1][1]} != _count {counts[series]}"
            )
    return problems


# -- the scrape endpoint -------------------------------------------------------


class MetricsHTTPServer:
    """``GET /metrics`` scrape endpoint over one registry.

    A stdlib ``ThreadingHTTPServer`` on a daemon thread: zero new
    dependencies, good enough for a scraper hitting it every few seconds,
    and shares nothing with the query path beyond per-instrument snapshot
    locks. ``/healthz`` answers 200 while the server is up.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        extra: Optional[Callable[[], Dict[str, Any]]] = None,
    ):
        self.registry = registry
        self.extra = extra
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
                _LOG.debug("metrics http: " + fmt, *args)

            def do_GET(self):  # noqa: N802 - stdlib name
                if self.path.split("?")[0] == "/metrics":
                    body = render_openmetrics(outer.registry).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path.split("?")[0] == "/healthz":
                    payload: Dict[str, Any] = {"ok": True}
                    if outer.extra is not None:
                        try:
                            payload.update(outer.extra())
                        except Exception as exc:  # noqa: BLE001 - health must answer
                            payload = {"ok": False, "error": str(exc)}
                    body = json.dumps(payload).encode("utf-8")
                    self.send_response(200 if payload.get("ok") else 500)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_response(404)
                    self.end_headers()

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.address: Tuple[str, int] = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.2},
                name="metrics-http",
                daemon=True,
            )
            self._thread.start()
            _LOG.info("serving /metrics on %s:%d", *self.address)
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class TelemetrySnapshotWriter:
    """Append a JSONL telemetry line every ``interval_seconds``.

    Each line is ``{"ts": <unix seconds>, "metrics": <registry snapshot>,
    ...extra()}`` — a durable local record of qps, queue depth, governor
    rung counts, shm bytes and prune skips that survives the process, for
    environments without a scraper. ``close()`` writes one final line so
    short-lived runs still leave evidence.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str,
        interval_seconds: float = 10.0,
        extra: Optional[Callable[[], Dict[str, Any]]] = None,
    ):
        self.registry = registry
        self.path = path
        self.interval_seconds = max(0.05, float(interval_seconds))
        self.extra = extra
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.lines_written = 0
        self._lock = threading.Lock()

    def _write_line(self) -> None:
        record: Dict[str, Any] = {"ts": time.time()}
        if self.extra is not None:
            try:
                record.update(self.extra())
            except Exception as exc:  # noqa: BLE001 - telemetry must not kill
                record["extra_error"] = str(exc)
        record["metrics"] = self.registry.snapshot()
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
            self.lines_written += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self._write_line()
            except OSError as exc:
                _LOG.error("telemetry snapshot write failed: %s", exc)
                return

    def start(self) -> "TelemetrySnapshotWriter":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="telemetry-writer", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self._write_line()
        except OSError as exc:
            _LOG.error("final telemetry snapshot failed: %s", exc)
