"""The ``repro`` logger hierarchy.

Library modules obtain loggers through :func:`logger` (``repro.<name>``)
and emit freely; by default everything vanishes into a ``NullHandler`` —
the stdlib contract for libraries — so importing the package never prints.
The CLI's ``--log-level`` flag calls :func:`configure` to attach one stream
handler at the chosen level; calling it again (e.g. in tests) replaces the
handler instead of stacking duplicates.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["logger", "configure", "LEVELS"]

LEVELS = ("debug", "info", "warning", "error")

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())

#: Marker attribute identifying the handler :func:`configure` installed.
_CONFIGURED_FLAG = "_repro_configured"


def logger(name: Optional[str] = None) -> logging.Logger:
    """``repro`` (no argument) or ``repro.<name>``."""
    return _ROOT.getChild(name) if name else _ROOT


def configure(level: str = "info", stream=None) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root at ``level``.

    Idempotent: a handler previously installed by this function is removed
    first, so repeated CLI invocations in one process (tests) do not stack
    handlers and double-print.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")
    for handler in list(_ROOT.handlers):
        if getattr(handler, _CONFIGURED_FLAG, False):
            _ROOT.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    setattr(handler, _CONFIGURED_FLAG, True)
    _ROOT.addHandler(handler)
    _ROOT.setLevel(getattr(logging, level.upper()))
    return _ROOT
