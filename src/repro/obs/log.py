"""The ``repro`` logger hierarchy.

Library modules obtain loggers through :func:`logger` (``repro.<name>``)
and emit freely; by default everything vanishes into a ``NullHandler`` —
the stdlib contract for libraries — so importing the package never prints.
The CLI's ``--log-level`` flag calls :func:`configure` to attach one stream
handler at the chosen level; calling it again (e.g. in tests) replaces the
handler instead of stacking duplicates.

Worker propagation: process-pool workers must log at the same level as
the parent, including workers created by pools that outlive a later
``configure`` call. :func:`configured_level` reports the level the CLI
chose (None when logging was never configured) so the fork payload can
carry it across the process boundary, and :func:`apply_level` applies it
idempotently on the worker side — a no-op when the hierarchy already
agrees, a full :func:`configure` when it does not.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["logger", "configure", "configured_level", "apply_level", "LEVELS"]

LEVELS = ("debug", "info", "warning", "error")

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())

#: Marker attribute identifying the handler :func:`configure` installed.
_CONFIGURED_FLAG = "_repro_configured"

#: The level name the last :func:`configure` call chose; None = never
#: configured. Carried through the fork payload to process workers.
_CONFIGURED_LEVEL: Optional[str] = None


def logger(name: Optional[str] = None) -> logging.Logger:
    """``repro`` (no argument) or ``repro.<name>``."""
    return _ROOT.getChild(name) if name else _ROOT


def configure(level: str = "info", stream=None) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root at ``level``.

    Idempotent: a handler previously installed by this function is removed
    first, so repeated CLI invocations in one process (tests) do not stack
    handlers and double-print.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")
    for handler in list(_ROOT.handlers):
        if getattr(handler, _CONFIGURED_FLAG, False):
            _ROOT.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    setattr(handler, _CONFIGURED_FLAG, True)
    _ROOT.addHandler(handler)
    _ROOT.setLevel(getattr(logging, level.upper()))
    global _CONFIGURED_LEVEL
    _CONFIGURED_LEVEL = level
    return _ROOT


def configured_level() -> Optional[str]:
    """The level :func:`configure` last installed; None when logging has
    never been configured in this process."""
    return _CONFIGURED_LEVEL


def _has_configured_handler() -> bool:
    return any(getattr(h, _CONFIGURED_FLAG, False) for h in _ROOT.handlers)


def apply_level(level: Optional[str]) -> None:
    """Worker-side application of a parent-propagated log level.

    Idempotent: when the hierarchy already carries a configured handler at
    ``level`` (the common fork case — children inherit the parent's
    logging state by memory image) nothing changes; otherwise the worker
    is configured to match the parent. ``None`` (parent never configured)
    is a no-op either way.
    """
    if level is None:
        return
    if _CONFIGURED_LEVEL == level and _has_configured_handler():
        return
    configure(level)
