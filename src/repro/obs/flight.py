"""The flight recorder: bounded per-query evidence, dumped on failure.

When a production query is cancelled, degraded or errors out, the
evidence — its spans, the governance decisions, the admission verdict,
the pruning decisions — normally evaporates with the worker thread. The
flight recorder keeps a bounded in-memory ring of the most recent
queries' records, and on a bad ending writes a **postmortem bundle** to
disk:

* ``record.json`` — the query's identity, admission verdict, the
  chronological decision trail (admission → governor downgrades →
  governance ticket state → outcome), plan fingerprint, prune footer and
  raw span buffer;
* ``trace.json`` — the query's spans as a Chrome ``trace_event`` file,
  loadable in Perfetto;
* ``metrics.json`` — the registry snapshot at dump time.

``repro postmortem <bundle>`` renders a bundle back into the span tree
and decision trail (:func:`render_bundle`). Retention is bounded both in
memory (``capacity`` ring entries) and on disk (``max_bundles``
directories; oldest deleted first).

The recorder is always cheap to keep on: a record is a small dict plus
the span buffer the service already collects, and nothing is written to
disk for queries that end well.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs import log as obs_log
from repro.obs import trace as obs_trace

_LOG = obs_log.logger("obs.flight")

__all__ = [
    "QueryRecord",
    "FlightRecorder",
    "load_bundle",
    "render_bundle",
]

#: Outcome prefixes that trigger a postmortem dump.
DUMP_OUTCOMES = ("cancelled", "failed", "degraded")


class QueryRecord:
    """One query's in-flight evidence: identity, decisions, spans."""

    __slots__ = (
        "query_id", "created_ts", "_t0", "session", "tenant", "query", "mode",
        "deadline_ms", "events", "spans", "plan_fingerprint", "governance",
        "pruning", "outcome", "degraded", "_lock",
    )

    def __init__(self, query_id: int, session: str, tenant: str,
                 query: str, mode: str, deadline_ms: Optional[float] = None):
        self.query_id = query_id
        self.created_ts = time.time()
        self._t0 = time.monotonic()
        self.session = session
        self.tenant = tenant
        self.query = query
        self.mode = mode
        self.deadline_ms = deadline_ms
        #: Chronological decision trail: {"elapsed_ms", "layer", "kind", ...}.
        self.events: List[Dict[str, Any]] = []
        #: Raw span buffer (list of Span.to_dict() entries).
        self.spans: List[dict] = []
        self.plan_fingerprint: Optional[str] = None
        #: Final governance-ticket state (deadline, budget, checks, ...).
        self.governance: Optional[Dict[str, Any]] = None
        #: ScanPrunePlan.summary() of the executed plan, when pruning ran.
        self.pruning: Optional[Dict[str, Any]] = None
        #: "served", "served.degraded", "cancelled.<reason>",
        #: "rejected.<reason>", "failed".
        self.outcome: Optional[str] = None
        self.degraded: Optional[Dict[str, Any]] = None
        self._lock = threading.Lock()

    def note(self, layer: str, kind: str, **fields: Any) -> None:
        """Append one decision to the trail (thread-safe, bounded cost)."""
        event = {
            "elapsed_ms": round((time.monotonic() - self._t0) * 1000.0, 3),
            "layer": layer,
            "kind": kind,
        }
        event.update(fields)
        with self._lock:
            self.events.append(event)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            events = list(self.events)
        return {
            "query_id": self.query_id,
            "created_ts": self.created_ts,
            "session": self.session,
            "tenant": self.tenant,
            "query": self.query,
            "mode": self.mode,
            "deadline_ms": self.deadline_ms,
            "outcome": self.outcome,
            "degraded": self.degraded,
            "plan_fingerprint": self.plan_fingerprint,
            "governance": self.governance,
            "pruning": self.pruning,
            "events": events,
            "spans": list(self.spans),
        }


class FlightRecorder:
    """Bounded ring of recent query records plus the postmortem dumper."""

    def __init__(
        self,
        capacity: int = 256,
        dump_dir: Optional[str] = None,
        max_bundles: int = 16,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.max_bundles = max(1, int(max_bundles))
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_id = 1
        self.dumped = 0

    # -- recording -------------------------------------------------------------
    def record(self, session: str, tenant: str, query: str, mode: str,
               deadline_ms: Optional[float] = None) -> QueryRecord:
        with self._lock:
            query_id = self._next_id
            self._next_id += 1
        record = QueryRecord(query_id, session, tenant, query, mode, deadline_ms)
        with self._lock:
            self._ring.append(record)
        return record

    def recent(self, n: Optional[int] = None) -> List[QueryRecord]:
        with self._lock:
            records = list(self._ring)
        return records if n is None else records[-n:]

    def find(self, query_id: int) -> Optional[QueryRecord]:
        with self._lock:
            for record in self._ring:
                if record.query_id == query_id:
                    return record
        return None

    # -- dumping ---------------------------------------------------------------
    @staticmethod
    def should_dump(outcome: Optional[str]) -> bool:
        if not outcome:
            return False
        return outcome.startswith(DUMP_OUTCOMES) or outcome == "served.degraded"

    def finish(self, record: QueryRecord, outcome: str,
               metrics_snapshot: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Set the record's outcome; dump a bundle when it ended badly.

        Returns the bundle path when one was written.
        """
        record.outcome = outcome
        record.note("service", "outcome", outcome=outcome)
        if self.dump_dir is None or not self.should_dump(outcome):
            return None
        try:
            return self.dump(record, metrics_snapshot)
        except OSError as exc:
            _LOG.error("postmortem dump failed for query %d: %s",
                       record.query_id, exc)
            return None

    def dump(self, record: QueryRecord,
             metrics_snapshot: Optional[Dict[str, Any]] = None) -> str:
        """Write the postmortem bundle; returns the bundle directory."""
        assert self.dump_dir is not None
        reason = (record.outcome or "unknown").replace("/", "_")
        bundle = os.path.join(
            self.dump_dir, f"postmortem-{record.query_id:06d}-{reason}"
        )
        os.makedirs(bundle, exist_ok=True)
        with open(os.path.join(bundle, "record.json"), "w", encoding="utf-8") as fh:
            json.dump(record.to_dict(), fh, indent=2, sort_keys=True, default=str)
        tracer = obs_trace.Tracer(name=f"postmortem-{record.query_id}")
        tracer.adopt(record.spans)
        with open(os.path.join(bundle, "trace.json"), "w", encoding="utf-8") as fh:
            json.dump(tracer.to_chrome(), fh)
        if metrics_snapshot is not None:
            with open(
                os.path.join(bundle, "metrics.json"), "w", encoding="utf-8"
            ) as fh:
                json.dump(metrics_snapshot, fh, indent=2, sort_keys=True,
                          default=str)
        with self._lock:
            self.dumped += 1
        self._enforce_retention()
        _LOG.warning("wrote postmortem bundle %s (%s)", bundle, record.outcome)
        return bundle

    def _enforce_retention(self) -> None:
        """Keep at most ``max_bundles`` bundle directories (oldest deleted)."""
        assert self.dump_dir is not None
        try:
            entries = sorted(
                e for e in os.listdir(self.dump_dir) if e.startswith("postmortem-")
            )
        except OSError:
            return
        for stale in entries[: max(0, len(entries) - self.max_bundles)]:
            shutil.rmtree(os.path.join(self.dump_dir, stale), ignore_errors=True)


# -- bundle rendering (the `repro postmortem` CLI) -----------------------------


def load_bundle(path: str) -> Dict[str, Any]:
    """Load a bundle directory (or a bare record.json) into a dict."""
    record_path = path
    if os.path.isdir(path):
        record_path = os.path.join(path, "record.json")
    with open(record_path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def render_bundle(path: str) -> str:
    """Human rendering of a postmortem bundle: identity, decision trail,
    governance ticket, prune footer and the full span tree."""
    record = load_bundle(path)
    lines: List[str] = []
    deadline = record.get("deadline_ms")
    lines.append(
        f"postmortem: query {record['query']} [{record['mode']}] "
        f"tenant={record['tenant']} session={record['session']} "
        f"outcome={record.get('outcome', '?')}"
    )
    lines.append(
        f"  query_id={record['query_id']}  "
        f"deadline_ms={deadline if deadline is not None else '-'}  "
        f"fingerprint={record.get('plan_fingerprint') or '-'}"
    )
    degraded = record.get("degraded")
    if degraded:
        ladder = " -> ".join(
            f"{step['from']}->{step['to']}[{step['reason']}]"
            for step in degraded.get("ladder", [])
        )
        lines.append(
            f"  degraded: served at rung {degraded.get('rung')} "
            f"({degraded.get('reason')}); ladder: {ladder or '-'}"
        )
    lines.append("")
    lines.append("decision trail:")
    for event in record.get("events", []):
        extras = " ".join(
            f"{k}={v}" for k, v in event.items()
            if k not in ("elapsed_ms", "layer", "kind")
        )
        lines.append(
            f"  +{event['elapsed_ms']:9.3f}ms  {event['layer']:<10} "
            f"{event['kind']:<18} {extras}"
        )
    governance = record.get("governance")
    if governance:
        lines.append("")
        lines.append("governance ticket:")
        for key in sorted(governance):
            lines.append(f"  {key} = {governance[key]}")
    pruning = record.get("pruning")
    if pruning:
        lines.append("")
        lines.append("prune footer:")
        for key in sorted(pruning):
            lines.append(f"  {key} = {pruning[key]}")
    spans = record.get("spans") or []
    lines.append("")
    if spans:
        tracer = obs_trace.Tracer(name="postmortem")
        tracer.adopt(spans)
        lines.append(f"span tree ({len(spans)} spans):")
        tree = tracer.render_tree()
        lines.extend("  " + line for line in tree.rstrip("\n").split("\n"))
    else:
        lines.append("span tree: (no spans recorded)")
    return "\n".join(lines) + "\n"
