"""Central metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per executor session absorbs the statistics
that previously lived in four disconnected structures (``PlanCache``
counters, the executor's compile/execute split, ``ParallelMetrics``
retry/speculation/degradation counts, per-sampler rows and weight mass),
keyed uniformly by metric name plus a label set — typically the plan
fingerprint and the node's structural address from
:mod:`repro.algebra.addressing`, so a metric line reads "sampler at
``r.0.1.0`` of plan ``ab12cd…`` emitted 11897 of 120034 rows".

Design points:

* **get-or-create instruments** — ``registry.counter("x", plan=fp)``
  returns the same :class:`Counter` for the same (name, labels) pair, so
  call sites never pre-register anything;
* **fixed-bucket histograms** — percentiles come from cumulative bucket
  counts (upper-bound reporting, exact min/max kept separately), bounded
  memory regardless of observation count;
* **snapshot()/reset()** — an explicit harvest boundary. ``snapshot()``
  returns a plain JSON-able dict; ``reset()`` zeroes every instrument (and
  returns the final pre-reset snapshot) so cold-vs-warm benchmark phases
  and repeated queries cannot bleed into each other.

Thread-safe: instrument creation takes the registry lock, and every
instrument carries its own lock guarding mutation *and* snapshot. A bare
``+=`` is not atomic in CPython (the load/add/store bytecodes can
interleave between threads, losing increments) — the query service drives
one registry from many session worker threads concurrently, so updates
must be exact, not merely non-crashing. The harvest boundary is equally
exact: ``reset()`` drains each instrument atomically under its own lock
(read-and-zero as one critical section), so an increment racing a harvest
lands either in the returned snapshot or in the next one — never in both,
never in neither.

Label cardinality is bounded: per-tenant/per-node labels fed by a load
generator could otherwise mint an unbounded number of label-sets per
metric. Past ``max_labelsets_per_metric`` distinct label-sets, further
novel label-sets collapse into a single ``{overflow="true"}`` bucket per
metric and the ``registry.labelset_overflow`` counter records the spill.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import log as obs_log

_LOG = obs_log.logger("obs.registry")

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABELS",
]

#: Default histogram buckets (seconds-oriented, exponential): good for both
#: sub-millisecond operator timings and multi-second query wall clocks.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelKey = Tuple[Tuple[str, str], ...]

#: Label-set novel label-sets collapse into once a metric hits the
#: cardinality cap.
OVERFLOW_LABELS: Dict[str, str] = {"overflow": "true"}


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        with self._lock:
            return self.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def drain(self) -> float:
        """Atomically read-and-zero: the harvest boundary. An increment
        racing the harvest lands in exactly one snapshot."""
        with self._lock:
            value, self.value = self.value, 0.0
            return value


class Gauge:
    """Last-set value (e.g. effective sampling rate, weight mass)."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        """Atomically adjust the gauge (e.g. queue depth up/down)."""
        with self._lock:
            self.value = (self.value or 0.0) + float(delta)

    def snapshot(self) -> Optional[float]:
        with self._lock:
            return self.value

    def reset(self) -> None:
        with self._lock:
            self.value = None

    def drain(self) -> Optional[float]:
        with self._lock:
            value, self.value = self.value, None
            return value


class Histogram:
    """Fixed-bucket histogram with cumulative-count percentiles."""

    __slots__ = ("buckets", "counts", "count", "total", "min", "max", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        # counts[i] observes values <= buckets[i]; the final slot is overflow.
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def _percentile_locked(self, q: float) -> Optional[float]:
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                upper = self.buckets[i] if i < len(self.buckets) else self.max
                return min(upper, self.max) if self.max is not None else upper
        return self.max

    def percentile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the ``q``-quantile observation
        (clamped to the exact max; ``None`` when empty)."""
        with self._lock:
            return self._percentile_locked(q)

    @property
    def mean(self) -> Optional[float]:
        with self._lock:
            return self.total / self.count if self.count else None

    def _snapshot_locked(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else None,
        }
        if self.count:
            out["p50"] = self._percentile_locked(0.50)
            out["p95"] = self._percentile_locked(0.95)
            out["p99"] = self._percentile_locked(0.99)
        return out

    def snapshot(self) -> dict:
        with self._lock:
            return self._snapshot_locked()

    def bucket_counts(self) -> Tuple[Tuple[float, ...], List[int]]:
        """(bucket upper bounds, per-bucket counts incl. overflow slot) —
        the raw material of the OpenMetrics cumulative-bucket encoding."""
        with self._lock:
            return self.buckets, list(self.counts)

    def _reset_locked(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()

    def drain(self) -> dict:
        with self._lock:
            out = self._snapshot_locked()
            self._reset_locked()
            return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name+labels-keyed store of counters, gauges and histograms.

    ``max_labelsets_per_metric`` caps the distinct label-sets one metric
    may hold; past the cap, novel label-sets collapse into a shared
    ``{overflow="true"}`` bucket (counted in ``registry.labelset_overflow``)
    so a hostile or merely enthusiastic label source cannot grow registry
    memory without bound.
    """

    #: Name of the counter recording label-set spills, labeled by metric.
    OVERFLOW_COUNTER = "registry.labelset_overflow"

    def __init__(self, max_labelsets_per_metric: int = 512):
        if max_labelsets_per_metric < 1:
            raise ValueError("max_labelsets_per_metric must be positive")
        self.max_labelsets_per_metric = int(max_labelsets_per_metric)
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, str, LabelKey], Any] = {}
        #: Distinct label-sets per (kind, name) — the cardinality the cap
        #: is held over.
        self._labelset_counts: Dict[Tuple[str, str], int] = {}
        self._overflow_warned: set = set()

    # -- get-or-create --------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, Any], **kwargs):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            return instrument
        overflowed = False
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                existing_kinds = {k for k, n, _ in self._instruments if n == name}
                if existing_kinds and kind not in existing_kinds:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{sorted(existing_kinds)[0]}, cannot re-register as {kind}"
                    )
                count_key = (kind, name)
                if (
                    labels
                    and labels != OVERFLOW_LABELS
                    and name != self.OVERFLOW_COUNTER
                    and self._labelset_counts.get(count_key, 0)
                    >= self.max_labelsets_per_metric
                ):
                    # Cardinality cap hit: collapse into the overflow bucket.
                    overflowed = True
                    key = (kind, name, _label_key(OVERFLOW_LABELS))
                    instrument = self._instruments.get(key)
                    if instrument is None:
                        instrument = _KINDS[kind](**kwargs)
                        self._instruments[key] = instrument
                else:
                    instrument = _KINDS[kind](**kwargs)
                    self._instruments[key] = instrument
                    self._labelset_counts[count_key] = (
                        self._labelset_counts.get(count_key, 0) + 1
                    )
        if overflowed:
            self.counter(self.OVERFLOW_COUNTER, metric=name).inc()
            if name not in self._overflow_warned:
                self._overflow_warned.add(name)
                _LOG.warning(
                    "metric %r hit the label-cardinality cap (%d label-sets); "
                    "further novel label-sets collapse into overflow=true",
                    name, self.max_labelsets_per_metric,
                )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        if buckets is None:
            return self._get("histogram", name, labels)
        return self._get("histogram", name, labels, buckets=buckets)

    # -- harvest --------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view: ``{kind: {name: [{"labels": …, …}, …]}}``."""
        with self._lock:
            items = list(self._instruments.items())
        out: Dict[str, Dict[str, List[dict]]] = {}
        for (kind, name, label_key), instrument in sorted(
            items, key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
        ):
            entry = {"labels": dict(label_key)}
            value = instrument.snapshot()
            if isinstance(value, dict):
                entry.update(value)
            else:
                entry["value"] = value
            out.setdefault(kind, {}).setdefault(name, []).append(entry)
        return out

    def reset(self) -> dict:
        """Zero every instrument; returns the final pre-reset snapshot.

        Each instrument is *drained* — read and zeroed under its own lock
        as one critical section — so an increment racing the harvest is
        counted exactly once: either in the snapshot returned here or in
        the next one. (A snapshot-then-zero sequence would lose increments
        landing between the two steps.)
        """
        with self._lock:
            items = list(self._instruments.items())
        out: Dict[str, Dict[str, List[dict]]] = {}
        for (kind, name, label_key), instrument in sorted(
            items, key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
        ):
            entry = {"labels": dict(label_key)}
            value = instrument.drain()
            if isinstance(value, dict):
                entry.update(value)
            else:
                entry["value"] = value
            out.setdefault(kind, {}).setdefault(name, []).append(entry)
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def instruments(self) -> List[Tuple[str, str, Dict[str, str], Any]]:
        """Stable-ordered ``(kind, name, labels, instrument)`` rows — the
        raw view the OpenMetrics exporter renders from (histograms expose
        their bucket counts only through the live instrument)."""
        with self._lock:
            items = list(self._instruments.items())
        return [
            (kind, name, dict(label_key), instrument)
            for (kind, name, label_key), instrument in sorted(
                items, key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
            )
        ]

    # -- conveniences ---------------------------------------------------------
    def value(self, name: str, **labels: Any) -> Any:
        """Current value of a counter/gauge (0/None if never touched)."""
        for kind in ("counter", "gauge"):
            instrument = self._instruments.get((kind, name, _label_key(labels)))
            if instrument is not None:
                return instrument.snapshot()
        return None

    def total(self, name: str) -> float:
        """Sum of a counter across every label set (0.0 when absent)."""
        return sum(
            inst.snapshot()
            for (kind, n, _), inst in self._instruments.items()
            if kind == "counter" and n == name
        )

    def __len__(self) -> int:
        return len(self._instruments)
