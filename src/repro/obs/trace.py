"""Zero-dependency span tracer with Chrome/Perfetto export.

A :class:`Span` is one timed region of work — an operator execution, a task
attempt, an ASALQA rule firing — with a name, attributes, monotonic start
and end timestamps, and a parent. A :class:`Tracer` collects spans for one
session (one CLI invocation, one test) and renders them two ways:

* :meth:`Tracer.to_chrome` — the Chrome ``trace_event`` JSON array format
  (complete ``"X"`` events with ``ts``/``dur`` in microseconds plus
  process/thread metadata events), loadable in Perfetto or
  ``chrome://tracing``;
* :meth:`Tracer.render_tree` — an indented human tree view, the backbone of
  ``explain-analyze`` output.

Two usage modes coexist because execution overlaps in two different ways:

* **context-manager spans** (:meth:`Tracer.span`) nest through a
  thread-local stack — right for the planner and the serial executor,
  where one thread descends through phases;
* **manual spans** (:meth:`Tracer.begin` / :meth:`Tracer.end`) for regions
  that overlap arbitrarily — the task scheduler keeps many attempt spans
  open at once and closes each with its outcome (``ok``, ``error``,
  ``cancelled``).

Cross-process stitching: a worker cannot append to the parent's tracer, so
the task runtime installs a fresh tracer as the *thread-local override*
inside the worker (:func:`push_override`), ships its serialized
:meth:`Tracer.buffer` back with the payload, and the parent
:meth:`Tracer.adopt`\\ s it under the attempt span — remapping span ids so
the spliced subtree hangs off the right parent. Timestamps are raw
``perf_counter_ns`` values; under the fork start method (the only process
mode the pools support) parent and children share the monotonic clock base,
so worker spans land at the right wall position in the merged trace.

The module-level tracer (:func:`set_tracer` / :func:`current_tracer`) is
how instrumented code finds the active tracer without plumbing it through
every signature. ``current_tracer()`` returning ``None`` is the disabled
fast path: instrumentation must guard on it and do nothing.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "current_tracer",
    "push_override",
    "pop_override",
    "maybe_span",
    "validate_chrome_trace",
]


@dataclass
class Span:
    """One timed region of work."""

    span_id: int
    name: str
    start_ns: int
    parent_id: Optional[int] = None
    end_ns: Optional[int] = None
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)
    pid: int = field(default_factory=os.getpid)
    tid: int = field(default_factory=threading.get_ident)

    @property
    def closed(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def to_dict(self) -> dict:
        """Picklable/JSON-able encoding (the unit of worker span buffers)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "status": self.status,
            "attributes": dict(self.attributes),
            "pid": self.pid,
            "tid": self.tid,
        }


class _SpanContext:
    """Context manager wrapping one stack-nested span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        status = "ok"
        if exc_type is not None:
            from repro.errors import TaskCancelled

            status = "cancelled" if issubclass(exc_type, TaskCancelled) else "error"
            self.span.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._pop(self.span, status)
        return None  # never swallow


class Tracer:
    """Collects spans for one session; thread-safe."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 1
        self._stacks = threading.local()

    # -- span lifecycle -------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = []
            self._stacks.value = stack
        return stack

    def current_span_id(self) -> Optional[int]:
        """Innermost open context-manager span of this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def begin(
        self, name: str, parent_id: Optional[int] = None, **attributes: Any
    ) -> Span:
        """Open a span without touching the nesting stack (manual mode).

        With no explicit ``parent_id`` the span hangs off this thread's
        innermost context-manager span, so manual spans still nest under
        the phase that launched them.
        """
        if parent_id is None:
            parent_id = self.current_span_id()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            span_id=span_id,
            name=name,
            start_ns=time.perf_counter_ns(),
            parent_id=parent_id,
            attributes=dict(attributes),
        )
        with self._lock:
            self._spans.append(span)
        return span

    def end(self, span: Span, status: str = "ok", **attributes: Any) -> Span:
        """Close a manually-opened span with its outcome."""
        if span.end_ns is None:
            span.end_ns = time.perf_counter_ns()
        span.status = status
        if attributes:
            span.attributes.update(attributes)
        return span

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a stack-nested span; ``with tracer.span("phase") as sp:``."""
        sp = self.begin(name, **attributes)
        self._stack().append(sp.span_id)
        return _SpanContext(self, sp)

    def _pop(self, span: Span, status: str) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        self.end(span, status=status)

    # -- introspection --------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def unclosed(self) -> List[Span]:
        return [s for s in self.spans if not s.closed]

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        return sorted(
            (s for s in self.spans if s.parent_id == span_id),
            key=lambda s: s.start_ns,
        )

    # -- cross-process stitching ----------------------------------------------
    def buffer(self) -> List[dict]:
        """Serializable (picklable, JSON-able) encoding of every span."""
        return [s.to_dict() for s in self.spans]

    def adopt(self, buffer: List[dict], parent_id: Optional[int] = None) -> List[Span]:
        """Splice a worker's span buffer into this trace.

        Span ids are remapped into this tracer's id space; buffer-root spans
        (those whose parent is not in the buffer) are re-parented onto
        ``parent_id``. Returns the adopted spans.
        """
        if not buffer:
            return []
        with self._lock:
            id_map = {}
            for entry in buffer:
                id_map[entry["span_id"]] = self._next_id
                self._next_id += 1
        adopted = []
        for entry in buffer:
            old_parent = entry.get("parent_id")
            new_parent = id_map.get(old_parent, parent_id)
            span = Span(
                span_id=id_map[entry["span_id"]],
                name=entry["name"],
                start_ns=entry["start_ns"],
                parent_id=new_parent,
                end_ns=entry.get("end_ns"),
                status=entry.get("status", "ok"),
                attributes=dict(entry.get("attributes") or {}),
                pid=entry.get("pid", os.getpid()),
                tid=entry.get("tid", 0),
            )
            adopted.append(span)
        with self._lock:
            self._spans.extend(adopted)
        return adopted

    # -- export ---------------------------------------------------------------
    def to_chrome(self) -> List[dict]:
        """Chrome ``trace_event`` JSON array: ``"X"`` complete events.

        ``ts`` is microseconds since the earliest span in the trace, so the
        file opens at t=0 in Perfetto regardless of process uptime.
        """
        spans = self.spans
        if not spans:
            return []
        epoch = min(s.start_ns for s in spans)
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{self.name} (pid {pid})"},
            }
            for pid in sorted({s.pid for s in spans})
        ]
        for s in spans:
            end_ns = s.end_ns if s.end_ns is not None else s.start_ns
            args = {k: _jsonable(v) for k, v in s.attributes.items()}
            if s.status != "ok":
                args["status"] = s.status
            if s.end_ns is None:
                args["unclosed"] = True
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            events.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "ts": (s.start_ns - epoch) / 1000.0,
                    "dur": max(0.0, (end_ns - s.start_ns) / 1000.0),
                    "pid": s.pid,
                    "tid": s.tid,
                    "cat": s.status,
                    "args": args,
                }
            )
        return events

    def write_chrome(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns event count."""
        events = self.to_chrome()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(events, fh)
        return len(events)

    def render_tree(self, max_attr_width: int = 60) -> str:
        """Indented human view of the span forest."""
        out = io.StringIO()

        def fmt_attrs(span: Span) -> str:
            if not span.attributes:
                return ""
            text = " ".join(f"{k}={_short(v)}" for k, v in span.attributes.items())
            if len(text) > max_attr_width:
                text = text[: max_attr_width - 1] + "…"
            return "  " + text

        def walk(parent_id: Optional[int], depth: int) -> None:
            for span in self.children_of(parent_id):
                marker = "" if span.status == "ok" else f" [{span.status}]"
                out.write(
                    f"{'  ' * depth}{span.name}{marker}  "
                    f"{span.duration_ms:.3f}ms{fmt_attrs(span)}\n"
                )
                walk(span.span_id, depth + 1)

        roots = {s.span_id for s in self.spans}
        # A span whose parent is unknown (e.g. adopted with a lost parent)
        # renders as a root rather than disappearing.
        for span in sorted(self.spans, key=lambda s: s.start_ns):
            if span.parent_id is None or span.parent_id not in roots:
                marker = "" if span.status == "ok" else f" [{span.status}]"
                out.write(f"{span.name}{marker}  {span.duration_ms:.3f}ms"
                          f"{fmt_attrs(span)}\n")
                walk(span.span_id, 1)
        return out.getvalue()


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _short(value: Any) -> str:
    text = str(value)
    return text if len(text) <= 24 else text[:23] + "…"


# -- active-tracer management --------------------------------------------------

#: Session tracer, installed by the CLI's ``--trace`` flag (or tests).
_GLOBAL: Optional[Tracer] = None

#: Thread-local override: worker code runs under its own buffer tracer so
#: spans recorded inside a task attempt land in the pickled buffer, not the
#: (possibly fork-inherited, possibly shared-by-threads) session tracer.
_OVERRIDE = threading.local()


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or clear, with ``None``) the session tracer."""
    global _GLOBAL
    _GLOBAL = tracer


def get_tracer() -> Optional[Tracer]:
    """The session tracer, ignoring thread-local overrides."""
    return _GLOBAL


def current_tracer() -> Optional[Tracer]:
    """The tracer instrumented code should record into right now."""
    override = getattr(_OVERRIDE, "value", None)
    if override is not None:
        return override
    return _GLOBAL


def push_override(tracer: Tracer) -> Optional[Tracer]:
    """Make ``tracer`` this thread's active tracer; returns the previous
    override (to pass back to :func:`pop_override`)."""
    previous = getattr(_OVERRIDE, "value", None)
    _OVERRIDE.value = tracer
    return previous


def pop_override(previous: Optional[Tracer]) -> None:
    _OVERRIDE.value = previous


def maybe_span(name: str, **attributes):
    """Context manager over the active tracer; a no-op when tracing is off.

    Instrumentation call sites use this so the disabled path costs one
    tracer lookup and a reusable null context — no span objects.
    """
    tracer = current_tracer()
    if tracer is None:
        return contextlib.nullcontext(None)
    return tracer.span(name, **attributes)


# -- trace-schema validation ---------------------------------------------------

def validate_chrome_trace(events: List[dict]) -> List[str]:
    """Schema check for an exported trace; returns a list of problems.

    Every event must carry ``ph``/``ts``/``pid``/``tid``; complete (``X``)
    events additionally need a non-negative ``dur``; span ids referenced as
    parents must exist. An empty list means the trace is well-formed — the
    CI trace-validation step fails the build on any problem.
    """
    problems: List[str] = []
    if not isinstance(events, list):
        return [f"trace must be a JSON array of events, got {type(events).__name__}"]
    span_ids = set()
    parents: List[tuple] = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {i} ({event.get('name', '?')}): missing {key!r}")
        ph = event.get("ph")
        if ph == "X":
            dur = event.get("dur")
            if dur is None:
                problems.append(f"event {i} ({event.get('name', '?')}): X event missing 'dur'")
            elif dur < 0:
                problems.append(f"event {i} ({event.get('name', '?')}): negative dur {dur}")
            args = event.get("args") or {}
            if args.get("unclosed"):
                problems.append(f"event {i} ({event.get('name', '?')}): unclosed span")
            if "span_id" in args:
                span_ids.add(args["span_id"])
            if "parent_id" in args:
                parents.append((i, event.get("name", "?"), args["parent_id"]))
        elif ph not in ("M", "X", "B", "E", "i", "C"):
            problems.append(f"event {i} ({event.get('name', '?')}): unknown phase {ph!r}")
    for i, name, parent in parents:
        if parent not in span_ids:
            problems.append(f"event {i} ({name}): parent span {parent} not in trace")
    return problems


def iter_trace_file(path: str) -> Iterator[dict]:
    """Load a trace file written by :meth:`Tracer.write_chrome`."""
    with open(path, "r", encoding="utf-8") as fh:
        events = json.load(fh)
    yield from events
