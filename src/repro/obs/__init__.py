"""Observability: tracing, metrics and logging for the whole pipeline.

One coherent layer replaces the scattered ad-hoc stats the system grew
organically (``PlanCache`` counters, ``ParallelMetrics``,
``FaultToleranceStats``, per-operator rows/time):

* :mod:`repro.obs.trace` — a zero-dependency span tracer. Spans carry
  attributes, nest by thread-local context, survive pickling across worker
  processes (serializable buffers spliced back into the parent trace), and
  export both a Chrome/Perfetto ``trace_event`` JSON file and a human tree
  view.
* :mod:`repro.obs.registry` — a central :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms, keyed by metric name plus
  labels (plan fingerprint, node address, sampler kind, ...), with explicit
  ``snapshot()``/``reset()`` so repeated runs cannot bleed into each other.
* :mod:`repro.obs.log` — the stdlib ``logging`` hierarchy rooted at
  ``repro`` (NullHandler by default; ``configure()`` wires a stream handler
  for the CLI's ``--log-level`` flag).
* :mod:`repro.obs.explain` — the ``explain-analyze`` renderer: the
  annotated operator tree (estimated vs. actual rows, sampler accuracy
  telemetry, C1/C2 dominance-check values).

Everything is optional and pay-for-play: with no tracer installed and no
registry consulted, the instrumented hot paths cost one ``is None`` branch.
"""

from repro.obs.log import configure as configure_logging
from repro.obs.log import logger
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    get_tracer,
    set_tracer,
    validate_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "configure_logging",
    "current_tracer",
    "get_tracer",
    "logger",
    "set_tracer",
    "validate_chrome_trace",
]
