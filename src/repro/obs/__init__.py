"""Observability: tracing, metrics and logging for the whole pipeline.

One coherent layer replaces the scattered ad-hoc stats the system grew
organically (``PlanCache`` counters, ``ParallelMetrics``,
``FaultToleranceStats``, per-operator rows/time):

* :mod:`repro.obs.trace` — a zero-dependency span tracer. Spans carry
  attributes, nest by thread-local context, survive pickling across worker
  processes (serializable buffers spliced back into the parent trace), and
  export both a Chrome/Perfetto ``trace_event`` JSON file and a human tree
  view.
* :mod:`repro.obs.registry` — a central :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms, keyed by metric name plus
  labels (plan fingerprint, node address, sampler kind, ...), with explicit
  ``snapshot()``/``reset()`` so repeated runs cannot bleed into each other.
* :mod:`repro.obs.log` — the stdlib ``logging`` hierarchy rooted at
  ``repro`` (NullHandler by default; ``configure()`` wires a stream handler
  for the CLI's ``--log-level`` flag).
* :mod:`repro.obs.explain` — the ``explain-analyze`` renderer: the
  annotated operator tree (estimated vs. actual rows, sampler accuracy
  telemetry, C1/C2 dominance-check values).
* :mod:`repro.obs.export` — the production telemetry plane's egress:
  OpenMetrics/Prometheus text exposition, a ``/metrics`` scrape endpoint,
  and a periodic JSONL snapshot writer.
* :mod:`repro.obs.accuracy` — the accuracy/SLO ledger: per-(tenant,
  sampler-kind, rung) CI-coverage calibration fed by exact-replay audits,
  plus latency-SLO error-budget burn.
* :mod:`repro.obs.flight` — the flight recorder: a bounded ring of recent
  queries' spans and decisions, dumped as postmortem bundles on bad
  endings.

Everything is optional and pay-for-play: with no tracer installed and no
registry consulted, the instrumented hot paths cost one ``is None`` branch.
"""

from repro.obs.accuracy import AccuracyLedger, AuditComparison, compare_tables
from repro.obs.export import (
    MetricsHTTPServer,
    TelemetrySnapshotWriter,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.flight import FlightRecorder, QueryRecord, load_bundle, render_bundle
from repro.obs.log import configure as configure_logging
from repro.obs.log import logger
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    get_tracer,
    set_tracer,
    validate_chrome_trace,
)

__all__ = [
    "AccuracyLedger",
    "AuditComparison",
    "FlightRecorder",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "QueryRecord",
    "Span",
    "TelemetrySnapshotWriter",
    "Tracer",
    "compare_tables",
    "configure_logging",
    "current_tracer",
    "get_tracer",
    "load_bundle",
    "logger",
    "render_bundle",
    "render_openmetrics",
    "set_tracer",
    "validate_chrome_trace",
]
