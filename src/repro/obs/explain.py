"""``explain-analyze``: the annotated operator tree for one query.

Runs the query once through the planner and the serial executor and joins
three views of the plan on the node's structural address (the join key the
whole observability layer shares, see :mod:`repro.algebra.addressing`):

* the **optimizer's view** — estimated rows from the statistics deriver and
  the C1/C2 dominance-check record behind every sampler decision;
* the **executor's view** — measured rows-in/rows-out and wall time per
  physical operator, plus sampler accuracy telemetry (effective pass rate
  vs. the target ``p``, output Horvitz-Thompson weight mass);
* the **answer's view** — confidence-interval half-width columns of the
  final table, summarized per aggregate.

Addresses printed here are exactly the ``address`` attributes of the trace
spans the same run emits, so a Perfetto trace and an explain tree can be
read side by side.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algebra.addressing import format_address, plan_fingerprint, walk_with_addresses
from repro.algebra.logical import SamplerNode
from repro.engine.operators import CI_SUFFIX

__all__ = ["explain_analyze", "render_explain"]


def _estimated_rows(deriver, node) -> Optional[float]:
    """Optimizer cardinality estimate; None when the deriver cannot price
    the node (e.g. finalized HT aggregates it never saw during costing)."""
    try:
        return float(deriver.stats_for(node).rows)
    except Exception:
        return None


def _decision_for(decisions, spec):
    """The costing decision that produced this physical sampler spec.

    Matched by object identity first (the winning plan holds the very spec
    objects the decisions minted), then by repr as a fallback.
    """
    for decision in decisions:
        if decision.spec is spec:
            return decision
    for decision in decisions:
        if repr(decision.spec) == repr(spec):
            return decision
    return None


def _fmt_rows(value) -> str:
    if value is None:
        return "?"
    if value >= 10_000:
        return f"{value:,.0f}"
    return f"{value:.0f}" if float(value).is_integer() else f"{value:.1f}"


def _ci_summary(table) -> list:
    """Per-aggregate confidence-interval half-width summary of the answer."""
    out = []
    for name in table.column_names:
        if not name.endswith(CI_SUFFIX):
            continue
        target = name[: -len(CI_SUFFIX)]
        ci = np.asarray(table.column(name), dtype=float)
        finite = ci[np.isfinite(ci)]
        if finite.size == 0:
            out.append(f"{target}: CI half-width n/a")
            continue
        line = f"{target}: CI half-width mean={finite.mean():.4g} max={finite.max():.4g}"
        if target in table.column_names:
            values = np.asarray(table.column(target), dtype=float)
            with np.errstate(divide="ignore", invalid="ignore"):
                rel = np.abs(ci / values)
            rel = rel[np.isfinite(rel)]
            if rel.size:
                line += f" (median ±{np.median(rel):.1%} of the estimate)"
        out.append(line)
    return out


def explain_analyze(planner, executor, query) -> str:
    """Plan, execute and render one query's annotated operator tree."""
    result = planner.plan(query)
    execution = executor.execute(result.plan)
    rendered = render_explain(planner, result, execution)
    for footer in (_pruning_footer(execution), _memory_footer(executor.registry)):
        if footer:
            rendered += "\n" + footer
    return rendered


def _pruning_footer(execution) -> str:
    """One line of partition prune/select telemetry, when the pass fired.

    Mirrors ``ParallelMetrics.pruning`` (the executed scan-prune plan's
    summary dict); absent for serial runs and runs where no partition was
    skipped.
    """
    parallel = getattr(execution, "parallel", None)
    info = getattr(parallel, "pruning", None)
    if not info:
        return ""
    line = (
        f"pruning: {info['partitions_executed']}/{info['partitions_total']} "
        f"{info['table']} partition(s) executed "
        f"({info['partitions_pruned']} pruned exactly"
    )
    if info.get("partitions_selected"):
        line += (
            f", {info['partitions_selected']} kept by weighted selection"
            f" at fraction {info.get('selection_fraction', 0):.2f}"
            f", min inclusion p={info.get('inclusion_min', 1.0):.3f}"
        )
    if info.get("partitions_stale_retained"):
        line += f", {info['partitions_stale_retained']} stale retained"
    line += (
        f"); {info['rows_pruned_actual'] + info['rows_unselected']:,} of "
        f"{info['rows_total']:,} rows skipped  [token {info['token']}]"
    )
    for reason in info.get("predicates", ()):
        line += f"\n  predicate: {reason}"
    for reason in info.get("semijoins", ()):
        line += f"\n  semi-join: {reason}"
    return line


def _memory_footer(registry) -> str:
    """One line of ``memory.*`` telemetry: arena occupancy after the run
    plus the cumulative morsel count this executor has recorded."""
    live = registry.gauge("memory.live_segments").value
    mapped = registry.gauge("memory.bytes_mapped").value
    morsels = registry.counter("memory.morsels_executed").value
    return (
        f"memory: {int(live)} live segment(s), {int(mapped):,} bytes mapped, "
        f"{int(morsels):,} morsel(s) executed"
    )


def render_explain(planner, result, execution) -> str:
    """Render an :class:`AsalqaResult` plus its :class:`ExecutionResult`."""
    lines = []
    lines.append(
        f"explain analyze: {result.query_name} "
        f"({'approximable' if result.approximable else 'unapproximable — exact plan'})"
    )
    compile_ms = (
        f"{execution.compile_seconds * 1e3:.2f}ms"
        if execution.compile_seconds is not None
        else "-"
    )
    execute_ms = (
        f"{execution.wall_clock_seconds * 1e3:.2f}ms"
        if execution.wall_clock_seconds is not None
        else "-"
    )
    lines.append(
        f"plan fingerprint {plan_fingerprint(result.plan)[:12]}  "
        f"compile {compile_ms} "
        f"(cache {'hit' if execution.plan_cache_hit else 'miss'})  "
        f"execute {execute_ms}  "
        f"estimated gain {result.estimated_gain():.2f}x"
    )

    by_address = {metric.address: metric for metric in execution.operators or ()}
    deriver = planner.deriver

    rows = []
    sampler_lines = []
    for address, node in walk_with_addresses(result.plan):
        metric = by_address.get(address)
        est = _estimated_rows(deriver, node)
        actual = f"{metric.rows_in:,} -> {metric.rows_out:,}" if metric is not None else "-"
        seconds = f"{metric.seconds * 1e3:.2f}ms" if metric is not None else "-"
        label = "  " * len(address) + repr(node)
        rows.append((format_address(address), label, _fmt_rows(est), actual, seconds))

        if isinstance(node, SamplerNode):
            detail = [f"{format_address(address)}  {node.spec!r}"]
            decision = _decision_for(result.decisions, node.spec)
            if decision is not None:
                detail.append(
                    f"C1={'yes' if decision.c1 else 'no'} "
                    f"C2={'yes' if decision.c2 else 'no'} "
                    f"support={decision.support:.1f}  <- {decision.reason}"
                )
            telemetry = metric.sampler if metric is not None else None
            if telemetry:
                detail.append(
                    f"target p={telemetry['target_p']:.4f} "
                    f"effective rate={telemetry['effective_rate']:.4f} "
                    f"weight mass={telemetry['weight_mass']:,.1f}"
                )
            sampler_lines.append("  " + "  |  ".join(detail))

    header = ("address", "operator", "est rows", "actual in -> out", "time")
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0)) for i in range(5)
    ]
    lines.append("")
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))

    if sampler_lines:
        lines.append("")
        lines.append("samplers (decision | runtime telemetry):")
        lines.extend(sampler_lines)

    lines.append("")
    answer = execution.answer
    summary = _ci_summary(answer)
    lines.append(f"answer: {answer.num_rows} row(s)")
    if summary:
        lines.extend("  " + entry for entry in summary)
    elif result.approximable:
        lines.append("  (no confidence-interval columns in the answer)")
    return "\n".join(lines)
