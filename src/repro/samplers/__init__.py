"""Quickr's three samplers plus the pass-through decision.

All samplers run in one pass, with bounded memory, and are partitionable —
the minimal requirements that let ASALQA place them at arbitrary locations
in a parallel plan (paper Section 4.1).
"""

from repro.samplers.base import PassThroughSpec, SamplerSpec, attach_weights
from repro.samplers.distinct import DistinctSpec
from repro.samplers.hashing import hash_columns, mix64, universe_fraction
from repro.samplers.streaming import (
    StreamingDistinct,
    StreamingUniform,
    StreamingUniverse,
    run_partitioned,
    run_streaming,
)
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec

__all__ = [
    "PassThroughSpec",
    "SamplerSpec",
    "attach_weights",
    "DistinctSpec",
    "hash_columns",
    "mix64",
    "universe_fraction",
    "StreamingDistinct",
    "StreamingUniform",
    "StreamingUniverse",
    "run_partitioned",
    "run_streaming",
    "UniformSpec",
    "UniverseSpec",
]
