"""The uniform sampler (paper Section 4.1.1).

``UniformSpec(p)`` lets each row pass independently with probability ``p``
(a Bernoulli/Poisson sampler) and assigns weight ``1/p``. The number of rows
passed is binomial; each row is picked at most once. Unlike fixed-size
reservoir alternatives this is streaming and partitionable with zero state,
which is what lets Quickr drop it anywhere in a parallel plan.

When the input carries row lineage (attached per scan by the executor), the
Bernoulli draw for a row is a *counter-based* pseudo-random value — a keyed
hash of the row's lineage tuple — instead of a positional RNG stream. The
decision then depends only on the row's identity, never on how the input
was split, so a partition-parallel run keeps exactly the same rows as a
serial run under the same seed. Without lineage (direct ``apply`` on a bare
table) the classic positional RNG stream is used.
"""

from __future__ import annotations

import numpy as np

from repro.engine.table import Table
from repro.samplers.base import SamplerSpec, attach_weights
from repro.samplers.hashing import hash_columns

__all__ = ["UniformSpec"]

#: Seed salt separating the uniform sampler's hash stream from the universe
#: sampler's (both use the same keyed mixer; the salt keeps a uniform and a
#: universe sampler with equal seeds statistically independent).
_UNIFORM_SALT = 0x51AC_0B5E


class UniformSpec(SamplerSpec):
    """Bernoulli row sampler with probability ``p``."""

    cost_per_row = 0.05
    kind = "uniform"

    def __init__(self, p: float, seed: int = 0):
        self.p = self.validate_probability(p)
        self.seed = int(seed)

    def apply(self, table: Table) -> Table:
        lineage = table.lineage_columns()
        if lineage:
            points = hash_columns(lineage, self.seed ^ _UNIFORM_SALT).astype(np.float64)
            mask = points < self.p * float(2**64)
        else:
            rng = np.random.default_rng(self.seed)
            mask = rng.random(table.num_rows) < self.p
        weights = np.full(table.num_rows, 1.0 / self.p)
        return attach_weights(table, mask, weights)

    def expected_fraction(self) -> float:
        return self.p

    def key(self) -> tuple:
        return ("uniform", round(self.p, 12), self.seed)

    def __repr__(self):
        return f"Uniform(p={self.p:g})"
