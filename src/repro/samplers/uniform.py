"""The uniform sampler (paper Section 4.1.1).

``UniformSpec(p)`` lets each row pass independently with probability ``p``
(a Bernoulli/Poisson sampler) and assigns weight ``1/p``. The number of rows
passed is binomial; each row is picked at most once. Unlike fixed-size
reservoir alternatives this is streaming and partitionable with zero state,
which is what lets Quickr drop it anywhere in a parallel plan.
"""

from __future__ import annotations

import numpy as np

from repro.engine.table import Table
from repro.samplers.base import SamplerSpec, attach_weights

__all__ = ["UniformSpec"]


class UniformSpec(SamplerSpec):
    """Bernoulli row sampler with probability ``p``."""

    cost_per_row = 0.05
    kind = "uniform"

    def __init__(self, p: float, seed: int = 0):
        self.p = self.validate_probability(p)
        self.seed = int(seed)

    def apply(self, table: Table) -> Table:
        rng = np.random.default_rng(self.seed)
        mask = rng.random(table.num_rows) < self.p
        weights = np.full(table.num_rows, 1.0 / self.p)
        return attach_weights(table, mask, weights)

    def expected_fraction(self) -> float:
        return self.p

    def key(self) -> tuple:
        return ("uniform", round(self.p, 12), self.seed)

    def __repr__(self):
        return f"Uniform(p={self.p:g})"
