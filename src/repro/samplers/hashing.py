"""Deterministic 64-bit hashing for the universe sampler.

The universe sampler projects join-key values into a high-dimensional space
with a strong hash and keeps the rows whose image lands in a chosen
``p``-fraction subspace (paper Section 4.1.3). The production system uses a
cryptographically strong hash; here we use the splitmix64 finalizer — a
full-avalanche 64-bit mixer — keyed by a seed so that *related samplers pick
the same subspace* (same columns + same seed => same subspace) while
unrelated samplers are independent.

Everything is vectorized over NumPy arrays. String columns are supported by
first interning each distinct string through a stable FNV-1a hash (the
number of distinct strings is small compared to row count in all our
workloads).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["mix64", "hash_columns", "universe_fraction"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def mix64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array, keyed by ``seed``."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64, copy=True)
        z += _GOLDEN * np.uint64(seed + 1)
        z ^= z >> np.uint64(30)
        z *= _MIX1
        z ^= z >> np.uint64(27)
        z *= _MIX2
        z ^= z >> np.uint64(31)
    return z


def _fnv1a(text: str) -> int:
    """Stable 64-bit FNV-1a hash of a string (independent of PYTHONHASHSEED)."""
    h = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def _to_uint64(column: np.ndarray) -> np.ndarray:
    """Losslessly map a column to uint64 codes suitable for mixing."""
    if column.dtype.kind in ("i", "u", "b"):
        return column.astype(np.uint64)
    if column.dtype.kind == "f":
        return column.view(np.uint64) if column.dtype == np.float64 else column.astype(np.float64).view(np.uint64)
    # Strings / objects: intern distinct values through FNV-1a.
    uniques, inverse = np.unique(column, return_inverse=True)
    codes = np.fromiter((_fnv1a(str(u)) for u in uniques), dtype=np.uint64, count=len(uniques))
    return codes[inverse]


def hash_columns(columns: Sequence[np.ndarray], seed: int = 0) -> np.ndarray:
    """Combine one or more key columns into a single keyed 64-bit hash.

    The combination is order-sensitive (column i is salted with i) and each
    stage re-mixes, so collisions between different tuples are as unlikely
    as for a single 64-bit hash.
    """
    if not columns:
        raise ValueError("hash_columns requires at least one column")
    acc = mix64(_to_uint64(np.asarray(columns[0])), seed)
    for index, column in enumerate(columns[1:], start=1):
        with np.errstate(over="ignore"):
            acc = mix64(acc + mix64(_to_uint64(np.asarray(column)), seed + index), seed)
    return acc


def universe_fraction(columns: Sequence[np.ndarray], seed: int = 0) -> np.ndarray:
    """Map each row's key tuple to a point in [0, 1).

    The universe sampler with probability ``p`` keeps rows whose point is
    below ``p``; both join inputs using the same columns and seed keep
    exactly the same key subspace.
    """
    return hash_columns(columns, seed).astype(np.float64) / float(2**64)
