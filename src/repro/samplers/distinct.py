"""The distinct (stratified) sampler (paper Section 4.1.2).

``DistinctSpec(columns, delta, p)`` guarantees that at least
``min(delta, frequency)`` rows pass for every distinct combination of values
of ``columns``, then passes further rows with probability ``p``. It is the
sampler Quickr uses when groups could otherwise be missed or when aggregate
values are heavily skewed.

Strata may be declared on plain columns or on *functions of columns*
(e.g. ``ceil(Y / 100)`` to protect skewed SUM inputs) — pass
:class:`~repro.algebra.expressions.Expr` objects alongside column names.

The vectorized implementation reproduces the debiased semantics of the
streaming algorithm: rows past the first ``delta`` of a stratum fall into a
"reservoir region" (the next ``reservoir_size / p`` rows) from which an
exact uniform subset is kept with the correct Horvitz-Thompson weight, and
any remaining rows are Bernoulli-sampled at ``p``. This matches the paper's
reservoir construction, with one correction: when a stratum's candidate
count ``c`` is below the reservoir capacity we weight by ``c / c = 1`` (the
paper's ``(freq - delta)/S`` formula implicitly assumes ``c >= S``).

Memory bounding via the heavy-hitter sketch, and the delta adjustment for
degree-of-parallelism, live in the streaming implementation
(:mod:`repro.samplers.streaming`), which is the faithful cluster-mode
rendition.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

from repro.algebra.expressions import Expr
from repro.engine.table import Table
from repro.errors import SamplerError
from repro.samplers.base import SamplerSpec, attach_weights

__all__ = ["DistinctSpec", "stratum_codes"]

#: Default reservoir capacity per stratum (paper example uses S = delta).
DEFAULT_RESERVOIR = 10


def stratum_codes(table: Table, columns: Sequence[Union[str, Expr]]) -> np.ndarray:
    """Dense integer codes identifying each row's stratum."""
    arrays = []
    for spec in columns:
        if isinstance(spec, Expr):
            arrays.append(np.asarray(spec.evaluate(table)))
        else:
            arrays.append(table.column(spec))
    stacked = np.rec.fromarrays(arrays)
    _, codes = np.unique(stacked, return_inverse=True)
    return codes


class DistinctSpec(SamplerSpec):
    """Stratified sampler: >= min(delta, freq) rows per distinct value."""

    cost_per_row = 0.4
    kind = "distinct"

    def __init__(
        self,
        columns: Sequence[Union[str, Expr]],
        delta: int,
        p: float,
        seed: int = 0,
        reservoir_size: int = DEFAULT_RESERVOIR,
    ):
        if not columns:
            raise SamplerError("distinct sampler requires at least one stratification column")
        if delta <= 0:
            raise SamplerError(f"delta must be positive, got {delta}")
        if reservoir_size <= 0:
            raise SamplerError(f"reservoir size must be positive, got {reservoir_size}")
        self.columns = tuple(columns)
        self.delta = int(delta)
        self.p = self.validate_probability(p)
        self.seed = int(seed)
        self.reservoir_size = int(reservoir_size)

    # -- helpers -----------------------------------------------------------------
    def column_names(self) -> tuple:
        """Plain column names referenced (expanding function strata)."""
        names = []
        for spec in self.columns:
            if isinstance(spec, Expr):
                names.extend(sorted(spec.columns()))
            else:
                names.append(spec)
        return tuple(names)

    def apply(self, table: Table) -> Table:
        n = table.num_rows
        if n == 0:
            return attach_weights(table, np.zeros(0, dtype=bool), np.ones(0))
        rng = np.random.default_rng(self.seed)
        codes = stratum_codes(table, self.columns)

        # Rank of each row within its stratum, in stream (row) order.
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.empty(n, dtype=bool)
        boundaries[0] = True
        boundaries[1:] = sorted_codes[1:] != sorted_codes[:-1]
        group_start = np.maximum.accumulate(np.where(boundaries, np.arange(n), 0))
        rank_sorted = np.arange(n) - group_start
        rank = np.empty(n, dtype=np.int64)
        rank[order] = rank_sorted
        freq = np.bincount(codes, minlength=codes.max() + 1)[codes]

        mask = np.zeros(n, dtype=bool)
        weights = np.ones(n, dtype=np.float64)

        # Frequency-check region: the first delta rows of each stratum.
        frequency_pass = rank < self.delta
        mask |= frequency_pass

        # Probabilistic region.
        candidate = ~frequency_pass
        cand_count = freq - self.delta  # per-row stratum candidate count
        reservoir_region = self.reservoir_size / self.p

        # Strata whose candidates all fit the reservoir regime: keep an exact
        # uniform subset of size min(S, c) with weight c / min(S, c).
        small = candidate & (cand_count <= reservoir_region)
        if small.any():
            u = rng.random(n)
            small_idx = np.flatnonzero(small)
            sub_order = np.lexsort((u[small_idx], codes[small_idx]))
            sub_sorted = small_idx[sub_order]
            sub_codes = codes[sub_sorted]
            sub_bound = np.empty(len(sub_sorted), dtype=bool)
            sub_bound[0] = True
            sub_bound[1:] = sub_codes[1:] != sub_codes[:-1]
            sub_start = np.maximum.accumulate(np.where(sub_bound, np.arange(len(sub_sorted)), 0))
            sub_rank = np.arange(len(sub_sorted)) - sub_start
            keep_m = np.minimum(self.reservoir_size, cand_count[sub_sorted])
            chosen = sub_sorted[sub_rank < keep_m]
            mask[chosen] = True
            weights[chosen] = cand_count[chosen] / np.minimum(self.reservoir_size, cand_count[chosen])

        # Strata past the reservoir regime: marginal inclusion p, weight 1/p.
        large = candidate & (cand_count > reservoir_region)
        if large.any():
            bern = rng.random(n) < self.p
            chosen = large & bern
            mask[chosen] = True
            weights[chosen] = 1.0 / self.p

        return attach_weights(table, mask, weights)

    def for_partition(self, partition_index: int, num_partitions: int, aligned: bool) -> "DistinctSpec":
        """Partition-local spec for a parallel run (paper Section 4.1.2).

        The distinct sampler is stateful per stratum, so each worker gets an
        independent RNG stream (derived from the query seed and partition
        index) and, depending on the partitioning, an adjusted delta:

        * ``aligned`` (input hash-partitioned on the stratification
          columns): every stratum lives wholly in one partition, so the
          per-instance delta is the query delta and the ``>= min(delta,
          freq)`` guarantee holds exactly after the union.
        * unaligned (round-robin): strata are spread across the ``D``
          instances, so each runs with ``delta' = ceil(delta/D) + eps``,
          ``eps = ceil(delta/D)`` — the paper's degree-of-parallelism
          correction for the common case of near-even spread.
        """
        if num_partitions <= 1:
            return self
        if aligned:
            delta = self.delta
        else:
            per_instance = math.ceil(self.delta / num_partitions)
            delta = per_instance + math.ceil(self.delta / num_partitions)
        seed = (self.seed * 1_000_003 + partition_index + 1) & 0x7FFF_FFFF
        return DistinctSpec(
            self.columns, delta, self.p, seed=seed, reservoir_size=self.reservoir_size
        )

    def plain_column_names(self):
        """Stratification columns when all are plain names, else None.

        Hash-partitioning the input on the stratification columns is only
        stratum-aligned when strata are plain columns — an expression
        stratum groups many column values into one stratum, which a hash of
        the raw columns would split."""
        if any(isinstance(c, Expr) for c in self.columns):
            return None
        return tuple(self.columns)

    def expected_fraction(self) -> float:
        """Optimistic expected pass fraction; the cost model refines this
        with distinct-value statistics (leakage of delta rows per stratum)."""
        return self.p

    def key(self) -> tuple:
        cols = tuple(c.key() if isinstance(c, Expr) else c for c in self.columns)
        return ("distinct", cols, self.delta, round(self.p, 12), self.seed, self.reservoir_size)

    def __repr__(self):
        cols = [repr(c) if isinstance(c, Expr) else c for c in self.columns]
        return f"Distinct(cols={cols}, delta={self.delta}, p={self.p:g})"
