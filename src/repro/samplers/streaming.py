"""Row-at-a-time sampler implementations — the cluster operating mode.

These are the reference semantics for the paper's requirement that samplers
"execute in one pass over data with a memory footprint well below the size
of the input" and behave correctly when "many instances run in parallel on
different partitions of the input" (Section 4.1).

* :class:`StreamingUniform` — stateless Bernoulli.
* :class:`StreamingUniverse` — stateless hash-subspace test.
* :class:`StreamingDistinct` — the full Section 4.1.2 construction:
  frequency check, per-stratum reservoir debiasing, and (optionally) memory
  bounded by the Manku-Motwani heavy-hitter sketch.

:func:`run_partitioned` executes ``D`` independent instances over a
round-robin partitioning, applying the paper's delta adjustment
``delta' = ceil(delta / D) + eps`` with ``eps = delta / D`` so that the
union of instance outputs still meets the stratification guarantee.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.table import WEIGHT_COLUMN, Table
from repro.errors import SamplerError
from repro.samplers.hashing import hash_columns
from repro.sketches.heavy_hitters import LossyCounter
from repro.sketches.reservoir import Reservoir

__all__ = [
    "StreamingUniform",
    "StreamingUniverse",
    "StreamingDistinct",
    "run_streaming",
    "run_partitioned",
]

Row = Tuple
Emitted = Tuple[Row, float]


class StreamingSampler:
    """Interface: feed rows via :meth:`process`, then drain :meth:`finish`."""

    def process(self, row: Row) -> Iterator[Emitted]:
        raise NotImplementedError

    def finish(self) -> Iterator[Emitted]:
        return iter(())


class StreamingUniform(StreamingSampler):
    """Bernoulli sampler; zero state beyond the RNG."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None):
        if not 0 < p <= 1:
            raise SamplerError(f"probability must be in (0,1], got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def process(self, row: Row) -> Iterator[Emitted]:
        if self._rng.random() < self.p:
            yield row, 1.0 / self.p


class StreamingUniverse(StreamingSampler):
    """Hash-subspace sampler; decision depends only on the row's key values,
    so parallel instances make identical decisions — the property that makes
    it partitionable *and* join-compatible."""

    def __init__(self, key_indices: Sequence[int], p: float, seed: int = 0):
        if not key_indices:
            raise SamplerError("universe sampler requires key indices")
        if not 0 < p <= 1:
            raise SamplerError(f"probability must be in (0,1], got {p}")
        self.key_indices = tuple(key_indices)
        self.p = p
        self.seed = seed

    def _point(self, row: Row) -> float:
        columns = [np.asarray([row[i]]) for i in self.key_indices]
        return float(hash_columns(columns, self.seed)[0]) / float(2**64)

    def process(self, row: Row) -> Iterator[Emitted]:
        if self._point(row) < self.p:
            yield row, 1.0 / self.p


class _StratumState:
    """Per-stratum state machine: frequency pass -> reservoir -> Bernoulli."""

    __slots__ = ("seen", "reservoir", "flushed")

    def __init__(self):
        self.seen = 0
        self.reservoir: Optional[Reservoir] = None
        self.flushed = False


class StreamingDistinct(StreamingSampler):
    """The Section 4.1.2 distinct sampler.

    Per distinct value of the key columns: the first ``delta`` rows pass
    with weight 1; rows ``delta+1 .. delta + S/p`` flow through a size-``S``
    reservoir that is flushed either when row ``delta + S/p + 1`` arrives
    (weight ``1/p``) or at end-of-stream (weight ``candidates / kept``);
    later rows are Bernoulli-``p`` with weight ``1/p``.

    With ``memory_bounded=True``, exact per-value state is kept only for
    sketch-identified heavy hitters; all other rows pass with weight 1.
    This is the paper's key memory insight: the sampler's gains come from
    thinning values that occur very frequently, so tracking only heavy
    hitters captures most of the gain in logarithmic memory.
    """

    def __init__(
        self,
        key_indices: Sequence[int],
        delta: int,
        p: float,
        reservoir_size: int = 10,
        rng: Optional[np.random.Generator] = None,
        memory_bounded: bool = False,
        tau: float = 1e-4,
        support: float = 1e-2,
    ):
        if not key_indices:
            raise SamplerError("distinct sampler requires key indices")
        if delta <= 0 or reservoir_size <= 0:
            raise SamplerError("delta and reservoir size must be positive")
        if not 0 < p <= 1:
            raise SamplerError(f"probability must be in (0,1], got {p}")
        self.key_indices = tuple(key_indices)
        self.delta = delta
        self.p = p
        self.reservoir_size = reservoir_size
        self._rng = rng if rng is not None else np.random.default_rng()
        self.memory_bounded = memory_bounded
        self._sketch = LossyCounter(tau=tau, support=support) if memory_bounded else None
        self._strata: Dict[Hashable, _StratumState] = {}

    def _key(self, row: Row) -> Hashable:
        return tuple(row[i] for i in self.key_indices)

    @property
    def tracked_strata(self) -> int:
        return len(self._strata)

    def process(self, row: Row) -> Iterator[Emitted]:
        key = self._key(row)
        if self._sketch is not None:
            self._sketch.add(key)
            if key not in self._strata and not self._sketch.is_heavy(key):
                # Light value: pass deterministically (weight 1). Inclusion
                # probability is exactly 1, so the estimate stays unbiased.
                yield row, 1.0
                return
        state = self._strata.setdefault(key, _StratumState())
        state.seen += 1
        if state.seen <= self.delta:
            yield row, 1.0
            return
        region = self.delta + self.reservoir_size / self.p
        if state.flushed:
            if self._rng.random() < self.p:
                yield row, 1.0 / self.p
            return
        if state.reservoir is None:
            state.reservoir = Reservoir(self.reservoir_size, self._rng)
        state.reservoir.offer(row)
        if state.seen > region:
            # Reservoir saw exactly S/p candidates: flush at weight 1/p.
            for held in state.reservoir.drain():
                yield held, 1.0 / self.p
            state.flushed = True

    def finish(self) -> Iterator[Emitted]:
        for state in self._strata.values():
            if state.reservoir is None or state.flushed or len(state.reservoir) == 0:
                continue
            candidates = state.seen - self.delta
            kept = len(state.reservoir)
            weight = candidates / kept
            for held in state.reservoir.drain():
                yield held, weight


def run_streaming(sampler: StreamingSampler, table: Table) -> Table:
    """Drive a streaming sampler over a table, producing a weighted table."""
    names = table.column_names
    if WEIGHT_COLUMN in names:
        raise SamplerError("streaming samplers do not accept pre-weighted input")
    rows: List[Row] = []
    weights: List[float] = []
    for row in table.iter_rows():
        for emitted, weight in sampler.process(row):
            rows.append(emitted)
            weights.append(weight)
    for emitted, weight in sampler.finish():
        rows.append(emitted)
        weights.append(weight)
    out = Table.from_rows(table.name, names, rows)
    if out.num_rows == 0:
        # Preserve the schema's dtypes for empty outputs.
        out = Table(table.name, {c: table.column(c)[:0] for c in names})
    return out.with_columns({WEIGHT_COLUMN: np.asarray(weights, dtype=np.float64)})


def run_partitioned(
    make_sampler,
    table: Table,
    num_instances: int,
    delta: Optional[int] = None,
) -> Table:
    """Run ``num_instances`` independent sampler instances over a round-robin
    partitioning and union their outputs.

    ``make_sampler(instance_delta)`` constructs one instance; for distinct
    samplers pass the query-level ``delta`` so the per-instance value can be
    adjusted to ``ceil(delta / D) + eps`` with ``eps = delta / D``
    (Section 4.1.2's partitionability correction — the paper picks
    ``eps = delta / D`` because rows are usually spread evenly across
    instances, case (2)).
    """
    if num_instances <= 0:
        raise SamplerError("need at least one sampler instance")
    instance_delta = None
    if delta is not None:
        epsilon = delta / num_instances
        instance_delta = int(math.ceil(delta / num_instances) + math.ceil(epsilon))
    outputs = []
    for part in table.partition(num_instances):
        sampler = make_sampler(instance_delta) if instance_delta is not None else make_sampler(None)
        outputs.append(run_streaming(sampler, part))
    return Table.concat(outputs, name=table.name)
