"""The universe sampler (paper Section 4.1.3) — Quickr's new operator.

``UniverseSpec(columns, p, seed)`` projects the value of ``columns`` into a
64-bit hash space and keeps every row whose image falls in the first
``p``-fraction of that space. Two samplers with the same columns and seed
keep *exactly the same key subspace*, so joining a ``p``-probability
universe sample of both join inputs is statistically equivalent to taking a
``p``-probability universe sample of the join output — the property that
makes fact-fact joins approximable at all.

The sampler is stateless across rows (whether a row passes depends only on
its key values), hence trivially streaming and partitionable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.table import Table
from repro.errors import SamplerError
from repro.samplers.base import SamplerSpec, attach_weights
from repro.samplers.hashing import universe_fraction

__all__ = ["UniverseSpec"]


class UniverseSpec(SamplerSpec):
    """Hash-subspace sampler over a column set.

    ``emit_weight`` is the family bookkeeping for paired samplers: when the
    two (or more) inputs of a join chain carry the *same* subspace, a joined
    row's true inclusion probability is ``p`` — not ``p^k`` — so exactly one
    family member emits weight ``1/p`` and the others emit weight 1; the
    join's weight product is then correct.
    """

    cost_per_row = 0.15
    kind = "universe"

    def __init__(self, columns: Sequence[str], p: float, seed: int = 0, emit_weight: bool = True):
        if not columns:
            raise SamplerError("universe sampler requires at least one column")
        self.columns = tuple(columns)
        self.p = self.validate_probability(p)
        self.seed = int(seed)
        self.emit_weight = bool(emit_weight)

    def apply(self, table: Table) -> Table:
        points = universe_fraction([table.column(c) for c in self.columns], self.seed)
        mask = points < self.p
        fill = 1.0 / self.p if self.emit_weight else 1.0
        weights = np.full(table.num_rows, fill)
        return attach_weights(table, mask, weights)

    def expected_fraction(self) -> float:
        return self.p

    def same_subspace_as(self, other: "UniverseSpec") -> bool:
        """True iff the two samplers keep identical key subspaces.

        This is the global requirement ASALQA enforces on the bottom-up
        pass: both inputs of a join must carry identical universe samplers
        (same column positions, probability and seed) for the join to be a
        perfect join on the restricted subspace.
        """
        return (
            len(self.columns) == len(other.columns)
            and self.p == other.p
            and self.seed == other.seed
        )

    def key(self) -> tuple:
        return ("universe", self.columns, round(self.p, 12), self.seed, self.emit_weight)

    def __repr__(self):
        return f"Universe(cols={list(self.columns)}, p={self.p:g})"
