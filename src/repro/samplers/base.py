"""Physical sampler specifications.

A :class:`SamplerSpec` is the physical state of a sampler operator in an
executable plan: which rows to pass and with what Horvitz-Thompson weight.
Every sampler obeys the paper's operating requirements (Section 4.1):

* one pass over data;
* memory footprint well below input/output size;
* partitionable — running instances on disjoint partitions of the input and
  unioning their outputs mimics a single instance over the whole input.

``apply`` is the vectorized implementation used by the executor. The
equivalent row-at-a-time implementations (the mode a real cluster would run)
live in :mod:`repro.samplers.streaming` and are property-tested against
these.
"""

from __future__ import annotations


import numpy as np

from repro.engine.table import WEIGHT_COLUMN, Table
from repro.errors import SamplerError

__all__ = ["SamplerSpec", "PassThroughSpec", "attach_weights"]


class SamplerSpec:
    """Abstract physical sampler."""

    #: Relative CPU cost per input row (Appendix A: uniform is cheapest,
    #: universe pays for a strong hash, distinct pays for sketch+reservoir).
    cost_per_row: float = 1.0

    #: Short name used in plan summaries and Table 7 style frequency counts.
    kind: str = "abstract"

    def apply(self, table: Table) -> Table:
        """Return the sampled table with an updated weight column."""
        raise NotImplementedError

    def expected_fraction(self) -> float:
        """Expected fraction of input rows passed (used by the cost model)."""
        raise NotImplementedError

    def key(self) -> tuple:
        raise NotImplementedError

    def validate_probability(self, p: float) -> float:
        if not 0.0 < p <= 1.0:
            raise SamplerError(f"sampling probability must be in (0, 1], got {p}")
        return float(p)

    def for_partition(self, partition_index: int, num_partitions: int, aligned: bool) -> "SamplerSpec":
        """The spec a parallel worker should run on one input partition.

        Uniform and universe samplers are stateless across rows — their
        per-row decisions do not depend on the rest of the stream — so the
        unmodified spec is correct on any partition (paper Section 4.1's
        partitionability requirement). Stateful samplers (distinct)
        override this. ``aligned`` is True when the partitioner hashed on
        the sampler's own column set, guaranteeing that the rows any
        per-value state cares about share a partition.
        """
        return self


class PassThroughSpec(SamplerSpec):
    """The do-not-sample decision (Section 4.2.6's default option).

    ASALQA replaces a seeded sampler with a pass-through when no sampler can
    meet the accuracy requirement; the plan then behaves exactly like the
    baseline plan.
    """

    cost_per_row = 0.0
    kind = "passthrough"

    def apply(self, table: Table) -> Table:
        return table

    def expected_fraction(self) -> float:
        return 1.0

    def key(self) -> tuple:
        return ("passthrough",)

    def __repr__(self):
        return "PassThrough()"


def attach_weights(table: Table, mask: np.ndarray, weights: np.ndarray) -> Table:
    """Filter ``table`` by ``mask`` and multiply in new HT ``weights``.

    ``weights`` is aligned with the *input* rows; only the surviving entries
    are kept. Existing weights (from an upstream sampler — not produced by
    ASALQA, which forbids nesting, but supported for generality) multiply.
    """
    selected = table.take(mask)
    new_weights = np.asarray(weights, dtype=np.float64)[mask]
    combined = selected.weights() * new_weights if table.has_weights() else new_weights
    return selected.with_columns({WEIGHT_COLUMN: combined})
