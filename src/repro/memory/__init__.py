"""Shared-memory column arenas and zero-copy table transport.

See :mod:`repro.memory.arena` for the lifecycle contract and
:mod:`repro.memory.layout` for the on-segment byte format.
"""

from repro.memory.arena import (
    SEGMENT_PREFIX,
    SegmentError,
    SegmentManager,
    TableRef,
    create_table_segment,
    leaked_system_segments,
    live_segments,
    manager,
    map_ref,
    memory_stats,
    new_segment_name,
    reap,
    release,
)
from repro.memory.layout import ALIGNMENT, ColumnLayout, check_extent, plan_layout

__all__ = [
    "ALIGNMENT",
    "SEGMENT_PREFIX",
    "ColumnLayout",
    "SegmentError",
    "SegmentManager",
    "TableRef",
    "check_extent",
    "create_table_segment",
    "leaked_system_segments",
    "live_segments",
    "manager",
    "map_ref",
    "memory_stats",
    "new_segment_name",
    "plan_layout",
    "reap",
    "release",
]
