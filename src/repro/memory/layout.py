"""Column layout arithmetic for shared-memory table segments.

A table is flattened into one contiguous byte arena: each column occupies a
64-byte-aligned extent described by a :class:`ColumnLayout`, and the whole
segment is described by a :class:`TableRef` (see :mod:`repro.memory.arena`).
Two storage kinds exist:

* ``raw`` — any non-object NumPy dtype (ints, floats, bools, fixed-width
  unicode/bytes). The column's bytes are copied verbatim; the dtype string
  reconstructs the array exactly, so round trips are bit-identical.
* ``strblob`` — object-dtype columns holding Python strings/bytes. The
  values are encoded as one UTF-8 blob plus an ``int64`` offsets array
  (``num_rows + 1`` entries; row *i* spans ``blob[offsets[i]:offsets[i+1]]``),
  the classic Arrow-style varlen encoding.

All extent arithmetic is done in Python ints and materialized as ``int64``:
offsets must stay exact past 2 GiB (a ``uint32``/C-``int`` intermediate
would silently wrap), which is what :func:`check_extent` guards and the
unit tests force with synthetic multi-GiB layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.errors import SchemaError

__all__ = ["ALIGNMENT", "ColumnLayout", "plan_layout", "check_extent", "encode_strings", "decode_strings"]

#: Extent alignment (bytes): one cache line, so a column view never shares
#: a line with its neighbour and SIMD loads start aligned.
ALIGNMENT = 64

#: Marker dtype recorded for varlen string columns.
_OBJECT_KIND = "strblob"


@dataclass(frozen=True)
class ColumnLayout:
    """One column's extent inside a table segment.

    ``kind == "raw"``: the extent at ``offset`` holds ``length * itemsize``
    bytes of dtype ``dtype``. ``kind == "strblob"``: the extent holds an
    ``int64`` offsets array of ``length + 1`` entries at ``offset`` followed
    (at ``blob_offset``) by ``blob_nbytes`` of UTF-8 payload.
    """

    name: str
    kind: str  # "raw" | "strblob"
    dtype: str  # numpy dtype string ("<i8", "<U12", ...); "object" for strblob
    length: int
    offset: int
    nbytes: int
    #: strblob only: where the UTF-8 payload starts and how long it is.
    blob_offset: int = 0
    blob_nbytes: int = 0

    def end(self) -> int:
        """First byte past this column's extent(s)."""
        if self.kind == _OBJECT_KIND:
            return self.blob_offset + self.blob_nbytes
        return self.offset + self.nbytes


def _align(offset: int) -> int:
    """Round ``offset`` up to the next :data:`ALIGNMENT` boundary."""
    return (int(offset) + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def check_extent(offset: int, nbytes: int) -> Tuple[int, int]:
    """Validate one extent's arithmetic in explicit 64-bit space.

    Returns ``(offset, end)`` as Python ints after proving both survive an
    ``int64`` round trip — the guard that keeps >2 GiB offsets exact on
    platforms where a C ``long`` is 32 bits.
    """
    offset = int(offset)
    nbytes = int(nbytes)
    if offset < 0 or nbytes < 0:
        raise SchemaError(f"negative extent: offset={offset} nbytes={nbytes}")
    end = offset + nbytes
    try:
        exact = int(np.int64(offset)) == offset and int(np.int64(end)) == end
    except OverflowError:  # numpy refuses values outside int64 outright
        exact = False
    if not exact:
        raise SchemaError(f"extent [{offset}, {end}) overflows int64")
    return offset, end


def encode_strings(values: np.ndarray) -> Tuple[np.ndarray, bytes]:
    """Encode an object array of strings/bytes as (int64 offsets, blob)."""
    chunks: List[bytes] = []
    offsets = np.zeros(len(values) + 1, dtype=np.int64)
    total = 0
    for i, value in enumerate(values):
        if isinstance(value, bytes):
            raise SchemaError("object columns must hold str values, got bytes")
        if not isinstance(value, str):
            raise SchemaError(
                f"object column has non-string value of type {type(value).__name__}; "
                "only string object columns are transportable"
            )
        encoded = value.encode("utf-8")
        chunks.append(encoded)
        total += len(encoded)
        offsets[i + 1] = total
    return offsets, b"".join(chunks)


def decode_strings(offsets: np.ndarray, blob: memoryview) -> np.ndarray:
    """Inverse of :func:`encode_strings`; returns an object array."""
    out = np.empty(len(offsets) - 1, dtype=object)
    raw = bytes(blob)
    for i in range(len(out)):
        out[i] = raw[offsets[i]:offsets[i + 1]].decode("utf-8")
    return out


def plan_layout(
    columns: Mapping[str, np.ndarray],
) -> Tuple[Tuple[ColumnLayout, ...], int, Dict[str, Tuple[np.ndarray, bytes]]]:
    """Plan the segment layout for a table's columns.

    Returns ``(layouts, total_bytes, encoded_strings)`` where
    ``encoded_strings`` maps strblob column names to their pre-encoded
    ``(offsets, blob)`` pair so the writer does not encode twice.
    """
    layouts: List[ColumnLayout] = []
    encoded: Dict[str, Tuple[np.ndarray, bytes]] = {}
    cursor = 0
    for name, arr in columns.items():
        arr = np.ascontiguousarray(arr)
        if arr.ndim != 1:
            raise SchemaError(f"column {name!r} must be 1-D to transport")
        if arr.dtype == object:
            offsets, blob = encode_strings(arr)
            encoded[name] = (offsets, blob)
            offset, end = check_extent(_align(cursor), offsets.nbytes)
            blob_offset, blob_end = check_extent(_align(end), len(blob))
            layouts.append(
                ColumnLayout(
                    name=name,
                    kind=_OBJECT_KIND,
                    dtype="object",
                    length=len(arr),
                    offset=offset,
                    nbytes=offsets.nbytes,
                    blob_offset=blob_offset,
                    blob_nbytes=len(blob),
                )
            )
            cursor = blob_end
        else:
            offset, end = check_extent(_align(cursor), arr.nbytes)
            layouts.append(
                ColumnLayout(
                    name=name,
                    kind="raw",
                    dtype=arr.dtype.str,
                    length=len(arr),
                    offset=offset,
                    nbytes=arr.nbytes,
                )
            )
            cursor = end
    # A zero-byte shared_memory segment cannot be created; keep a minimum.
    return tuple(layouts), max(int(cursor), 1), encoded
