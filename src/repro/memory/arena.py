"""Shared-memory column arenas: named segments that move tables by name.

The unit of transport is a :class:`TableRef` — a tiny picklable descriptor
(segment name, per-column dtype/shape/offset) standing in for a whole
columnar table whose bytes live in a ``multiprocessing.shared_memory``
segment. Pickling a ref costs O(schema); attaching it back costs one mmap,
after which every numeric column is a zero-copy NumPy view into the
segment. Object-dtype string columns are stored as an int64 offsets array
plus a UTF-8 blob (see :mod:`repro.memory.layout`) and are materialized on
read — varlen data has no zero-copy object representation.

Lifecycle is explicit and process-local, tracked by the module's
:class:`SegmentManager` singleton:

* ``create_table_segment`` writes a table and **owns** the name;
* ``map_ref`` attaches (cached per name) and returns views whose ``base``
  chain (array → memoryview → mmap) keeps the mapping object alive;
* ``release`` unlinks the name and *detaches*: it drops the segment's own
  references to the mapping instead of calling ``close()``. NumPy views
  hold only an object reference to the exporting memoryview — not a live
  buffer export — so ``close()`` would munmap under them without so much
  as a ``BufferError``; detaching lets the mapping die exactly when the
  last view does (immediately, when there is none);
* ``reap`` force-unlinks by name without a prior attach — the crash path
  (a worker died between creating its result segment and handing the ref
  back, so only the *name convention* survives).

Every create/attach immediately unregisters the name from Python's
``resource_tracker``: with fork workers all processes share one tracker,
and its per-process bookkeeping double-counts a segment that is created in
a worker, attached in the parent and unlinked once — the manager is the
single authority for cleanup, and the tests' leak fixture verifies it.
"""

from __future__ import annotations

import os
import pickle
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ReproError, SchemaError
from repro.memory.layout import ColumnLayout, decode_strings, plan_layout

__all__ = [
    "SEGMENT_PREFIX",
    "TableRef",
    "SegmentManager",
    "manager",
    "new_segment_name",
    "create_table_segment",
    "map_ref",
    "release",
    "reap",
    "live_segments",
    "memory_stats",
    "leaked_system_segments",
]

#: Every segment this repo creates carries this name prefix, which is what
#: lets the leak checker distinguish ours from the rest of /dev/shm.
SEGMENT_PREFIX = "qkr"


class SegmentError(ReproError):
    """A shared-memory segment operation failed."""


@dataclass(frozen=True)
class TableRef:
    """Picklable descriptor of a table living in a shared-memory segment.

    Everything a receiver needs to rebuild the table — and nothing else:
    pickled size is O(schema), independent of row count.
    """

    segment: str
    table_name: str
    num_rows: int
    columns: Tuple[ColumnLayout, ...]
    #: Total segment size in bytes (the data that did NOT cross the pipe).
    nbytes: int

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def schema_bytes(self) -> int:
        """Bytes this descriptor occupies on a pickle pipe."""
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove ``shm`` from the resource tracker; the manager owns cleanup."""
    try:  # pragma: no branch
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # non-POSIX platforms have no tracker entry
        pass


def _unlink(shm: shared_memory.SharedMemory) -> None:
    """Unlink the segment file without touching the resource tracker.

    Every open already untracked the name (fork workers share one tracker
    process, so per-process register/unregister double-counts); the stdlib
    ``SharedMemory.unlink`` would unregister a second time and make the
    tracker log spurious KeyErrors. Raises ``FileNotFoundError`` like the
    stdlib version.
    """
    try:
        from _posixshmem import shm_unlink
    except ImportError:  # pragma: no cover - non-POSIX platform
        shm.unlink()
        return
    shm_unlink(shm._name)  # noqa: SLF001


class SegmentManager:
    """Process-local registry of open shared-memory segments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._owned: set = set()

    # -- creation / attach ----------------------------------------------------
    def create(self, name: str, size: int) -> shared_memory.SharedMemory:
        if size < 1:
            raise SegmentError(f"segment {name!r} must be at least 1 byte, got {size}")
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=int(size))
        except FileExistsError:
            raise SegmentError(f"segment {name!r} already exists") from None
        _untrack(shm)
        with self._lock:
            self._segments[name] = shm
            self._owned.add(name)
        return shm

    def attach(self, name: str) -> shared_memory.SharedMemory:
        with self._lock:
            cached = self._segments.get(name)
        if cached is not None:
            return cached
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            raise SegmentError(f"segment {name!r} does not exist (already reaped?)") from None
        _untrack(shm)
        with self._lock:
            # Another thread may have attached concurrently; first one wins.
            winner = self._segments.setdefault(name, shm)
        if winner is not shm:
            shm.close()
        return winner

    # -- teardown -------------------------------------------------------------
    @staticmethod
    def _detach(shm: shared_memory.SharedMemory) -> None:
        """Hand the mapping over to any outstanding views.

        ``close()`` munmaps immediately — NumPy views keep an object
        reference to the exporting memoryview but no live buffer export,
        so ``close()`` would not raise ``BufferError`` and would leave the
        views dangling (a segfault on next read). Dropping the segment's
        own references instead lets the array→memoryview→mmap chain keep
        the mapping alive until the last view dies; with no views it dies
        right here.
        """
        try:
            shm._buf = None  # noqa: SLF001 - the view chain owns the mmap now
            shm._mmap = None  # noqa: SLF001
            fd = getattr(shm, "_fd", -1)
            if fd >= 0:
                os.close(fd)
                shm._fd = -1  # noqa: SLF001
        except (AttributeError, OSError):  # pragma: no cover - other layouts
            try:
                shm.close()
            except BufferError:
                pass

    def release(self, name: str, unlink: bool = True) -> None:
        """Detach (see :meth:`_detach`) and optionally unlink one segment.

        The *name* is released unconditionally — after ``release`` the
        segment no longer counts as live and cannot be attached again.
        """
        with self._lock:
            shm = self._segments.pop(name, None)
            self._owned.discard(name)
        if shm is None:
            if unlink:
                reap(name)
            return
        if unlink:
            try:
                _unlink(shm)
            except FileNotFoundError:
                pass
        self._detach(shm)

    def release_all(self, unlink: bool = True) -> int:
        """Release every tracked segment; returns how many were open."""
        with self._lock:
            names = list(self._segments)
        for name in names:
            self.release(name, unlink=unlink)
        return len(names)

    # -- introspection --------------------------------------------------------
    def live(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._segments))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "segments": len(self._segments),
                "bytes_mapped": sum(s.size for s in self._segments.values()),
            }


#: The process-wide manager (forked children inherit a copy whose entries
#: reference the same underlying segments — attach() is idempotent by name).
_MANAGER = SegmentManager()


def manager() -> SegmentManager:
    return _MANAGER


def new_segment_name(tag: str = "") -> str:
    """A fresh collision-resistant segment name carrying our prefix."""
    suffix = secrets.token_hex(4)
    tag = f"{tag}_" if tag else ""
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{tag}{suffix}"


def create_table_segment(
    name: str,
    table_name: str,
    columns: Mapping[str, np.ndarray],
    num_rows: int,
    keep_open: bool = True,
) -> TableRef:
    """Write a table's columns into a fresh segment; returns its ref.

    ``keep_open=False`` detaches immediately after writing (the worker-side
    result path: the writer never reads the data back, so holding the
    mapping would only delay teardown).
    """
    layouts, total, encoded = plan_layout(columns)
    shm = _MANAGER.create(name, total)
    try:
        buf = shm.buf
        for layout in layouts:
            if layout.kind == "strblob":
                offsets, blob = encoded[layout.name]
                view = np.ndarray(
                    (layout.length + 1,), dtype=np.int64, buffer=buf, offset=layout.offset
                )
                view[:] = offsets
                if layout.blob_nbytes:
                    buf[layout.blob_offset : layout.blob_offset + layout.blob_nbytes] = blob
            else:
                arr = np.ascontiguousarray(columns[layout.name])
                view = np.ndarray(
                    (layout.length,), dtype=np.dtype(layout.dtype), buffer=buf, offset=layout.offset
                )
                view[:] = arr
        del view  # drop the last buffer export before a potential close
    except BaseException:
        _MANAGER.release(name, unlink=True)
        raise
    ref = TableRef(
        segment=name,
        table_name=table_name,
        num_rows=int(num_rows),
        columns=layouts,
        nbytes=total,
    )
    if not keep_open:
        _MANAGER.release(name, unlink=False)
    return ref


def map_ref(ref: TableRef) -> Dict[str, np.ndarray]:
    """Attach a ref's segment and return its columns.

    Raw columns come back as zero-copy read-only views; strblob columns are
    decoded into fresh object arrays. Once the segment is released, the
    views' base chain keeps the mapping alive (see module docstring), so
    callers need no explicit unpin — dropping the arrays is the unpin.
    """
    shm = _MANAGER.attach(ref.segment)
    if shm.size < ref.nbytes:
        raise SchemaError(
            f"segment {ref.segment!r} is {shm.size} bytes but the ref "
            f"describes {ref.nbytes}; refusing to read past the mapping"
        )
    out: Dict[str, np.ndarray] = {}
    for layout in ref.columns:
        if layout.kind == "strblob":
            offsets = np.ndarray(
                (layout.length + 1,), dtype=np.int64, buffer=shm.buf, offset=layout.offset
            )
            blob = shm.buf[layout.blob_offset : layout.blob_offset + layout.blob_nbytes]
            out[layout.name] = decode_strings(offsets, blob)
        else:
            view = np.ndarray(
                (layout.length,),
                dtype=np.dtype(layout.dtype),
                buffer=shm.buf,
                offset=layout.offset,
            )
            view.flags.writeable = False
            out[layout.name] = view
    return out


def release(ref_or_name, unlink: bool = True) -> None:
    """Release a segment by :class:`TableRef` or by name."""
    name = ref_or_name.segment if isinstance(ref_or_name, TableRef) else ref_or_name
    _MANAGER.release(name, unlink=unlink)


def reap(name: str) -> bool:
    """Best-effort unlink of a segment by name alone (the crash path).

    Returns True when a segment was actually removed. Never raises for a
    missing name — reaping is idempotent and races with normal release.
    """
    try:
        shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    except OSError:
        return False
    _untrack(shm)
    try:
        _unlink(shm)
    except FileNotFoundError:
        return False
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - fresh attach has no views
            pass
    return True


def live_segments() -> Tuple[str, ...]:
    """Names of segments currently open in this process."""
    return _MANAGER.live()


def memory_stats() -> Dict[str, int]:
    """``{"segments": n, "bytes_mapped": b}`` for this process."""
    return _MANAGER.stats()


def leaked_system_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Segments with our prefix still present system-wide (Linux: /dev/shm).

    The session-scoped leak fixture asserts this is empty after every test
    run — including runs that crashed workers mid-transport. On platforms
    without /dev/shm the check degrades to the process-local view.
    """
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        try:
            return sorted(n for n in os.listdir(shm_dir) if n.startswith(prefix))
        except OSError:  # pragma: no cover - permission-restricted /dev/shm
            pass
    return [n for n in live_segments() if n.startswith(prefix)]
