"""Quickr reproduction: lazily approximating complex ad-hoc queries.

Reproduction of Kandula et al., "Quickr: Lazily Approximating Complex
AdHoc Queries in BigData Clusters" (SIGMOD 2016).

Quick start::

    from repro import QuickrPlanner, Executor
    from repro.workloads.tpcds import generate_tpcds, query_by_name

    db = generate_tpcds(scale=0.2)
    planner = QuickrPlanner(db)
    result = planner.plan(query_by_name(db, "q12"))   # inject samplers
    answer = Executor(db).execute(result.plan)        # approximate answer

The top-level exports cover the common path; subpackages hold the rest:

* :mod:`repro.algebra` — expressions, logical plans, query builder
* :mod:`repro.engine` — columnar executor and the cluster cost model
* :mod:`repro.samplers` — uniform / distinct / universe samplers
* :mod:`repro.core` — ASALQA, sampler push-down, accuracy analysis
* :mod:`repro.optimizer` — relational QO substrate and the planner
* :mod:`repro.stats` — catalog statistics and derivation
* :mod:`repro.workloads` — TPC-DS / TPC-H / Other / production trace
* :mod:`repro.baselines` — BlinkDB-style apriori sampling
* :mod:`repro.experiments` — the paper's evaluation harness
"""

from repro.algebra import Query, QueryBuilder, col, lit, scan
from repro.core import Asalqa, AsalqaOptions, AsalqaResult
from repro.engine import ClusterConfig, Database, Executor, Table
from repro.errors import ReproError
from repro.optimizer import QuickrPlanner
from repro.stats import Catalog

__version__ = "1.0.0"

__all__ = [
    "Query",
    "QueryBuilder",
    "col",
    "lit",
    "scan",
    "Asalqa",
    "AsalqaOptions",
    "AsalqaResult",
    "ClusterConfig",
    "Database",
    "Executor",
    "Table",
    "ReproError",
    "QuickrPlanner",
    "Catalog",
    "__version__",
]
