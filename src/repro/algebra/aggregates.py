"""Aggregate specifications (the paper's Table 1 aggregate surface).

Quickr supports ``COUNT``, ``SUM``, ``AVG``, ``MIN``, ``MAX``, their ``*IF``
conditional variants and ``COUNT(DISTINCT ...)``. Each aggregate in a query
is an :class:`AggSpec`; the optimizer's successor stage rewrites these into
Horvitz-Thompson estimators over the weight column (paper Table 8), which is
implemented in :mod:`repro.core.rewrite`.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.algebra.expressions import Expr, ensure_expr
from repro.errors import ExpressionError

__all__ = ["AggKind", "AggSpec", "sum_", "count", "avg", "min_", "max_", "count_distinct", "sum_if", "count_if"]


class AggKind(enum.Enum):
    """The aggregate operations Quickr can approximate (plus MIN/MAX)."""

    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"
    COUNT_DISTINCT = "count_distinct"
    SUM_IF = "sum_if"
    COUNT_IF = "count_if"


#: Aggregates that admit unbiased HT estimation under sampling. MIN/MAX are
#: not sampleable (an extreme value may simply not be in the sample), so a
#: query whose answer depends on them is unapproximable.
SAMPLEABLE_KINDS = frozenset(
    {
        AggKind.SUM,
        AggKind.COUNT,
        AggKind.AVG,
        AggKind.COUNT_DISTINCT,
        AggKind.SUM_IF,
        AggKind.COUNT_IF,
    }
)


class AggSpec:
    """One aggregation in a query's answer.

    Parameters
    ----------
    kind:
        Which aggregate operation to compute.
    alias:
        Output column name.
    expr:
        The value expression (QVS contributor). ``None`` for ``COUNT``.
    cond:
        The boolean condition for ``*IF`` variants.
    """

    __slots__ = ("kind", "alias", "expr", "cond")

    def __init__(self, kind: AggKind, alias: str, expr: Optional[Expr] = None, cond: Optional[Expr] = None):
        if kind in (AggKind.SUM, AggKind.AVG, AggKind.MIN, AggKind.MAX, AggKind.COUNT_DISTINCT) and expr is None:
            raise ExpressionError(f"{kind.value} requires a value expression")
        if kind in (AggKind.SUM_IF, AggKind.COUNT_IF) and cond is None:
            raise ExpressionError(f"{kind.value} requires a condition")
        if kind is AggKind.SUM_IF and expr is None:
            raise ExpressionError("sum_if requires a value expression")
        self.kind = kind
        self.alias = alias
        self.expr = expr
        self.cond = cond

    def value_columns(self) -> frozenset:
        """Columns aggregated over — contributors to the QVS."""
        return self.expr.columns() if self.expr is not None else frozenset()

    def condition_columns(self) -> frozenset:
        """Columns in the *IF condition — contributors to the QCS."""
        return self.cond.columns() if self.cond is not None else frozenset()

    def columns(self) -> frozenset:
        return self.value_columns() | self.condition_columns()

    def rename(self, mapping: dict) -> "AggSpec":
        return AggSpec(
            self.kind,
            self.alias,
            self.expr.rename(mapping) if self.expr is not None else None,
            self.cond.rename(mapping) if self.cond is not None else None,
        )

    def is_sampleable(self) -> bool:
        return self.kind in SAMPLEABLE_KINDS

    def key(self) -> tuple:
        return (
            self.kind.value,
            self.alias,
            self.expr.key() if self.expr is not None else None,
            self.cond.key() if self.cond is not None else None,
        )

    def __repr__(self):
        parts = [self.kind.value]
        if self.expr is not None:
            parts.append(repr(self.expr))
        if self.cond is not None:
            parts.append(f"if {self.cond!r}")
        return f"AggSpec({' '.join(parts)} AS {self.alias})"


# -- convenience constructors ------------------------------------------------

def sum_(expr, alias: str) -> AggSpec:
    """``SUM(expr) AS alias``."""
    return AggSpec(AggKind.SUM, alias, ensure_expr(expr))


def count(alias: str) -> AggSpec:
    """``COUNT(*) AS alias``."""
    return AggSpec(AggKind.COUNT, alias)


def avg(expr, alias: str) -> AggSpec:
    """``AVG(expr) AS alias``."""
    return AggSpec(AggKind.AVG, alias, ensure_expr(expr))


def min_(expr, alias: str) -> AggSpec:
    """``MIN(expr) AS alias`` (not approximable)."""
    return AggSpec(AggKind.MIN, alias, ensure_expr(expr))


def max_(expr, alias: str) -> AggSpec:
    """``MAX(expr) AS alias`` (not approximable)."""
    return AggSpec(AggKind.MAX, alias, ensure_expr(expr))


def count_distinct(expr, alias: str) -> AggSpec:
    """``COUNT(DISTINCT expr) AS alias``."""
    return AggSpec(AggKind.COUNT_DISTINCT, alias, ensure_expr(expr))


def sum_if(expr, cond, alias: str) -> AggSpec:
    """``SUMIF(expr, cond) AS alias``."""
    return AggSpec(AggKind.SUM_IF, alias, ensure_expr(expr), ensure_expr(cond))


def count_if(cond, alias: str) -> AggSpec:
    """``COUNTIF(cond) AS alias``."""
    return AggSpec(AggKind.COUNT_IF, alias, cond=ensure_expr(cond))
