"""Plan introspection: query-shape statistics and QCS/QVS analysis.

These functions implement the measurements the paper reports in Figure 2b,
Table 3 and Table 9: operator counts, depth, joins, aggregation operators,
user-defined functions, and the Query Column Set / Query Value Set.

The QCS of a query is the set of *base-table* columns that decide which rows
belong to the answer (group-by keys, predicate columns, join keys, *IF
conditions). The QVS is the set of base-table columns whose values are
aggregated. As in the paper, derived columns are recursively replaced by the
columns used to compute them until only base columns remain.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.algebra.expressions import Func
from repro.algebra.logical import (
    Aggregate,
    Join,
    LogicalNode,
    Project,
    SamplerNode,
    Scan,
    Select,
)

__all__ = [
    "count_operators",
    "plan_depth",
    "count_joins",
    "count_aggregation_ops",
    "count_udfs",
    "count_samplers",
    "query_column_set",
    "query_value_set",
    "plan_shape_stats",
    "base_tables",
]


def count_operators(plan: LogicalNode) -> int:
    """Total number of operators in the plan tree."""
    return plan.num_operators()


def plan_depth(plan: LogicalNode) -> int:
    """Height of the operator tree."""
    return plan.depth()


def count_joins(plan: LogicalNode) -> int:
    return sum(1 for node in plan.walk() if isinstance(node, Join))


def count_aggregation_ops(plan: LogicalNode) -> int:
    """Number of individual aggregate computations (not Aggregate nodes)."""
    return sum(len(node.aggs) for node in plan.walk() if isinstance(node, Aggregate))


def count_samplers(plan: LogicalNode) -> int:
    return sum(1 for node in plan.walk() if isinstance(node, SamplerNode))


def base_tables(plan: LogicalNode) -> Set[str]:
    """Names of base tables read by the plan."""
    return {node.table for node in plan.walk() if isinstance(node, Scan)}


def _collect_udf_names(expr, names: Set[str]) -> None:
    if isinstance(expr, Func):
        names.add(expr.name)
    for attr in ("left", "right", "child", "cond", "then", "otherwise"):
        sub = getattr(expr, attr, None)
        if sub is not None and hasattr(sub, "columns"):
            _collect_udf_names(sub, names)
    for sub in getattr(expr, "args", ()):
        _collect_udf_names(sub, names)


def count_udfs(plan: LogicalNode) -> int:
    """Number of user-defined function *invocations* in the plan."""
    total = 0
    for node in plan.walk():
        exprs = []
        if isinstance(node, Select):
            exprs.append(node.predicate)
        elif isinstance(node, Project):
            exprs.extend(node.mapping.values())
        elif isinstance(node, Aggregate):
            for agg in node.aggs:
                if agg.expr is not None:
                    exprs.append(agg.expr)
                if agg.cond is not None:
                    exprs.append(agg.cond)
        for expr in exprs:
            names: Set[str] = set()
            _collect_udf_names(expr, names)
            total += len(names)
    return total


def _lineage_maps(plan: LogicalNode) -> Dict[tuple, Dict[str, FrozenSet[str]]]:
    """For each node (by id), map its output columns to base-table columns.

    A base column maps to itself (qualified implicitly by scan order); a
    derived column maps to the union of the base columns of the expression
    that computed it.
    """
    lineage: Dict[int, Dict[str, FrozenSet[str]]] = {}

    def visit(node: LogicalNode) -> Dict[str, FrozenSet[str]]:
        if id(node) in lineage:
            return lineage[id(node)]
        if isinstance(node, Scan):
            result = {name: frozenset({name}) for name in node.output_columns()}
        elif isinstance(node, Project):
            child_map = visit(node.child)
            result = {}
            for name, expr in node.mapping.items():
                bases: FrozenSet[str] = frozenset()
                for src in expr.columns():
                    bases |= child_map.get(src, frozenset({src}))
                result[name] = bases
        elif isinstance(node, Join):
            result = {}
            result.update(visit(node.left))
            result.update(visit(node.right))
        elif isinstance(node, Aggregate):
            child_map = visit(node.child)
            result = {}
            for key in node.group_by:
                result[key] = child_map.get(key, frozenset({key}))
            for agg in node.aggs:
                bases = frozenset()
                for src in agg.columns():
                    bases |= child_map.get(src, frozenset({src}))
                result[agg.alias] = bases
        else:
            result = {}
            for child in node.children:
                result.update(visit(child))
        lineage[id(node)] = result
        return result

    visit(plan)
    return lineage


def _resolve(columns, lineage_map: Dict[str, FrozenSet[str]]) -> FrozenSet[str]:
    out: FrozenSet[str] = frozenset()
    for name in columns:
        out |= lineage_map.get(name, frozenset({name}))
    return out


def query_column_set(plan: LogicalNode) -> FrozenSet[str]:
    """Base columns that decide answer membership (group keys, predicates,
    join keys, *IF conditions), per the paper's QCS definition."""
    lineage = _lineage_maps(plan)
    qcs: FrozenSet[str] = frozenset()
    for node in plan.walk():
        if isinstance(node, Select):
            child_map = lineage[id(node.child)]
            qcs |= _resolve(node.predicate.columns(), child_map)
        elif isinstance(node, Join):
            qcs |= _resolve(node.left_keys, lineage[id(node.left)])
            qcs |= _resolve(node.right_keys, lineage[id(node.right)])
        elif isinstance(node, Aggregate):
            child_map = lineage[id(node.child)]
            qcs |= _resolve(node.group_by, child_map)
            for agg in node.aggs:
                qcs |= _resolve(agg.condition_columns(), child_map)
    return qcs


def query_value_set(plan: LogicalNode) -> FrozenSet[str]:
    """Base columns whose values are aggregated (the paper's QVS)."""
    lineage = _lineage_maps(plan)
    qvs: FrozenSet[str] = frozenset()
    for node in plan.walk():
        if isinstance(node, Aggregate):
            child_map = lineage[id(node.child)]
            for agg in node.aggs:
                qvs |= _resolve(agg.value_columns(), child_map)
    return qvs


def plan_shape_stats(plan: LogicalNode) -> dict:
    """All shape statistics for one plan, keyed like Figure 2b / Table 3."""
    qcs = query_column_set(plan)
    qvs = query_value_set(plan)
    return {
        "operators": count_operators(plan),
        "depth": plan_depth(plan),
        "joins": count_joins(plan),
        "aggregation_ops": count_aggregation_ops(plan),
        "udfs": count_udfs(plan),
        "qcs_size": len(qcs),
        "qvs_size": len(qvs),
        "qcs_plus_qvs": len(qcs | qvs),
    }
