"""Fluent query builder.

The builder is the public authoring surface for queries. It produces a
:class:`Query` — a named, immutable logical plan — that the optimizer
consumes. The style mirrors the relational mash-up languages the paper
targets (SCOPE, Spark-SQL): chains of scans, selects, derived columns,
joins, group-bys, ordering and limits.

Example
-------
>>> q = (
...     scan(db, "store_sales")
...     .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
...     .where(col("i_current_price") > 50)
...     .groupby("i_color")
...     .agg(sum_(col("ss_net_profit"), "total_profit"))
...     .build("profit_by_color")
... )
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import Col, Expr, ensure_expr
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    Scan,
    Select,
    UnionAll,
)
from repro.errors import PlanError, SchemaError

__all__ = ["Query", "QueryBuilder", "scan", "from_node"]


class Query:
    """A named logical plan ready for optimization and execution."""

    __slots__ = ("name", "plan")

    def __init__(self, name: str, plan: LogicalNode):
        self.name = name
        self.plan = plan

    def key(self) -> tuple:
        return self.plan.key()

    def __repr__(self):
        return f"Query({self.name!r}, {self.plan.num_operators()} operators)"


class QueryBuilder:
    """Chainable builder over a logical plan node."""

    __slots__ = ("node",)

    def __init__(self, node: LogicalNode):
        self.node = node

    # -- row-level operators -------------------------------------------------
    def where(self, predicate: Expr) -> "QueryBuilder":
        """Filter rows; equivalent to a SQL WHERE clause."""
        return QueryBuilder(Select(self.node, ensure_expr(predicate)))

    def select(self, *columns: str) -> "QueryBuilder":
        """Keep only the named columns."""
        mapping = {name: Col(name) for name in columns}
        return QueryBuilder(Project(self.node, mapping))

    def derive(self, **exprs) -> "QueryBuilder":
        """Extend the schema with computed columns, keeping existing ones."""
        mapping = {name: Col(name) for name in self.node.output_columns()}
        for name, expr in exprs.items():
            if name in mapping:
                raise SchemaError(f"derived column {name!r} already exists")
            mapping[name] = ensure_expr(expr)
        return QueryBuilder(Project(self.node, mapping))

    def rename(self, **renames) -> "QueryBuilder":
        """Rename columns: ``rename(new_name="old_name")``."""
        inverse = {old: new for new, old in renames.items()}
        mapping = {}
        for name in self.node.output_columns():
            mapping[inverse.get(name, name)] = Col(name)
        return QueryBuilder(Project(self.node, mapping))

    def drop(self, *columns: str) -> "QueryBuilder":
        """Remove the named columns from the schema."""
        keep = [c for c in self.node.output_columns() if c not in set(columns)]
        if not keep:
            raise PlanError("drop would remove every column")
        return self.select(*keep)

    # -- multi-input operators -----------------------------------------------
    def join(
        self,
        other: "QueryBuilder",
        on: Sequence[Tuple[str, str]],
        how: str = "inner",
    ) -> "QueryBuilder":
        """Equi-join with another builder on ``[(left_key, right_key), ...]``."""
        left_keys = [pair[0] for pair in on]
        right_keys = [pair[1] for pair in on]
        return QueryBuilder(Join(self.node, other.node, left_keys, right_keys, how))

    def union_all(self, *others: "QueryBuilder") -> "QueryBuilder":
        return QueryBuilder(UnionAll([self.node] + [o.node for o in others]))

    # -- aggregation -----------------------------------------------------------
    def groupby(self, *keys: str) -> "GroupedBuilder":
        """Start a grouped aggregation; follow with :meth:`GroupedBuilder.agg`."""
        return GroupedBuilder(self.node, keys)

    def agg(self, *aggs: AggSpec) -> "QueryBuilder":
        """Scalar (ungrouped) aggregation."""
        return QueryBuilder(Aggregate(self.node, (), aggs))

    # -- ordering / limiting ----------------------------------------------------
    def orderby(self, *keys: str, desc: bool = False) -> "QueryBuilder":
        return QueryBuilder(OrderBy(self.node, keys, descending=desc))

    def limit(self, n: int) -> "QueryBuilder":
        return QueryBuilder(Limit(self.node, n))

    # -- finalize ---------------------------------------------------------------
    def build(self, name: str) -> Query:
        """Freeze into a named :class:`Query`."""
        return Query(name, self.node)

    def output_columns(self) -> Tuple[str, ...]:
        return self.node.output_columns()

    def __repr__(self):
        return f"QueryBuilder({self.node!r})"


class GroupedBuilder:
    """Intermediate state between ``groupby`` and ``agg``."""

    __slots__ = ("_node", "_keys")

    def __init__(self, node: LogicalNode, keys: Sequence[str]):
        self._node = node
        self._keys = tuple(keys)

    def agg(self, *aggs: AggSpec) -> QueryBuilder:
        return QueryBuilder(Aggregate(self._node, self._keys, aggs))


def scan(database, table: str) -> QueryBuilder:
    """Begin a query from a base table.

    ``database`` is anything exposing ``columns(table) -> sequence of str``
    (a :class:`repro.engine.table.Database` or a plain mapping).
    """
    if hasattr(database, "columns"):
        columns = database.columns(table)
    elif isinstance(database, dict):
        columns = database[table]
    else:
        raise PlanError(f"cannot resolve schema for {table!r} from {database!r}")
    return QueryBuilder(Scan(table, tuple(columns)))


def from_node(node: LogicalNode) -> QueryBuilder:
    """Wrap an existing logical node in a builder."""
    return QueryBuilder(node)
