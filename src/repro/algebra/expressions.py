"""Scalar expression AST used in predicates, projections and aggregates.

Expressions are immutable trees. Each node knows:

* ``columns()`` — the set of *base* column names it reads. This powers the
  QCS/QVS analysis from the paper (Section 3): the Query Column Set is the
  set of columns that decide which rows are in the answer, and the Query
  Value Set is the set of columns aggregated over.
* ``evaluate(table)`` — vectorized evaluation against a columnar
  :class:`~repro.engine.table.Table`, returning a NumPy array with one
  entry per row.

User-defined functions (the paper's UDFs, row-local operations) are modeled
by :class:`Func`, which wraps an arbitrary vectorized callable and declares
which input columns it consumes.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ExpressionError

__all__ = [
    "Expr",
    "Col",
    "Lit",
    "BinOp",
    "Cmp",
    "And",
    "Or",
    "Not",
    "Func",
    "IfThenElse",
    "IsIn",
    "col",
    "lit",
    "ensure_expr",
]

_ARITH_OPS: dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}

_CMP_OPS: dict[str, Callable] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Expr:
    """Base class for scalar expressions."""

    def columns(self) -> frozenset:
        """Base column names read by this expression."""
        raise NotImplementedError

    def evaluate(self, table) -> np.ndarray:
        """Evaluate against a columnar table, returning one value per row."""
        raise NotImplementedError

    def rename(self, mapping: dict) -> "Expr":
        """Return a copy with column references renamed via ``mapping``."""
        raise NotImplementedError

    # -- operator sugar so queries read like SQL fragments ------------------
    def __add__(self, other):
        return BinOp("+", self, ensure_expr(other))

    def __radd__(self, other):
        return BinOp("+", ensure_expr(other), self)

    def __sub__(self, other):
        return BinOp("-", self, ensure_expr(other))

    def __rsub__(self, other):
        return BinOp("-", ensure_expr(other), self)

    def __mul__(self, other):
        return BinOp("*", self, ensure_expr(other))

    def __rmul__(self, other):
        return BinOp("*", ensure_expr(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, ensure_expr(other))

    def __mod__(self, other):
        return BinOp("%", self, ensure_expr(other))

    def __eq__(self, other):  # noqa: D105 - intentional SQL-style equality
        return Cmp("==", self, ensure_expr(other))

    def __ne__(self, other):
        return Cmp("!=", self, ensure_expr(other))

    def __lt__(self, other):
        return Cmp("<", self, ensure_expr(other))

    def __le__(self, other):
        return Cmp("<=", self, ensure_expr(other))

    def __gt__(self, other):
        return Cmp(">", self, ensure_expr(other))

    def __ge__(self, other):
        return Cmp(">=", self, ensure_expr(other))

    def __and__(self, other):
        return And(self, ensure_expr(other))

    def __or__(self, other):
        return Or(self, ensure_expr(other))

    def __invert__(self):
        return Not(self)

    def isin(self, values: Iterable) -> "IsIn":
        return IsIn(self, tuple(values))

    def __hash__(self):
        return hash(self.key())

    def key(self) -> tuple:
        """A hashable structural identity, used for plan deduplication."""
        raise NotImplementedError

    def equals(self, other: "Expr") -> bool:
        """Structural equality (``==`` is taken by the SQL-style builder)."""
        return isinstance(other, Expr) and self.key() == other.key()


class Col(Expr):
    """Reference to a column by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ExpressionError(f"column name must be a non-empty string, got {name!r}")
        self.name = name

    def columns(self) -> frozenset:
        return frozenset({self.name})

    def evaluate(self, table) -> np.ndarray:
        return table.column(self.name)

    def rename(self, mapping: dict) -> "Col":
        return Col(mapping.get(self.name, self.name))

    def key(self) -> tuple:
        return ("col", self.name)

    def __repr__(self):
        return f"Col({self.name})"


class Lit(Expr):
    """A constant literal."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def columns(self) -> frozenset:
        return frozenset()

    def evaluate(self, table) -> np.ndarray:
        return np.full(table.num_rows, self.value)

    def rename(self, mapping: dict) -> "Lit":
        return self

    def key(self) -> tuple:
        return ("lit", self.value)

    def __repr__(self):
        return f"Lit({self.value!r})"


class BinOp(Expr):
    """Arithmetic binary operation over two expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> frozenset:
        return self.left.columns() | self.right.columns()

    def evaluate(self, table) -> np.ndarray:
        lhs = self.left.evaluate(table)
        rhs = self.right.evaluate(table)
        if self.op in ("/", "%"):
            rhs = np.where(rhs == 0, np.nan, rhs)
        return _ARITH_OPS[self.op](lhs, rhs)

    def rename(self, mapping: dict) -> "BinOp":
        return BinOp(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def key(self) -> tuple:
        return ("binop", self.op, self.left.key(), self.right.key())

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Cmp(Expr):
    """Comparison yielding a boolean mask."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _CMP_OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> frozenset:
        return self.left.columns() | self.right.columns()

    def evaluate(self, table) -> np.ndarray:
        return np.asarray(_CMP_OPS[self.op](self.left.evaluate(table), self.right.evaluate(table)), dtype=bool)

    def rename(self, mapping: dict) -> "Cmp":
        return Cmp(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def key(self) -> tuple:
        return ("cmp", self.op, self.left.key(), self.right.key())

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    """Logical conjunction of boolean expressions."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def columns(self) -> frozenset:
        return self.left.columns() | self.right.columns()

    def evaluate(self, table) -> np.ndarray:
        return np.asarray(self.left.evaluate(table), dtype=bool) & np.asarray(
            self.right.evaluate(table), dtype=bool
        )

    def rename(self, mapping: dict) -> "And":
        return And(self.left.rename(mapping), self.right.rename(mapping))

    def key(self) -> tuple:
        return ("and", self.left.key(), self.right.key())

    def conjuncts(self) -> list:
        """Flatten nested conjunctions into a list of predicates."""
        out = []
        for side in (self.left, self.right):
            if isinstance(side, And):
                out.extend(side.conjuncts())
            else:
                out.append(side)
        return out

    def __repr__(self):
        return f"({self.left!r} AND {self.right!r})"


class Or(Expr):
    """Logical disjunction of boolean expressions."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def columns(self) -> frozenset:
        return self.left.columns() | self.right.columns()

    def evaluate(self, table) -> np.ndarray:
        return np.asarray(self.left.evaluate(table), dtype=bool) | np.asarray(
            self.right.evaluate(table), dtype=bool
        )

    def rename(self, mapping: dict) -> "Or":
        return Or(self.left.rename(mapping), self.right.rename(mapping))

    def key(self) -> tuple:
        return ("or", self.left.key(), self.right.key())

    def __repr__(self):
        return f"({self.left!r} OR {self.right!r})"


class Not(Expr):
    """Logical negation."""

    __slots__ = ("child",)

    def __init__(self, child: Expr):
        self.child = child

    def columns(self) -> frozenset:
        return self.child.columns()

    def evaluate(self, table) -> np.ndarray:
        return ~np.asarray(self.child.evaluate(table), dtype=bool)

    def rename(self, mapping: dict) -> "Not":
        return Not(self.child.rename(mapping))

    def key(self) -> tuple:
        return ("not", self.child.key())

    def __repr__(self):
        return f"NOT({self.child!r})"


class IsIn(Expr):
    """Membership test against a fixed set of values."""

    __slots__ = ("child", "values")

    def __init__(self, child: Expr, values: tuple):
        self.child = child
        self.values = tuple(values)

    def columns(self) -> frozenset:
        return self.child.columns()

    def evaluate(self, table) -> np.ndarray:
        return np.isin(self.child.evaluate(table), np.asarray(self.values))

    def rename(self, mapping: dict) -> "IsIn":
        return IsIn(self.child.rename(mapping), self.values)

    def key(self) -> tuple:
        return ("isin", self.child.key(), self.values)

    def __repr__(self):
        return f"{self.child!r} IN {self.values!r}"


class Func(Expr):
    """A row-local user-defined function (UDF in the paper's terminology).

    ``fn`` must be vectorized: it receives one NumPy array per argument and
    returns an array of the same length. The function ``name`` participates
    in structural identity, so two UDFs with the same name and arguments
    are treated as the same expression by the optimizer.
    """

    __slots__ = ("name", "fn", "args")

    def __init__(self, name: str, fn: Callable, args: Sequence[Expr]):
        self.name = name
        self.fn = fn
        self.args = tuple(ensure_expr(a) for a in args)

    def columns(self) -> frozenset:
        out = frozenset()
        for arg in self.args:
            out |= arg.columns()
        return out

    def evaluate(self, table) -> np.ndarray:
        return self.fn(*[arg.evaluate(table) for arg in self.args])

    def rename(self, mapping: dict) -> "Func":
        return Func(self.name, self.fn, [a.rename(mapping) for a in self.args])

    def key(self) -> tuple:
        return ("func", self.name) + tuple(a.key() for a in self.args)

    def __repr__(self):
        return f"{self.name}({', '.join(map(repr, self.args))})"


class IfThenElse(Expr):
    """Vectorized conditional: ``IF(cond, then, otherwise)``."""

    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond: Expr, then, otherwise):
        self.cond = ensure_expr(cond)
        self.then = ensure_expr(then)
        self.otherwise = ensure_expr(otherwise)

    def columns(self) -> frozenset:
        return self.cond.columns() | self.then.columns() | self.otherwise.columns()

    def evaluate(self, table) -> np.ndarray:
        return np.where(
            np.asarray(self.cond.evaluate(table), dtype=bool),
            self.then.evaluate(table),
            self.otherwise.evaluate(table),
        )

    def rename(self, mapping: dict) -> "IfThenElse":
        return IfThenElse(
            self.cond.rename(mapping), self.then.rename(mapping), self.otherwise.rename(mapping)
        )

    def key(self) -> tuple:
        return ("if", self.cond.key(), self.then.key(), self.otherwise.key())

    def __repr__(self):
        return f"IF({self.cond!r}, {self.then!r}, {self.otherwise!r})"


def col(name: str) -> Col:
    """Shorthand constructor for a column reference."""
    return Col(name)


def lit(value) -> Lit:
    """Shorthand constructor for a literal."""
    return Lit(value)


def ensure_expr(value) -> Expr:
    """Coerce plain Python values to :class:`Lit`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, str, bool, np.integer, np.floating)):
        return Lit(value)
    raise ExpressionError(f"cannot coerce {value!r} to an expression")
