"""Logical plan nodes.

A query is a tree of :class:`LogicalNode`. Nodes are immutable; rewrites
build new trees via :meth:`LogicalNode.with_children`. Every node derives
its output schema at construction time so malformed plans fail early, and
exposes a structural :meth:`LogicalNode.key` used by the optimizer to
de-duplicate alternatives.

The sampler is a first-class plan node (:class:`SamplerNode`), exactly as the
paper argues it must be for the optimizer to explore sampled plans natively
(Section 4.2, option (b)).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.algebra.aggregates import AggSpec
from repro.algebra.expressions import Col, Expr
from repro.errors import PlanError, SchemaError

__all__ = [
    "LogicalNode",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "OrderBy",
    "Limit",
    "UnionAll",
    "SamplerNode",
]


class LogicalNode:
    """Base class for logical plan operators."""

    children: Tuple["LogicalNode", ...] = ()

    def output_columns(self) -> Tuple[str, ...]:
        """Names of columns this node produces, in order."""
        raise NotImplementedError

    def with_children(self, children: Sequence["LogicalNode"]) -> "LogicalNode":
        """Rebuild this node over new children (same arity)."""
        raise NotImplementedError

    def key(self) -> tuple:
        """Hashable structural identity for plan deduplication."""
        raise NotImplementedError

    def walk(self) -> Iterator["LogicalNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Height of the operator tree (a Scan has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def num_operators(self) -> int:
        return sum(1 for _ in self.walk())

    def _require_columns(self, needed: Iterable[str], where: str) -> None:
        available = set()
        for child in self.children:
            available.update(child.output_columns())
        missing = sorted(set(needed) - available)
        if missing:
            raise SchemaError(f"{where}: columns {missing} not available; have {sorted(available)}")

    def __repr__(self):
        return f"{type(self).__name__}({', '.join(repr(c) for c in self.children)})"


class Scan(LogicalNode):
    """Leaf read of a base table.

    The column list is resolved from the catalog when the plan is built, so
    the plan is self-describing without a live catalog.
    """

    def __init__(self, table: str, columns: Sequence[str]):
        if not columns:
            raise PlanError(f"scan of {table!r} must declare at least one column")
        self.table = table
        self._columns = tuple(columns)
        self.children = ()

    def output_columns(self) -> Tuple[str, ...]:
        return self._columns

    def with_children(self, children: Sequence[LogicalNode]) -> "Scan":
        if children:
            raise PlanError("Scan takes no children")
        return self

    def key(self) -> tuple:
        return ("scan", self.table)

    def __repr__(self):
        return f"Scan({self.table})"


class Select(LogicalNode):
    """Filter rows by a boolean predicate."""

    def __init__(self, child: LogicalNode, predicate: Expr):
        self.children = (child,)
        self.predicate = predicate
        self._require_columns(predicate.columns(), "Select")

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def with_children(self, children: Sequence[LogicalNode]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def key(self) -> tuple:
        return ("select", self.predicate.key(), self.child.key())

    def __repr__(self):
        return f"Select({self.predicate!r})"


class Project(LogicalNode):
    """Compute output columns as named expressions over the input.

    The output schema is exactly ``mapping``'s keys (in insertion order);
    there is no implicit pass-through. Builders that want to extend a schema
    include identity ``Col`` expressions for the retained columns.
    """

    def __init__(self, child: LogicalNode, mapping: dict):
        if not mapping:
            raise PlanError("Project requires at least one output column")
        self.children = (child,)
        self.mapping = dict(mapping)
        needed = set()
        for expr in self.mapping.values():
            needed |= expr.columns()
        self._require_columns(needed, "Project")

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def output_columns(self) -> Tuple[str, ...]:
        return tuple(self.mapping.keys())

    def with_children(self, children: Sequence[LogicalNode]) -> "Project":
        (child,) = children
        return Project(child, self.mapping)

    def identity_passthrough(self) -> dict:
        """Map of output name -> source column for pure renames/passthroughs."""
        out = {}
        for name, expr in self.mapping.items():
            if isinstance(expr, Col):
                out[name] = expr.name
        return out

    def key(self) -> tuple:
        return (
            "project",
            tuple((name, expr.key()) for name, expr in self.mapping.items()),
            self.child.key(),
        )

    def __repr__(self):
        return f"Project({list(self.mapping)})"


class Join(LogicalNode):
    """Equi-join on one or more key pairs.

    ``how`` is one of ``inner``, ``left``, ``right``. Full-outer joins are
    outside Quickr's supported surface (paper Table 1) and are rejected.
    """

    SUPPORTED = ("inner", "left", "right")

    def __init__(
        self,
        left: LogicalNode,
        right: LogicalNode,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        how: str = "inner",
    ):
        if how not in self.SUPPORTED:
            raise PlanError(f"join type {how!r} not supported (full-outer is outside Quickr's surface)")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("join needs equal, non-empty key lists")
        self.children = (left, right)
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.how = how
        left_cols = set(left.output_columns())
        right_cols = set(right.output_columns())
        if not set(self.left_keys) <= left_cols:
            raise SchemaError(f"join keys {self.left_keys} not all in left input {sorted(left_cols)}")
        if not set(self.right_keys) <= right_cols:
            raise SchemaError(f"join keys {self.right_keys} not all in right input {sorted(right_cols)}")
        overlap = left_cols & right_cols
        if overlap:
            raise SchemaError(f"join inputs share column names {sorted(overlap)}; rename first")

    @property
    def left(self) -> LogicalNode:
        return self.children[0]

    @property
    def right(self) -> LogicalNode:
        return self.children[1]

    def output_columns(self) -> Tuple[str, ...]:
        return self.left.output_columns() + self.right.output_columns()

    def with_children(self, children: Sequence[LogicalNode]) -> "Join":
        left, right = children
        return Join(left, right, self.left_keys, self.right_keys, self.how)

    def key_mapping_left_to_right(self) -> dict:
        return dict(zip(self.left_keys, self.right_keys))

    def key_mapping_right_to_left(self) -> dict:
        return dict(zip(self.right_keys, self.left_keys))

    def key(self) -> tuple:
        return ("join", self.how, self.left_keys, self.right_keys, self.left.key(), self.right.key())

    def __repr__(self):
        pairs = ", ".join(f"{lk}={rk}" for lk, rk in zip(self.left_keys, self.right_keys))
        return f"Join[{self.how}]({pairs})"


class Aggregate(LogicalNode):
    """Group-by aggregation. ``group_by`` may be empty (scalar aggregates)."""

    def __init__(self, child: LogicalNode, group_by: Sequence[str], aggs: Sequence[AggSpec]):
        if not aggs:
            raise PlanError("Aggregate requires at least one aggregate")
        self.children = (child,)
        self.group_by = tuple(group_by)
        self.aggs = tuple(aggs)
        needed = set(self.group_by)
        for agg in self.aggs:
            needed |= agg.columns()
        self._require_columns(needed, "Aggregate")
        aliases = [a.alias for a in self.aggs]
        clash = set(aliases) & set(self.group_by)
        if clash or len(set(aliases)) != len(aliases):
            raise PlanError(f"aggregate aliases must be unique and distinct from group keys: {aliases}")

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def output_columns(self) -> Tuple[str, ...]:
        return self.group_by + tuple(a.alias for a in self.aggs)

    def with_children(self, children: Sequence[LogicalNode]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_by, self.aggs)

    def is_sampleable(self) -> bool:
        """True iff every aggregate admits an unbiased HT estimator."""
        return all(a.is_sampleable() for a in self.aggs)

    def key(self) -> tuple:
        return ("agg", self.group_by, tuple(a.key() for a in self.aggs), self.child.key())

    def __repr__(self):
        return f"Aggregate(by={list(self.group_by)}, aggs={list(self.aggs)})"


class OrderBy(LogicalNode):
    """Sort by one or more columns."""

    def __init__(self, child: LogicalNode, keys: Sequence[str], descending: bool = False):
        if not keys:
            raise PlanError("OrderBy requires at least one key")
        self.children = (child,)
        self.keys = tuple(keys)
        self.descending = bool(descending)
        self._require_columns(self.keys, "OrderBy")

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def with_children(self, children: Sequence[LogicalNode]) -> "OrderBy":
        (child,) = children
        return OrderBy(child, self.keys, self.descending)

    def key(self) -> tuple:
        return ("orderby", self.keys, self.descending, self.child.key())

    def __repr__(self):
        return f"OrderBy({list(self.keys)}, desc={self.descending})"


class Limit(LogicalNode):
    """Keep the first ``n`` rows. Combined with OrderBy on an aggregation
    column this is the paper's main source of "missed groups" (Section 5.3)."""

    def __init__(self, child: LogicalNode, n: int):
        if n <= 0:
            raise PlanError("Limit must be positive")
        self.children = (child,)
        self.n = int(n)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def with_children(self, children: Sequence[LogicalNode]) -> "Limit":
        (child,) = children
        return Limit(child, self.n)

    def key(self) -> tuple:
        return ("limit", self.n, self.child.key())

    def __repr__(self):
        return f"Limit({self.n})"


class UnionAll(LogicalNode):
    """Concatenate inputs with identical schemas."""

    def __init__(self, inputs: Sequence[LogicalNode]):
        if len(inputs) < 2:
            raise PlanError("UnionAll requires at least two inputs")
        self.children = tuple(inputs)
        first = self.children[0].output_columns()
        for other in self.children[1:]:
            if other.output_columns() != first:
                raise SchemaError(
                    f"UnionAll schema mismatch: {first} vs {other.output_columns()}"
                )

    def output_columns(self) -> Tuple[str, ...]:
        return self.children[0].output_columns()

    def with_children(self, children: Sequence[LogicalNode]) -> "UnionAll":
        return UnionAll(children)

    def key(self) -> tuple:
        return ("unionall",) + tuple(c.key() for c in self.children)


class SamplerNode(LogicalNode):
    """A sampler in the plan.

    ``spec`` is either a logical sampler state (during ASALQA exploration,
    :class:`repro.core.sampler_state.SamplerState`) or a physical sampler
    spec (after costing, from :mod:`repro.samplers.base`). Both expose a
    ``key()`` method for structural identity.
    """

    def __init__(self, child: LogicalNode, spec):
        if not hasattr(spec, "key"):
            raise PlanError(f"sampler spec {spec!r} must expose a key() method")
        self.children = (child,)
        self.spec = spec

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def with_children(self, children: Sequence[LogicalNode]) -> "SamplerNode":
        (child,) = children
        return SamplerNode(child, self.spec)

    def with_spec(self, spec) -> "SamplerNode":
        return SamplerNode(self.child, spec)

    def key(self) -> tuple:
        return ("sampler", self.spec.key(), self.child.key())

    def __repr__(self):
        return f"SamplerNode({self.spec!r})"
