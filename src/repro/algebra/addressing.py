"""Stable structural plan addressing and canonical plan fingerprints.

Every execution layer needs to talk about "this node of that plan": the
executor records per-node cardinalities, the parallel executor stitches
worker metrics back into the parent's plan profile, the view store matches
sampled sub-expressions across queries, and the BlinkDB baseline matches
repeated queries. Keying any of that on ``id(node)`` ties the mapping to
one Python process (and silently breaks when a node object is shared
between two positions of a tree). This module provides two portable
identities instead:

* **Node addresses** — a node's pre-order path from the root, as a tuple of
  child indices (the root is ``()``, its second child is ``(1,)``, that
  child's first child is ``(1, 0)``). Addresses are stable across plan
  copies, process boundaries and re-compilation, and two occurrences of the
  *same* node object in one tree get two distinct addresses.

* **Plan fingerprints** — a SHA-256 digest of a canonical encoding of the
  subtree. The encoding is order-insensitive over commutative parts
  (inner-join operands, AND/OR conjunct chains, ``+``/``*`` and ``==``/``!=``
  operands) and parameterized on sampler specs (kind, columns, rate *and*
  seed), so two submissions of the same query — even with join inputs or
  predicate conjuncts written in a different order — map to the same cache
  entry, while changing any sampler parameter changes the fingerprint.
  Order-sensitive constructs (projection output order, group-by order,
  UNION ALL branch order, outer joins, ORDER BY) keep their order: there
  the order is part of the answer.

Canonical forms and fingerprints are memoized on the node objects (plans
are immutable by convention; rewrites build new trees), so re-submitting
the same plan object re-uses the digest without re-walking the tree.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, Tuple

from repro.algebra.expressions import And, BinOp, Cmp, Col, Expr, Func, IfThenElse, IsIn, Lit, Not, Or
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.errors import PlanError

__all__ = [
    "NodeAddress",
    "ROOT_ADDRESS",
    "walk_with_addresses",
    "format_address",
    "parse_address",
    "node_at",
    "scan_ordinals",
    "canonical_plan_form",
    "plan_fingerprint",
]

#: A node's position in its plan: the tuple of child indices on the path
#: from the root. ``()`` is the root itself.
NodeAddress = Tuple[int, ...]

ROOT_ADDRESS: NodeAddress = ()

_CANON_ATTR = "_quickr_canonical_form"
_FP_ATTR = "_quickr_fingerprint"


def walk_with_addresses(
    plan: LogicalNode, prefix: NodeAddress = ROOT_ADDRESS
) -> Iterator[Tuple[NodeAddress, LogicalNode]]:
    """Pre-order traversal yielding ``(address, node)`` pairs.

    ``prefix`` offsets every address, so walking a subtree with its own
    absolute address as the prefix yields absolute addresses.
    """
    yield prefix, plan
    for i, child in enumerate(plan.children):
        yield from walk_with_addresses(child, prefix + (i,))


def format_address(address: NodeAddress) -> str:
    """Human-readable address: ``r`` for the root, else ``r.1.0`` style."""
    if not address:
        return "r"
    return "r." + ".".join(str(i) for i in address)


def parse_address(text: str) -> NodeAddress:
    """Inverse of :func:`format_address`."""
    parts = text.split(".")
    if not parts or parts[0] != "r":
        raise PlanError(f"malformed node address {text!r}; expected 'r' or 'r.<i>.<j>...'")
    try:
        return tuple(int(p) for p in parts[1:])
    except ValueError as exc:
        raise PlanError(f"malformed node address {text!r}: {exc}") from None


def node_at(plan: LogicalNode, address: NodeAddress) -> LogicalNode:
    """The node at ``address``; raises :class:`PlanError` if out of range."""
    node = plan
    for depth, index in enumerate(address):
        if index < 0 or index >= len(node.children):
            raise PlanError(
                f"address {format_address(address)} leaves the plan at depth {depth} "
                f"({type(node).__name__} has {len(node.children)} children)"
            )
        node = node.children[index]
    return node


def scan_ordinals(plan: LogicalNode) -> Dict[NodeAddress, int]:
    """Map each Scan *occurrence* (by address) to its pre-order ordinal.

    Unlike identity-keyed maps, a Scan object that appears on both sides of
    a self-join gets two entries with two distinct ordinals — which is what
    gives each occurrence its own lineage column.
    """
    out: Dict[NodeAddress, int] = {}
    for address, node in walk_with_addresses(plan):
        if isinstance(node, Scan):
            out[address] = len(out)
    return out


# -- canonical encodings ------------------------------------------------------

_COMMUTATIVE_BINOPS = frozenset({"+", "*"})
_COMMUTATIVE_CMPS = frozenset({"==", "!="})


def _flatten(expr: Expr, kind: type) -> list:
    """Flatten a chain of nested And (or Or) nodes into its leaves."""
    out = []
    for side in (expr.left, expr.right):
        if isinstance(side, kind):
            out.extend(_flatten(side, kind))
        else:
            out.append(side)
    return out


def _expr_canon(expr: Expr) -> tuple:
    """Canonical encoding of a scalar expression (commutative parts sorted)."""
    if isinstance(expr, Col):
        return ("col", expr.name)
    if isinstance(expr, Lit):
        return ("lit", repr(expr.value))
    if isinstance(expr, (And, Or)):
        tag = "and" if isinstance(expr, And) else "or"
        parts = [_expr_canon(p) for p in _flatten(expr, type(expr))]
        return (tag,) + tuple(sorted(parts, key=repr))
    if isinstance(expr, BinOp):
        left, right = _expr_canon(expr.left), _expr_canon(expr.right)
        if expr.op in _COMMUTATIVE_BINOPS and repr(right) < repr(left):
            left, right = right, left
        return ("binop", expr.op, left, right)
    if isinstance(expr, Cmp):
        left, right = _expr_canon(expr.left), _expr_canon(expr.right)
        if expr.op in _COMMUTATIVE_CMPS and repr(right) < repr(left):
            left, right = right, left
        return ("cmp", expr.op, left, right)
    if isinstance(expr, Not):
        return ("not", _expr_canon(expr.child))
    if isinstance(expr, IsIn):
        return ("isin", _expr_canon(expr.child), tuple(sorted(map(repr, expr.values))))
    if isinstance(expr, Func):
        return ("func", expr.name) + tuple(_expr_canon(a) for a in expr.args)
    if isinstance(expr, IfThenElse):
        return ("if", _expr_canon(expr.cond), _expr_canon(expr.then), _expr_canon(expr.otherwise))
    # Unknown expression type: fall back to its structural key.
    return ("expr",) + tuple(expr.key())


def canonical_plan_form(node: LogicalNode) -> tuple:
    """Canonical structural encoding of the subtree rooted at ``node``."""
    cached = node.__dict__.get(_CANON_ATTR)
    if cached is not None:
        return cached
    form = _node_canon(node)
    node.__dict__[_CANON_ATTR] = form
    return form


def _node_canon(node: LogicalNode) -> tuple:
    if isinstance(node, Scan):
        return ("scan", node.table, node.output_columns())
    if isinstance(node, Select):
        return ("select", _expr_canon(node.predicate), canonical_plan_form(node.child))
    if isinstance(node, Project):
        # Output order is part of the schema; entry order is preserved.
        mapping = tuple((name, _expr_canon(expr)) for name, expr in node.mapping.items())
        return ("project", mapping, canonical_plan_form(node.child))
    if isinstance(node, SamplerNode):
        return ("sampler", tuple(node.spec.key()), canonical_plan_form(node.child))
    if isinstance(node, Join):
        left = (canonical_plan_form(node.left), node.left_keys)
        right = (canonical_plan_form(node.right), node.right_keys)
        if node.how != "inner":
            return ("join", node.how, left, right)
        # Inner joins commute: order the operands canonically, then order the
        # key *pairs* (keeping each left/right pairing intact).
        first, second = sorted((left, right), key=repr)
        order = sorted(range(len(first[1])), key=lambda i: (first[1][i], second[1][i]))
        return (
            "join",
            "inner",
            (first[0], tuple(first[1][i] for i in order)),
            (second[0], tuple(second[1][i] for i in order)),
        )
    if isinstance(node, Aggregate):
        # Covers WeightedAggregate too: HT-estimation annotations change the
        # executed operator, so they are part of the identity.
        rescale = tuple(sorted((getattr(node, "universe_rescale", None) or {}).items()))
        return (
            "aggregate",
            node.group_by,
            tuple(a.key() for a in node.aggs),
            bool(getattr(node, "compute_ci", False)),
            rescale,
            getattr(node, "universe_variance", None),
            canonical_plan_form(node.child),
        )
    if isinstance(node, OrderBy):
        return ("orderby", node.keys, node.descending, canonical_plan_form(node.child))
    if isinstance(node, Limit):
        return ("limit", node.n, canonical_plan_form(node.child))
    if isinstance(node, UnionAll):
        # Branch order decides answer row order; keep it.
        return ("unionall",) + tuple(canonical_plan_form(c) for c in node.children)
    # Unknown node type: structural fallback over class name and children.
    return ("node", type(node).__name__) + tuple(canonical_plan_form(c) for c in node.children)


def plan_fingerprint(node: LogicalNode) -> str:
    """Canonical fingerprint of the subtree rooted at ``node``.

    A SHA-256 hex digest of :func:`canonical_plan_form` — stable across
    processes and runs, order-insensitive over commutative plan parts, and
    sensitive to every sampler parameter (including seeds, so universe
    families stay consistent across queries).
    """
    cached = node.__dict__.get(_FP_ATTR)
    if cached is not None:
        return cached
    digest = hashlib.sha256(repr(canonical_plan_form(node)).encode("utf-8")).hexdigest()
    node.__dict__[_FP_ATTR] = digest
    return digest
