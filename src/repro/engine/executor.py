"""Plan executor: runs a (possibly sampled) logical plan over a database.

Execution is vectorized and single-process, but every operator's input and
output cardinalities are recorded and replayed through the stage-based
cluster cost model (:mod:`repro.engine.costmodel`), yielding the metrics the
paper reports — machine-hours, runtime, shuffled data, intermediate data and
effective passes — for the *measured* cardinalities of this run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.algebra.builder import Query
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.engine import operators
from repro.engine.costmodel import cost_plan
from repro.engine.metrics import ClusterConfig, PlanCost
from repro.engine.table import Database, Table
from repro.errors import PlanError

__all__ = ["ExecutionResult", "Executor"]


@dataclass
class ExecutionResult:
    """The answer table plus the cluster-model cost of producing it."""

    table: Table
    cost: PlanCost
    cardinalities: Dict[int, int]

    @property
    def answer(self) -> Table:
        return self.table


class Executor:
    """Executes logical plans against a :class:`Database`."""

    def __init__(self, database: Database, config: Optional[ClusterConfig] = None):
        self.database = database
        self.config = config or ClusterConfig()

    def execute(self, query) -> ExecutionResult:
        """Run a :class:`Query` or bare plan node; returns answer + cost."""
        plan = query.plan if isinstance(query, Query) else query
        cardinalities: Dict[int, int] = {}
        table = self._run(plan, cardinalities)
        cost = cost_plan(plan, lambda node: cardinalities[id(node)], self.config)
        return ExecutionResult(table=table, cost=cost, cardinalities=cardinalities)

    def _run(self, node: LogicalNode, cardinalities: Dict[int, int]) -> Table:
        table = self._dispatch(node, cardinalities)
        cardinalities[id(node)] = table.num_rows
        return table

    def _dispatch(self, node: LogicalNode, cardinalities: Dict[int, int]) -> Table:
        if isinstance(node, Scan):
            base = self.database.table(node.table)
            return base.project(node.output_columns())
        if isinstance(node, Select):
            return operators.execute_select(self._run(node.child, cardinalities), node.predicate)
        if isinstance(node, Project):
            return operators.execute_project(self._run(node.child, cardinalities), node.mapping)
        if isinstance(node, SamplerNode):
            child = self._run(node.child, cardinalities)
            spec = node.spec
            if not hasattr(spec, "apply"):
                raise PlanError(
                    f"sampler spec {spec!r} is logical; run ASALQA costing to obtain a physical plan"
                )
            return spec.apply(child)
        if isinstance(node, Join):
            left = self._run(node.left, cardinalities)
            right = self._run(node.right, cardinalities)
            return operators.execute_join(left, right, node.left_keys, node.right_keys, node.how)
        if isinstance(node, Aggregate):
            child = self._run(node.child, cardinalities)
            return operators.execute_aggregate(
                child,
                node.group_by,
                node.aggs,
                compute_ci=getattr(node, "compute_ci", False),
                universe_rescale=getattr(node, "universe_rescale", None),
                universe_variance=getattr(node, "universe_variance", None),
            )
        if isinstance(node, OrderBy):
            return operators.execute_orderby(self._run(node.child, cardinalities), node.keys, node.descending)
        if isinstance(node, Limit):
            return operators.execute_limit(self._run(node.child, cardinalities), node.n)
        if isinstance(node, UnionAll):
            tables = [self._run(child, cardinalities) for child in node.children]
            return operators.execute_union_all(tables)
        raise PlanError(f"executor cannot handle node {type(node).__name__}")
