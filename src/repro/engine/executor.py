"""Plan executor: compiles and runs (possibly sampled) logical plans.

Execution is a two-step service: :meth:`Executor.compile` lowers the
logical tree into a :class:`~repro.engine.physical.PhysicalPlan` (stable
node addresses, lineage assignment, operator pipeline — see
:mod:`repro.engine.physical`), and the compiled plan executes iteratively.
Compiled plans are cached in a fingerprint-keyed LRU, so repeated queries —
the experiment runner's per-trial re-executions, warm production traffic —
pay compilation once. Pass ``parallelism=N`` to run partition-parallel
through :class:`repro.parallel.ParallelExecutor` (the paper's deployment
mode — samplers are single-pass, bounded-memory and partitionable,
Section 4.1).

Every operator's input and output cardinalities are recorded, keyed by the
operator's structural address, and replayed through the stage-based cluster
cost model (:mod:`repro.engine.costmodel`), yielding the metrics the paper
reports — machine-hours, runtime, shuffled data, intermediate data and
effective passes — for the *measured* cardinalities of this run.

The compiled plan attaches a reserved lineage column per scan occurrence
(the base-row position). Lineage gives each intermediate row a stable
identity across any partitioning of the input, which makes the uniform
sampler's decisions counter-based (identical serial or parallel) and lets
the parallel merge restore exact serial row order. Lineage is stripped from
final answers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Optional, Tuple

from repro.algebra.addressing import NodeAddress, format_address, plan_fingerprint
from repro.algebra.builder import Query
from repro.algebra.logical import LogicalNode
from repro.engine.costmodel import cost_plan
from repro.engine.metrics import ClusterConfig, FaultToleranceStats, ParallelMetrics, PlanCost
from repro.engine.physical import OperatorMetrics, PhysicalPlan, PlanCache, compile_plan
from repro.engine.table import Database, Table
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.obs.registry import MetricsRegistry

_LOG = obs_log.logger("engine.executor")

__all__ = ["ExecutionResult", "PartialResult", "Executor"]


@dataclass
class ExecutionResult:
    """The answer table plus the cluster-model cost of producing it."""

    table: Table
    cost: PlanCost
    #: Output rows per operator, keyed by the operator's structural address.
    cardinalities: Dict[NodeAddress, int]
    #: Measured wall-clock of the execution (seconds); None when not timed.
    wall_clock_seconds: Optional[float] = None
    #: Populated by the parallel executor: partitioning strategy, worker
    #: timings, modeled and measured speedup.
    parallel: Optional[ParallelMetrics] = None
    #: Time spent compiling (or fetching the compiled plan); None untimed.
    compile_seconds: Optional[float] = None
    #: Whether the compiled plan came from the executor's plan cache.
    plan_cache_hit: bool = False
    #: Per-operator rows-in/rows-out and wall time, in execution order.
    operators: Tuple[OperatorMetrics, ...] = ()

    @property
    def answer(self) -> Table:
        return self.table

    @property
    def degraded(self) -> bool:
        """True when the answer was computed over a strict subset of the
        data because partitions were permanently lost (see
        :class:`PartialResult`)."""
        return False


@dataclass
class PartialResult(ExecutionResult):
    """An answer computed over surviving partitions only.

    Returned by the parallel executor when a partition exhausted its retry
    budget but the plan roots in a uniform or universe sampler: the
    surviving partitions are themselves a valid sample of the data, so the
    Horvitz-Thompson weights are re-scaled by ``num_partitions /
    survivors`` and the estimates stay unbiased with correspondingly
    widened confidence intervals — instead of failing the query. ``coverage``
    is the achieved fraction of partitions (and, in expectation, of data)
    the answer is based on.
    """

    #: Partitions whose tasks permanently failed.
    lost_partitions: Tuple[int, ...] = ()
    #: Fraction of partitions that survived, in (0, 1).
    coverage: float = 1.0
    #: Horvitz-Thompson weight multiplier applied to surviving rows
    #: (``1 / coverage``).
    reweight_factor: float = 1.0
    #: Governance reason code (``"deadline"`` / ``"budget"``) when the
    #: partition loss was a governed mid-flight abort salvaged into
    #: survivors-so-far; None when partitions were lost to faults.
    abort_reason: Optional[str] = None

    @property
    def degraded(self) -> bool:
        return True


class Executor:
    """Compiles and executes logical plans against a :class:`Database`.

    Parameters
    ----------
    database:
        Catalog of base tables.
    config:
        Cluster cost-model knobs.
    parallelism:
        Degree of partition parallelism. ``1`` (default) runs serially;
        ``N > 1`` routes execution through
        :class:`repro.parallel.ParallelExecutor` with ``N`` partitions.
    parallel_options:
        Optional :class:`repro.parallel.ParallelOptions` forwarded to the
        parallel executor (pool mode, merge mode, partition strategy).
    attach_rowids:
        Attach per-scan lineage columns during execution (default True).
        Lineage is what makes uniform-sampler decisions partition-invariant;
        disabling it restores purely positional randomness.
    plan_cache_size:
        Capacity of the fingerprint-keyed compiled-plan LRU (0 disables
        caching).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` every layer
        below this executor records into (plan-cache traffic, compile vs.
        execute time, per-sampler telemetry, parallel fault counters). A
        fresh private registry is created when omitted.
    morsel_rows:
        Batch size for fused streamable chains, forwarded to
        :meth:`PhysicalPlan.execute` (None = engine default, 0 disables
        morsel-driven execution).
    """

    def __init__(
        self,
        database: Database,
        config: Optional[ClusterConfig] = None,
        parallelism: int = 1,
        parallel_options=None,
        attach_rowids: bool = True,
        plan_cache_size: int = 128,
        registry: Optional[MetricsRegistry] = None,
        morsel_rows: Optional[int] = None,
    ):
        self.database = database
        self.config = config or ClusterConfig()
        self.parallelism = int(parallelism)
        self.parallel_options = parallel_options
        self.attach_rowids = bool(attach_rowids)
        self.morsel_rows = morsel_rows
        self.plan_cache = PlanCache(capacity=int(plan_cache_size))
        self.compile_seconds = 0.0
        self.execute_seconds = 0.0
        self.registry = registry if registry is not None else MetricsRegistry()
        self._cache_seen = {"hits": 0, "misses": 0, "evictions": 0}
        self._parallel = None
        # Guards the executor's own mutable statistics (cumulative
        # compile/execute seconds, plan-cache absorption watermark, lazy
        # parallel-executor init). Execution itself is stateless per run —
        # compiled plans hold no run state and samplers re-derive their
        # randomness per call — so one Executor serves concurrent threads;
        # only this bookkeeping needs serializing.
        self._stats_lock = threading.Lock()

    # -- compilation ----------------------------------------------------------
    def compile(self, plan: LogicalNode) -> Tuple[PhysicalPlan, bool]:
        """Compiled plan for ``plan`` plus whether it was a cache hit.

        The cache key is the canonical fingerprint, so a structurally
        equivalent plan (e.g. commuted inner-join inputs) reuses the cached
        compilation of its canonical representative.
        """
        plan = plan.plan if isinstance(plan, Query) else plan
        fingerprint = plan_fingerprint(plan)
        cached = self.plan_cache.get(fingerprint)
        if cached is not None and cached.attach_rowids == self.attach_rowids:
            return cached, True
        physical = compile_plan(plan, attach_rowids=self.attach_rowids, fingerprint=fingerprint)
        self.plan_cache.put(fingerprint, physical)
        return physical, False

    def _compile_exact(self, plan: LogicalNode) -> PhysicalPlan:
        """Like :meth:`compile`, but guarantees the compiled plan's node
        addresses match ``plan``'s exact structure (not a commuted cache
        representative) — required when the caller keys overrides by
        address."""
        physical, hit = self.compile(plan)
        if hit and physical.logical.key() != plan.key():
            physical = compile_plan(
                plan, attach_rowids=self.attach_rowids, fingerprint=physical.fingerprint
            )
        return physical

    # -- execution ------------------------------------------------------------
    def execute(self, query, governance=None) -> ExecutionResult:
        """Run a :class:`Query` or bare plan node; returns answer + cost.

        ``governance`` (a :class:`~repro.engine.governance.GovernanceContext`)
        makes the run cancellable/deadlined/memory-budgeted: it is checked
        at every operator and morsel boundary (serially) or task boundary
        (parallel) and raises the typed
        :class:`~repro.errors.GovernanceError` when violated.
        """
        if self.parallelism > 1:
            return self._parallel_executor().execute(query, governance=governance)
        plan = query.plan if isinstance(query, Query) else query
        tracer = obs_trace.current_tracer()

        t0 = perf_counter()
        if tracer is not None:
            with tracer.span("query.compile"):
                physical, cache_hit = self.compile(plan)
        else:
            physical, cache_hit = self.compile(plan)
        compile_s = perf_counter() - t0
        with self._stats_lock:
            self.compile_seconds += compile_s
        _LOG.debug(
            "compiled plan %s in %.4fs (cache %s)",
            physical.fingerprint[:12], compile_s, "hit" if cache_hit else "miss",
        )

        t0 = perf_counter()
        if tracer is not None:
            with tracer.span(
                "query.execute",
                fingerprint=physical.fingerprint[:12],
                cache_hit=cache_hit,
                operators=physical.num_operators,
            ):
                table, cardinalities, op_metrics = physical.execute(
                    self.database, record_metrics=True, tracer=tracer,
                    morsel_rows=self.morsel_rows, governance=governance,
                )
        else:
            table, cardinalities, op_metrics = physical.execute(
                self.database, record_metrics=True, morsel_rows=self.morsel_rows,
                governance=governance,
            )
        execute_s = perf_counter() - t0
        with self._stats_lock:
            self.execute_seconds += execute_s
        self._record_run(physical.fingerprint, compile_s, execute_s, cache_hit, op_metrics)

        # Cost the compiled logical tree: on a canonical cache hit its
        # addresses (not necessarily the submitted object's) key the
        # cardinalities.
        cost = cost_plan(
            physical.logical, lambda node, address: cardinalities[address], self.config
        )
        return ExecutionResult(
            table=table.drop_lineage(),
            cost=cost,
            cardinalities=cardinalities,
            wall_clock_seconds=execute_s,
            compile_seconds=compile_s,
            plan_cache_hit=cache_hit,
            operators=op_metrics,
        )

    def run_plan(
        self,
        plan: LogicalNode,
        overrides: Optional[Dict[NodeAddress, Table]] = None,
        should_abort: Optional[Callable[[], bool]] = None,
        governance=None,
    ) -> Tuple[Table, Dict[NodeAddress, int]]:
        """Run a plan, returning the raw result (lineage intact) and the
        per-address cardinalities.

        ``overrides`` maps a node address to a table: that subtree is not
        executed and the given table is used as its output. The parallel
        executor uses this to run the merged partition result through the
        serial successor (aggregation and above). Override addresses refer
        to ``plan``'s own structure, so the compiled plan is guaranteed to
        share it. ``should_abort`` is the cooperative-cancellation poll
        forwarded to :meth:`PhysicalPlan.execute` (parallel workers use it
        to stop speculative losers early); ``governance`` adds the typed
        deadline/budget/cancel checks at the same boundaries.
        """
        t0 = perf_counter()
        if overrides:
            physical = self._compile_exact(plan)
        else:
            physical, _ = self.compile(plan)
        with self._stats_lock:
            self.compile_seconds += perf_counter() - t0

        t0 = perf_counter()
        table, cardinalities, _ = physical.execute(
            self.database,
            overrides=overrides,
            should_abort=should_abort,
            tracer=obs_trace.current_tracer(),
            morsel_rows=self.morsel_rows,
            governance=governance,
        )
        with self._stats_lock:
            self.execute_seconds += perf_counter() - t0
        return table, cardinalities

    # -- reporting ------------------------------------------------------------
    def _record_run(
        self,
        fingerprint: str,
        compile_s: float,
        execute_s: float,
        cache_hit: bool,
        op_metrics: Tuple[OperatorMetrics, ...],
    ) -> None:
        """Fold one serial run into the metrics registry."""
        registry = self.registry
        registry.counter("executor.queries").inc()
        registry.histogram("executor.compile_seconds").observe(compile_s)
        registry.histogram("executor.execute_seconds").observe(execute_s)
        morsels = sum(op.morsels for op in op_metrics)
        if morsels:
            registry.counter("memory.morsels_executed").inc(morsels)
        self._absorb_memory_gauges()
        self._absorb_plan_cache()
        short = fingerprint[:12]
        for op in op_metrics:
            if op.sampler is None:
                continue
            labels = {
                "plan": short,
                "address": format_address(op.address),
                "kind": op.sampler["kind"],
            }
            registry.counter("sampler.rows_in", **labels).inc(op.rows_in)
            registry.counter("sampler.rows_out", **labels).inc(op.rows_out)
            registry.gauge("sampler.weight_mass", **labels).set(op.sampler["weight_mass"])
            registry.gauge("sampler.effective_rate", **labels).set(
                op.sampler["effective_rate"]
            )
            registry.gauge("sampler.target_p", **labels).set(op.sampler["target_p"])

    def _absorb_memory_gauges(self) -> None:
        """Refresh the ``memory.*`` gauges from the shared-memory arena."""
        from repro.memory import memory_stats

        stats = memory_stats()
        self.registry.gauge("memory.live_segments").set(stats["segments"])
        self.registry.gauge("memory.bytes_mapped").set(stats["bytes_mapped"])

    def _absorb_plan_cache(self) -> None:
        """Forward plan-cache counter deltas into the registry (the cache
        keeps its own monotonic counts; the registry gets the increments so
        ``reset()`` establishes a clean harvest boundary)."""
        stats = self.plan_cache.stats()
        with self._stats_lock:
            deltas = {}
            for key in ("hits", "misses", "evictions"):
                deltas[key] = stats[key] - self._cache_seen[key]
                self._cache_seen[key] = stats[key]
        for key, delta in deltas.items():
            if delta:
                self.registry.counter(f"plan_cache.{key}").inc(delta)

    def timings(self) -> dict:
        """Cumulative compile/execute split and plan-cache statistics."""
        out = {
            "compile_seconds": self.compile_seconds,
            "execute_seconds": self.execute_seconds,
            "plan_cache": self.plan_cache.stats(),
        }
        if self._parallel is not None:
            serial = self._parallel.serial_executor
            out["compile_seconds"] += serial.compile_seconds
            out["execute_seconds"] += serial.execute_seconds
            for key, value in serial.plan_cache.stats().items():
                if key != "capacity":
                    out["plan_cache"][key] += value
            out["fault_tolerance"] = self._parallel.stats.summary()
        return out

    def snapshot(self) -> dict:
        """One JSON-able view of everything this executor measured: the
        legacy ``timings()`` block plus the full metrics registry."""
        self._absorb_plan_cache()
        self._absorb_memory_gauges()
        if self._parallel is not None:
            self._parallel.serial_executor._absorb_plan_cache()
        return {"timings": self.timings(), "metrics": self.registry.snapshot()}

    def reset_metrics(self) -> dict:
        """Zero every statistic while keeping caches warm.

        Returns the final pre-reset snapshot. This is the harvest boundary
        benchmarks need: a warm-up pass primes the plan caches, then
        ``reset_metrics()`` guarantees the measured pass's counters start
        from zero instead of bleeding across phases.
        """
        final = {"timings": self.timings()}
        self.compile_seconds = 0.0
        self.execute_seconds = 0.0
        self.plan_cache.reset_stats()
        self._cache_seen = {"hits": 0, "misses": 0, "evictions": 0}
        # The registry harvest is the atomic drain, not snapshot-then-zero:
        # a counter increment racing this call lands either in the snapshot
        # returned here or in the next one, never in neither.
        final["metrics"] = self.registry.reset()
        if self._parallel is not None:
            serial = self._parallel.serial_executor
            serial.compile_seconds = 0.0
            serial.execute_seconds = 0.0
            serial.plan_cache.reset_stats()
            serial._cache_seen = {"hits": 0, "misses": 0, "evictions": 0}
            self._parallel.stats = FaultToleranceStats()
        return final

    def _parallel_executor(self):
        if self._parallel is None:
            from repro.parallel.executor import ParallelExecutor

            with self._stats_lock:
                if self._parallel is None:
                    self._parallel = ParallelExecutor(
                        self.database,
                        self.config,
                        parallelism=self.parallelism,
                        options=self.parallel_options,
                        registry=self.registry,
                    )
        return self._parallel
