"""Plan executor: runs a (possibly sampled) logical plan over a database.

Execution is vectorized and, by default, single-process; pass
``parallelism=N`` to run partition-parallel through
:class:`repro.parallel.ParallelExecutor` (the paper's deployment mode —
samplers are single-pass, bounded-memory and partitionable, Section 4.1).
Every operator's input and output cardinalities are recorded and replayed
through the stage-based cluster cost model (:mod:`repro.engine.costmodel`),
yielding the metrics the paper reports — machine-hours, runtime, shuffled
data, intermediate data and effective passes — for the *measured*
cardinalities of this run.

The executor attaches a reserved lineage column per scan (the base-row
position). Lineage gives each intermediate row a stable identity across any
partitioning of the input, which makes the uniform sampler's decisions
counter-based (identical serial or parallel) and lets the parallel merge
restore exact serial row order. Lineage is stripped from final answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.algebra.builder import Query
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.engine import operators
from repro.engine.costmodel import cost_plan
from repro.engine.metrics import ClusterConfig, ParallelMetrics, PlanCost
from repro.engine.table import Database, Table, rowid_column_name
from repro.errors import PlanError

__all__ = ["ExecutionResult", "Executor", "scan_indices"]


def scan_indices(plan: LogicalNode) -> Dict[int, int]:
    """Map ``id(scan_node) -> pre-order scan index`` for lineage naming.

    Returns an empty map (disabling lineage) if any Scan *object* appears
    more than once in the tree — identical objects on both sides of a join
    would collide on lineage column names.
    """
    indices: Dict[int, int] = {}
    for node in plan.walk():
        if isinstance(node, Scan):
            if id(node) in indices:
                return {}
            indices[id(node)] = len(indices)
    return indices


@dataclass
class ExecutionResult:
    """The answer table plus the cluster-model cost of producing it."""

    table: Table
    cost: PlanCost
    cardinalities: Dict[int, int]
    #: Measured wall-clock of the execution (seconds); None when not timed.
    wall_clock_seconds: Optional[float] = None
    #: Populated by the parallel executor: partitioning strategy, worker
    #: timings, modeled and measured speedup.
    parallel: Optional[ParallelMetrics] = None

    @property
    def answer(self) -> Table:
        return self.table


class Executor:
    """Executes logical plans against a :class:`Database`.

    Parameters
    ----------
    database:
        Catalog of base tables.
    config:
        Cluster cost-model knobs.
    parallelism:
        Degree of partition parallelism. ``1`` (default) runs serially;
        ``N > 1`` routes execution through
        :class:`repro.parallel.ParallelExecutor` with ``N`` partitions.
    parallel_options:
        Optional :class:`repro.parallel.ParallelOptions` forwarded to the
        parallel executor (pool mode, merge mode, partition strategy).
    attach_rowids:
        Attach per-scan lineage columns during execution (default True).
        Lineage is what makes uniform-sampler decisions partition-invariant;
        disabling it restores purely positional randomness.
    """

    def __init__(
        self,
        database: Database,
        config: Optional[ClusterConfig] = None,
        parallelism: int = 1,
        parallel_options=None,
        attach_rowids: bool = True,
    ):
        self.database = database
        self.config = config or ClusterConfig()
        self.parallelism = int(parallelism)
        self.parallel_options = parallel_options
        self.attach_rowids = bool(attach_rowids)
        self._parallel = None
        self._scan_indices: Dict[int, int] = {}

    def execute(self, query) -> ExecutionResult:
        """Run a :class:`Query` or bare plan node; returns answer + cost."""
        if self.parallelism > 1:
            return self._parallel_executor().execute(query)
        plan = query.plan if isinstance(query, Query) else query
        table, cardinalities = self.run_plan(plan)
        cost = cost_plan(plan, lambda node: cardinalities[id(node)], self.config)
        return ExecutionResult(table=table.drop_lineage(), cost=cost, cardinalities=cardinalities)

    def run_plan(
        self, plan: LogicalNode, overrides: Optional[Dict[int, Table]] = None
    ) -> Tuple[Table, Dict[int, int]]:
        """Run a plan, returning the raw result (lineage intact) and the
        per-node cardinalities.

        ``overrides`` maps ``id(node) -> Table``: when a node is found in the
        map its subtree is not executed and the given table is used as its
        output. The parallel executor uses this to run the merged partition
        result through the serial successor (aggregation and above).
        """
        cardinalities: Dict[int, int] = {}
        self._scan_indices = scan_indices(plan) if self.attach_rowids else {}
        table = self._run(plan, cardinalities, overrides)
        return table, cardinalities

    def _parallel_executor(self):
        if self._parallel is None:
            from repro.parallel.executor import ParallelExecutor

            self._parallel = ParallelExecutor(
                self.database,
                self.config,
                parallelism=self.parallelism,
                options=self.parallel_options,
            )
        return self._parallel

    def _run(
        self,
        node: LogicalNode,
        cardinalities: Dict[int, int],
        overrides: Optional[Dict[int, Table]] = None,
    ) -> Table:
        if overrides and id(node) in overrides:
            table = overrides[id(node)]
        else:
            table = self._dispatch(node, cardinalities, overrides)
        cardinalities[id(node)] = table.num_rows
        return table

    def _dispatch(
        self,
        node: LogicalNode,
        cardinalities: Dict[int, int],
        overrides: Optional[Dict[int, Table]] = None,
    ) -> Table:
        if isinstance(node, Scan):
            base = self.database.table(node.table)
            out = base.project(node.output_columns())
            index = self._scan_indices.get(id(node))
            if index is not None and not out.has_lineage():
                out = out.with_columns(
                    {rowid_column_name(index): np.arange(out.num_rows, dtype=np.int64)}
                )
            return out
        if isinstance(node, Select):
            return operators.execute_select(
                self._run(node.child, cardinalities, overrides), node.predicate
            )
        if isinstance(node, Project):
            return operators.execute_project(
                self._run(node.child, cardinalities, overrides), node.mapping
            )
        if isinstance(node, SamplerNode):
            child = self._run(node.child, cardinalities, overrides)
            spec = node.spec
            if not hasattr(spec, "apply"):
                raise PlanError(
                    f"sampler spec {spec!r} is logical; run ASALQA costing to obtain a physical plan"
                )
            return spec.apply(child)
        if isinstance(node, Join):
            left = self._run(node.left, cardinalities, overrides)
            right = self._run(node.right, cardinalities, overrides)
            return operators.execute_join(left, right, node.left_keys, node.right_keys, node.how)
        if isinstance(node, Aggregate):
            child = self._run(node.child, cardinalities, overrides)
            return operators.execute_aggregate(
                child,
                node.group_by,
                node.aggs,
                compute_ci=getattr(node, "compute_ci", False),
                universe_rescale=getattr(node, "universe_rescale", None),
                universe_variance=getattr(node, "universe_variance", None),
            )
        if isinstance(node, OrderBy):
            return operators.execute_orderby(
                self._run(node.child, cardinalities, overrides), node.keys, node.descending
            )
        if isinstance(node, Limit):
            return operators.execute_limit(self._run(node.child, cardinalities, overrides), node.n)
        if isinstance(node, UnionAll):
            tables = [self._run(child, cardinalities, overrides) for child in node.children]
            return operators.execute_union_all(tables)
        raise PlanError(f"executor cannot handle node {type(node).__name__}")
