"""Columnar in-memory tables and the database they live in.

A :class:`Table` is a named, ordered collection of equal-length NumPy
columns. It is the unit of data flowing through the executor: base tables,
intermediate relations and query answers are all Tables. The reserved
column ``WEIGHT_COLUMN`` carries Horvitz-Thompson inverse inclusion
probabilities once a sampler has run; it is never part of the logical
schema.

:class:`Database` is the catalog of base tables plus their statistics
(collected lazily, mirroring the paper's "computed by the first query that
touches the dataset").
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CatalogError, SchemaError

__all__ = ["WEIGHT_COLUMN", "Table", "Database"]

#: Reserved name for the sampler weight column (paper Section 4.1: "each
#: sampler appends a metadata column representing the weight of the row").
WEIGHT_COLUMN = "__w__"


class Table:
    """An immutable-by-convention columnar table."""

    __slots__ = ("name", "_columns", "num_rows")

    def __init__(self, name: str, columns: Mapping[str, np.ndarray]):
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self._columns: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for col_name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise SchemaError(f"column {col_name!r} of {name!r} must be 1-D")
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise SchemaError(
                    f"column {col_name!r} of {name!r} has {arr.shape[0]} rows, expected {length}"
                )
            self._columns[col_name] = arr
        self.num_rows = int(length or 0)

    # -- schema ----------------------------------------------------------------
    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self._columns.keys())

    def data_column_names(self) -> Tuple[str, ...]:
        """Column names excluding the reserved weight column."""
        return tuple(c for c in self._columns if c != WEIGHT_COLUMN)

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def has_weights(self) -> bool:
        return WEIGHT_COLUMN in self._columns

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def weights(self) -> np.ndarray:
        """Per-row HT weights; all-ones if no sampler has run."""
        if self.has_weights():
            return self._columns[WEIGHT_COLUMN]
        return np.ones(self.num_rows)

    # -- construction helpers ----------------------------------------------------
    def with_columns(self, new_columns: Mapping[str, np.ndarray], name: Optional[str] = None) -> "Table":
        merged = dict(self._columns)
        merged.update(new_columns)
        return Table(name or self.name, merged)

    def rename_columns(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Table":
        renamed = {mapping.get(col, col): arr for col, arr in self._columns.items()}
        return Table(name or self.name, renamed)

    def project(self, names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Keep only the given columns, preserving the weight column."""
        out = {n: self.column(n) for n in names}
        if self.has_weights() and WEIGHT_COLUMN not in out:
            out[WEIGHT_COLUMN] = self._columns[WEIGHT_COLUMN]
        return Table(name or self.name, out)

    def take(self, selector: np.ndarray, name: Optional[str] = None) -> "Table":
        """Row subset by boolean mask or index array."""
        return Table(name or self.name, {c: arr[selector] for c, arr in self._columns.items()})

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)))

    def sort_by(self, keys: Sequence[str], descending: bool = False) -> "Table":
        order = np.lexsort([self.column(k) for k in reversed(keys)])
        if descending:
            order = order[::-1]
        return self.take(order)

    def partition(self, num_partitions: int) -> list:
        """Round-robin split into ``num_partitions`` tables (parallel input)."""
        if num_partitions <= 1 or self.num_rows == 0:
            return [self]
        idx = np.arange(self.num_rows)
        return [self.take(idx[p::num_partitions]) for p in range(num_partitions)]

    @staticmethod
    def concat(tables: Sequence["Table"], name: Optional[str] = None) -> "Table":
        """Vertical concatenation of tables with identical schemas."""
        if not tables:
            raise SchemaError("cannot concatenate zero tables")
        first = tables[0]
        schema = first.column_names
        for other in tables[1:]:
            if set(other.column_names) != set(schema):
                raise SchemaError(f"schema mismatch in concat: {schema} vs {other.column_names}")
        columns = {c: np.concatenate([t.column(c) for t in tables]) for c in schema}
        return Table(name or first.name, columns)

    @staticmethod
    def from_rows(name: str, column_names: Sequence[str], rows: Iterable[tuple]) -> "Table":
        """Build from an iterable of row tuples (used by streaming samplers)."""
        materialized = list(rows)
        if materialized:
            arrays = [np.asarray(col) for col in zip(*materialized)]
        else:
            arrays = [np.asarray([]) for _ in column_names]
        return Table(name, dict(zip(column_names, arrays)))

    def iter_rows(self) -> Iterable[tuple]:
        """Yield rows as tuples in column order (streaming-sampler input)."""
        arrays = list(self._columns.values())
        for i in range(self.num_rows):
            yield tuple(arr[i] for arr in arrays)

    def to_dict(self) -> Dict[str, np.ndarray]:
        return dict(self._columns)

    def estimated_bytes(self) -> int:
        """Approximate in-memory footprint, used as the 'data size' metric."""
        return int(sum(arr.nbytes for arr in self._columns.values()))

    def __repr__(self):
        return f"Table({self.name!r}, rows={self.num_rows}, cols={list(self._columns)})"


class Database:
    """Catalog of named base tables."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}

    def register(self, table: Table) -> None:
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r} in database") from None

    def columns(self, name: str) -> Tuple[str, ...]:
        return self.table(name).data_column_names()

    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables.keys())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def total_rows(self) -> int:
        return sum(t.num_rows for t in self._tables.values())

    def total_bytes(self) -> int:
        return sum(t.estimated_bytes() for t in self._tables.values())

    def __repr__(self):
        return f"Database({list(self._tables)})"
