"""Columnar in-memory tables and the database they live in.

A :class:`Table` is a named, ordered collection of equal-length NumPy
columns. It is the unit of data flowing through the executor: base tables,
intermediate relations and query answers are all Tables. The reserved
column ``WEIGHT_COLUMN`` carries Horvitz-Thompson inverse inclusion
probabilities once a sampler has run; it is never part of the logical
schema.

:class:`Database` is the catalog of base tables plus their statistics
(collected lazily, mirroring the paper's "computed by the first query that
touches the dataset").
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CatalogError, SchemaError

__all__ = ["WEIGHT_COLUMN", "ROWID_PREFIX", "rowid_column_name", "Table", "Database"]

#: Reserved name for the sampler weight column (paper Section 4.1: "each
#: sampler appends a metadata column representing the weight of the row").
WEIGHT_COLUMN = "__w__"

#: Prefix of the reserved row-lineage columns attached by the executor at
#: each scan. Lineage gives every intermediate row a stable identity (the
#: positions of its contributing base rows), which is what lets the parallel
#: executor (:mod:`repro.parallel`) (a) drive counter-based samplers that
#: make identical per-row decisions no matter how the input is partitioned
#: and (b) restore the exact serial row order when merging partition outputs.
ROWID_PREFIX = "__rid"


def rowid_column_name(scan_index: int) -> str:
    """Lineage column name for the ``scan_index``-th scan (pre-order).

    Names are zero-padded so that lexicographically sorting the lineage
    column names of any intermediate table yields pre-order scan order —
    which is exactly the significance order for reconstructing serial row
    order (a join emits rows in (left position, right position) order, and
    pre-order visits left scans before right scans).
    """
    return f"{ROWID_PREFIX}{scan_index:03d}__"


class Table:
    """An immutable-by-convention columnar table.

    Ownership/pinning contract for buffer-backed tables: a table built by
    :meth:`from_ref` holds zero-copy views into a shared-memory segment.
    The views themselves pin the underlying mapping (NumPy keeps the
    exported buffer alive), and ``_pin`` records the :class:`TableRef` the
    table came from so callers can tell a borrowed table from an owning
    one. Releasing the segment while such a table is alive is safe — the
    mapping survives until the last view dies — but the *name* is gone, so
    the ref must not be re-shared after release.
    """

    __slots__ = ("name", "_columns", "num_rows", "_pin")

    def __init__(self, name: str, columns: Mapping[str, np.ndarray]):
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self._pin = None
        self._columns: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for col_name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise SchemaError(f"column {col_name!r} of {name!r} must be 1-D")
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise SchemaError(
                    f"column {col_name!r} of {name!r} has {arr.shape[0]} rows, expected {length}"
                )
            self._columns[col_name] = arr
        self.num_rows = int(length or 0)

    # -- schema ----------------------------------------------------------------
    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self._columns.keys())

    def data_column_names(self) -> Tuple[str, ...]:
        """Column names excluding the reserved weight and lineage columns."""
        return tuple(
            c for c in self._columns if c != WEIGHT_COLUMN and not c.startswith(ROWID_PREFIX)
        )

    def lineage_column_names(self) -> Tuple[str, ...]:
        """Reserved lineage columns in significance order (see
        :func:`rowid_column_name`)."""
        return tuple(sorted(c for c in self._columns if c.startswith(ROWID_PREFIX)))

    def has_lineage(self) -> bool:
        return any(c.startswith(ROWID_PREFIX) for c in self._columns)

    def lineage_columns(self) -> Tuple[np.ndarray, ...]:
        """Lineage value arrays in significance order."""
        return tuple(self._columns[c] for c in self.lineage_column_names())

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def has_weights(self) -> bool:
        return WEIGHT_COLUMN in self._columns

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def weights(self) -> np.ndarray:
        """Per-row HT weights; all-ones if no sampler has run."""
        if self.has_weights():
            return self._columns[WEIGHT_COLUMN]
        return np.ones(self.num_rows)

    # -- construction helpers ----------------------------------------------------
    def with_columns(self, new_columns: Mapping[str, np.ndarray], name: Optional[str] = None) -> "Table":
        merged = dict(self._columns)
        merged.update(new_columns)
        return Table(name or self.name, merged)

    def rename_columns(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Table":
        renamed = {mapping.get(col, col): arr for col, arr in self._columns.items()}
        return Table(name or self.name, renamed)

    def project(self, names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Keep only the given columns, preserving weight/lineage columns."""
        out = {n: self.column(n) for n in names}
        if self.has_weights() and WEIGHT_COLUMN not in out:
            out[WEIGHT_COLUMN] = self._columns[WEIGHT_COLUMN]
        for lineage in self.lineage_column_names():
            if lineage not in out:
                out[lineage] = self._columns[lineage]
        return Table(name or self.name, out)

    def drop_columns(self, names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Remove the given columns (missing names are ignored)."""
        doomed = set(names)
        kept = {c: arr for c, arr in self._columns.items() if c not in doomed}
        return Table(name or self.name, kept)

    def drop_lineage(self) -> "Table":
        """Remove all reserved lineage columns (no-op if none present)."""
        if not self.has_lineage():
            return self
        return self.drop_columns(self.lineage_column_names())

    def take(self, selector: np.ndarray, name: Optional[str] = None) -> "Table":
        """Row subset by boolean mask or index array."""
        return Table(name or self.name, {c: arr[selector] for c, arr in self._columns.items()})

    def slice(self, start: int, stop: int, name: Optional[str] = None) -> "Table":
        """Zero-copy contiguous row range ``[start, stop)``.

        Basic slicing never copies, so the result's columns are views into
        this table's buffers (the morsel driver's unit of execution).
        """
        out = Table.__new__(Table)
        out.name = name or self.name
        out._pin = self._pin
        out._columns = {c: arr[start:stop] for c, arr in self._columns.items()}
        out.num_rows = int(next(iter(out._columns.values())).shape[0])
        return out

    def head(self, n: int) -> "Table":
        return self.slice(0, min(n, self.num_rows))

    def sort_by(self, keys: Sequence[str], descending: bool = False) -> "Table":
        order = np.lexsort([self.column(k) for k in reversed(keys)])
        if descending:
            order = order[::-1]
        return self.take(order)

    def partition(
        self,
        num_partitions: int,
        by: Optional[Sequence[str]] = None,
        seed: int = 0,
    ) -> list:
        """Split into ``num_partitions`` tables (parallel input).

        With ``by=None`` the split is round-robin on row position. With
        ``by=[columns...]`` rows are hash-partitioned on the named column
        set: every row whose key tuple hashes to partition ``p`` lands in
        partition ``p``, so equal keys always share a partition. That is the
        property co-partitioned joins and stratification-aligned distinct
        samplers need. All reserved columns (``__w__`` weights, ``__rid*``
        lineage) ride along unchanged, preserving the Horvitz-Thompson
        weight invariant across the split.
        """
        if num_partitions <= 1 or self.num_rows == 0:
            return [self]
        if by is None:
            idx = np.arange(self.num_rows)
            return [self.take(idx[p::num_partitions]) for p in range(num_partitions)]
        assignments = self.partition_assignments(by, num_partitions, seed)
        return [self.take(assignments == p) for p in range(num_partitions)]

    def partition_assignments(
        self, by: Sequence[str], num_partitions: int, seed: int = 0
    ) -> np.ndarray:
        """Per-row hash-partition assignment in ``[0, num_partitions)``."""
        if not by:
            raise SchemaError("hash partitioning requires at least one column")
        # Local import: repro.samplers.hashing is a leaf module, but its
        # package __init__ imports this module, so a top-level import cycles.
        from repro.samplers.hashing import hash_columns

        hashes = hash_columns([self.column(c) for c in by], seed)
        return (hashes % np.uint64(num_partitions)).astype(np.int64)

    @staticmethod
    def concat(tables: Sequence["Table"], name: Optional[str] = None) -> "Table":
        """Vertical concatenation of tables with identical schemas."""
        if not tables:
            raise SchemaError("cannot concatenate zero tables")
        first = tables[0]
        schema = first.column_names
        for other in tables[1:]:
            if set(other.column_names) != set(schema):
                raise SchemaError(f"schema mismatch in concat: {schema} vs {other.column_names}")
        columns = {c: np.concatenate([t.column(c) for t in tables]) for c in schema}
        return Table(name or first.name, columns)

    # -- shared-memory transport ---------------------------------------------
    def to_ref(self, segment_name: Optional[str] = None, keep_open: bool = True):
        """Write this table into a shared-memory segment; returns a
        :class:`repro.memory.TableRef`.

        The caller owns the segment and must eventually
        :func:`repro.memory.release` it (or hand the ref — and with it the
        release obligation — to another process). ``keep_open=False``
        detaches the local mapping immediately after the copy, the right
        mode for a worker shipping a result it will never read back.
        """
        # Local import: repro.memory is a leaf layer, but keeping the engine
        # importable without it on exotic platforms costs nothing.
        from repro.memory import arena

        name = segment_name or arena.new_segment_name("tbl")
        return arena.create_table_segment(
            name, self.name, self._columns, self.num_rows, keep_open=keep_open
        )

    @classmethod
    def from_ref(cls, ref, name: Optional[str] = None) -> "Table":
        """Rebuild a table from a :class:`repro.memory.TableRef`.

        Numeric columns are zero-copy read-only views into the segment;
        the views pin the mapping for the table's lifetime (see the class
        docstring). The segment itself stays live until someone calls
        :func:`repro.memory.release` on the ref.
        """
        from repro.memory import arena

        table = cls(name or ref.table_name, arena.map_ref(ref))
        table._pin = ref
        return table

    @property
    def backing_ref(self):
        """The :class:`TableRef` this table was mapped from, or ``None``."""
        return self._pin

    @staticmethod
    def from_rows(name: str, column_names: Sequence[str], rows: Iterable[tuple]) -> "Table":
        """Build from an iterable of row tuples (used by streaming samplers)."""
        materialized = list(rows)
        if materialized:
            arrays = [np.asarray(col) for col in zip(*materialized)]
        else:
            arrays = [np.asarray([]) for _ in column_names]
        return Table(name, dict(zip(column_names, arrays)))

    def iter_rows(self) -> Iterable[tuple]:
        """Yield rows as tuples in column order (streaming-sampler input)."""
        arrays = list(self._columns.values())
        for i in range(self.num_rows):
            yield tuple(arr[i] for arr in arrays)

    def to_dict(self) -> Dict[str, np.ndarray]:
        return dict(self._columns)

    def estimated_bytes(self) -> int:
        """Approximate in-memory footprint, used as the 'data size' metric."""
        return int(sum(arr.nbytes for arr in self._columns.values()))

    def __repr__(self):
        return f"Table({self.name!r}, rows={self.num_rows}, cols={list(self._columns)})"


class Database:
    """Catalog of named base tables."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        #: Optional :class:`repro.stats.catalog.PartitionCatalog` attached
        #: by datagen/load; the prune/select pass is a no-op without it.
        self.partition_stats = None

    def register(self, table: Table) -> None:
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r} in database") from None

    def columns(self, name: str) -> Tuple[str, ...]:
        return self.table(name).data_column_names()

    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables.keys())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def total_rows(self) -> int:
        return sum(t.num_rows for t in self._tables.values())

    def total_bytes(self) -> int:
        return sum(t.estimated_bytes() for t in self._tables.values())

    def __repr__(self):
        return f"Database({list(self._tables)})"
