"""Stage-based cost model for parallel plans.

Splits a plan into pipelines bounded by exchanges (shuffle joins, aggregate
re-partitions, sorts), assigns each stage a degree of parallelism from its
input cardinality, and accumulates the paper's reporting metrics: machine
hours, critical-path runtime, shuffled rows, intermediate rows and effective
passes over data.

The model is deliberately shared between optimization and measurement:
``cost_plan(plan, rows_of, ...)`` takes a cardinality oracle
``rows_of(node, address)`` — keyed by the node's stable structural address
(:mod:`repro.algebra.addressing`) — which is the statistics-based estimator
during optimization and the actual executed row counts during measurement.

Two behaviours from the paper are captured structurally:

* a join against a small (dimension) input becomes a broadcast join and
  stays in the probe side's pipeline — "a join between a fact and a
  dimension table is effectively a select" (Section 3);
* a sampler that shrinks a pipeline lowers the next stage's degree of
  parallelism, amortizing task startup (Appendix A's sampler->exchange
  rule), at the price of shuffling the surviving rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.algebra.addressing import NodeAddress
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.engine.metrics import ClusterConfig, PlanCost, StageCost
from repro.errors import PlanError

__all__ = ["cost_plan", "prune_cost_credit"]


def prune_cost_credit(
    rows_skipped: float, config: Optional[ClusterConfig] = None
) -> float:
    """Machine-hours of scan work the partition prune/select pass avoided.

    Measured plan costs already reflect pruning implicitly (workers only
    report cardinalities for the partitions that ran); this makes the
    credit explicit so reports can attribute the saving to the catalog
    rather than to a smaller input. Only the scan-stage work is credited —
    downstream operators' savings show up in their own measured stages.
    """
    if rows_skipped <= 0:
        return 0.0
    config = config or ClusterConfig()
    return float(rows_skipped) * config.scan_cost


@dataclass
class _Pipeline:
    """A stage under construction."""

    input_rows: float
    rows: float
    cpu: float
    ready: float
    pass_index: int
    samplers: List[str] = field(default_factory=list)
    ops: List[str] = field(default_factory=list)


class _CostWalk:
    def __init__(self, rows_of: Callable[[LogicalNode, NodeAddress], float], config: ClusterConfig):
        self.rows_of = rows_of
        self.config = config
        self.result = PlanCost()

    # -- stage management ---------------------------------------------------
    def _close(self, pipe: _Pipeline, shuffled_rows: float = 0.0) -> float:
        """Materialize a pipeline as a StageCost; return its completion time."""
        dop = self.config.dop_for_rows(pipe.input_rows)
        work = pipe.cpu + shuffled_rows * self.config.exchange_cost
        total_work = work + dop * self.config.task_startup
        duration = self.config.task_startup + (work / dop if dop else work)
        stage = StageCost(
            pass_index=pipe.pass_index,
            input_rows=pipe.input_rows,
            output_rows=pipe.rows,
            dop=dop,
            cpu_work=total_work,
            duration=duration,
            shuffled_rows=shuffled_rows,
            description="+".join(pipe.ops),
            sampler_kinds=tuple(pipe.samplers),
        )
        self.result.stages.append(stage)
        return pipe.ready + duration

    # -- node dispatch ---------------------------------------------------------
    def visit(self, node: LogicalNode, address: NodeAddress = ()) -> _Pipeline:
        if isinstance(node, Scan):
            return self._visit_scan(node, address)
        if isinstance(node, Select):
            return self._visit_rowlocal(node, address, self.config.select_cost, "select")
        if isinstance(node, Project):
            return self._visit_rowlocal(node, address, self.config.project_cost, "project")
        if isinstance(node, SamplerNode):
            return self._visit_sampler(node, address)
        if isinstance(node, Join):
            return self._visit_join(node, address)
        if isinstance(node, Aggregate):
            return self._visit_aggregate(node, address)
        if isinstance(node, OrderBy):
            return self._visit_orderby(node, address)
        if isinstance(node, Limit):
            return self._visit_limit(node, address)
        if isinstance(node, UnionAll):
            return self._visit_union(node, address)
        raise PlanError(f"cost model cannot handle node {type(node).__name__}")

    def _visit_scan(self, node: Scan, address: NodeAddress) -> _Pipeline:
        rows = float(self.rows_of(node, address))
        self.result.job_input_rows += rows
        return _Pipeline(
            input_rows=rows,
            rows=rows,
            cpu=rows * self.config.scan_cost,
            ready=0.0,
            pass_index=0,
            ops=[f"scan({node.table})"],
        )

    def _visit_rowlocal(
        self, node: LogicalNode, address: NodeAddress, per_row: float, label: str
    ) -> _Pipeline:
        pipe = self.visit(node.children[0], address + (0,))
        pipe.cpu += pipe.rows * per_row
        pipe.rows = float(self.rows_of(node, address))
        pipe.ops.append(label)
        return pipe

    def _visit_sampler(self, node: SamplerNode, address: NodeAddress) -> _Pipeline:
        pipe = self.visit(node.child, address + (0,))
        spec_cost = getattr(node.spec, "cost_per_row", 0.2)
        kind = getattr(node.spec, "kind", "sampler")
        pipe.cpu += pipe.rows * (spec_cost + self.config.language_boundary_cost)
        pipe.rows = float(self.rows_of(node, address))
        pipe.samplers.append(kind)
        pipe.ops.append(f"sampler[{kind}]")
        return pipe

    def _visit_join(self, node: Join, address: NodeAddress) -> _Pipeline:
        left = self.visit(node.left, address + (0,))
        right = self.visit(node.right, address + (1,))
        out_rows = float(self.rows_of(node, address))
        smaller, larger = (left, right) if left.rows <= right.rows else (right, left)

        if smaller.rows <= self.config.broadcast_threshold:
            # Broadcast join: the small side is gathered and shipped to every
            # probe task; the large side's pipeline continues un-broken.
            ready_small = self._close(smaller, shuffled_rows=smaller.rows)
            larger.cpu += smaller.rows * self.config.join_build_cost
            larger.cpu += larger.rows * self.config.join_probe_cost
            larger.rows = out_rows
            larger.ready = max(larger.ready, ready_small)
            larger.ops.append("bcast-join")
            return larger

        # Pair (shuffle) join: both inputs re-partition on the join keys.
        ready_left = self._close(left, shuffled_rows=left.rows)
        ready_right = self._close(right, shuffled_rows=right.rows)
        input_rows = left.rows + right.rows
        cpu = smaller.rows * self.config.join_build_cost + larger.rows * self.config.join_probe_cost
        return _Pipeline(
            input_rows=input_rows,
            rows=out_rows,
            cpu=cpu,
            ready=max(ready_left, ready_right),
            pass_index=max(left.pass_index, right.pass_index) + 1,
            ops=["shuffle-join"],
        )

    def _visit_aggregate(self, node: Aggregate, address: NodeAddress) -> _Pipeline:
        pipe = self.visit(node.child, address + (0,))
        groups = float(self.rows_of(node, address))
        dop = self.config.dop_for_rows(pipe.input_rows)
        partial_rows = min(pipe.rows, groups * dop)
        pipe.cpu += pipe.rows * self.config.partial_agg_cost
        pipe.rows = partial_rows
        pipe.ops.append("partial-agg")
        ready = self._close(pipe, shuffled_rows=partial_rows)
        return _Pipeline(
            input_rows=partial_rows,
            rows=groups,
            cpu=partial_rows * self.config.final_agg_cost,
            ready=ready,
            pass_index=pipe.pass_index + 1,
            ops=["final-agg"],
        )

    def _visit_orderby(self, node: OrderBy, address: NodeAddress) -> _Pipeline:
        pipe = self.visit(node.child, address + (0,))
        rows = pipe.rows
        ready = self._close(pipe, shuffled_rows=rows)
        log_factor = math.log2(rows + 2.0)
        return _Pipeline(
            input_rows=rows,
            rows=float(self.rows_of(node, address)),
            cpu=rows * self.config.sort_cost * log_factor / 8.0,
            ready=ready,
            pass_index=pipe.pass_index + 1,
            ops=["sort"],
        )

    def _visit_limit(self, node: Limit, address: NodeAddress) -> _Pipeline:
        pipe = self.visit(node.child, address + (0,))
        pipe.rows = float(self.rows_of(node, address))
        pipe.ops.append("limit")
        return pipe

    def _visit_union(self, node: UnionAll, address: NodeAddress) -> _Pipeline:
        pipes = [self.visit(child, address + (i,)) for i, child in enumerate(node.children)]
        merged = pipes[0]
        for extra in pipes[1:]:
            merged.input_rows += extra.input_rows
            merged.rows += extra.rows
            merged.cpu += extra.cpu
            merged.ready = max(merged.ready, extra.ready)
            merged.pass_index = max(merged.pass_index, extra.pass_index)
            merged.samplers.extend(extra.samplers)
            merged.ops.extend(extra.ops)
        merged.rows = float(self.rows_of(node, address))
        merged.ops.append("union-all")
        return merged


def cost_plan(
    plan: LogicalNode,
    rows_of: Callable[[LogicalNode, NodeAddress], float],
    config: Optional[ClusterConfig] = None,
) -> PlanCost:
    """Cost a plan end-to-end.

    ``rows_of`` maps each plan node — identified by the node object and its
    stable structural address — to its output cardinality (estimated or
    measured). Returns a :class:`PlanCost` with per-stage detail.
    """
    config = config or ClusterConfig()
    walk = _CostWalk(rows_of, config)
    final = walk.visit(plan, ())
    finish = walk._close(final, shuffled_rows=0.0)
    walk.result.job_output_rows = float(rows_of(plan, ()))
    walk.result._runtime = finish
    return walk.result
