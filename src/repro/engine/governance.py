"""In-flight query governance: cancellation, deadlines, memory budgets.

Admission control (:mod:`repro.service.admission`) protects the service
*before* a query starts; this module is the contract that holds while one
is running. A :class:`GovernanceContext` travels with a query from the
service front-end down through :class:`~repro.engine.executor.Executor`,
:class:`~repro.parallel.executor.ParallelExecutor` and into the physical
plan's operator/morsel loop, which polls :meth:`GovernanceContext.check`
at every cooperative checkpoint:

* between physical operators and between morsels of a fused chain
  (:meth:`~repro.engine.physical.PhysicalPlan.execute`);
* between task launches/completions in the parallel scheduler
  (:class:`~repro.parallel.tasks.TaskRuntime`);
* inside parallel workers, via the same ``should_abort`` poll the
  speculative-loser machinery already uses.

``check`` raises a *typed* :class:`~repro.errors.GovernanceError` —
:class:`~repro.errors.QueryCancelled`, :class:`~repro.errors.DeadlineExceeded`
or :class:`~repro.errors.BudgetExceeded` — that unwinds cleanly: worker
tasks are cancelled through the existing ``abandoned`` set, shared-memory
segments are reaped through the transport's dispose/reap hooks, and
partial state is discarded. The service's governor catches these and
walks the degradation ladder instead of failing the query.

Everything here is cooperative and cheap: a checkpoint is one monotonic
clock read plus two comparisons, so checkpoints can sit on the morsel
boundary without measurable overhead. Deadlines are *absolute monotonic*
times — ``CLOCK_MONOTONIC`` is system-wide on Linux, so a deadline
captured in the service thread keeps meaning inside forked pool workers.
Cancellation tokens are shared objects: they propagate instantly to
thread/inline workers; fork workers hold a copy and are stopped from the
parent side instead (the scheduler observes the token and abandons their
attempts).
"""

from __future__ import annotations

import mmap
import threading
import time
from typing import Optional

from repro.errors import BudgetExceeded, DeadlineExceeded, QueryCancelled

__all__ = [
    "CancellationToken",
    "GovernanceContext",
    "table_nbytes",
]


def table_nbytes(table) -> int:
    """Approximate resident bytes of one table (sum of column buffers)."""
    total = 0
    for name in table.column_names:
        total += int(table.column(name).nbytes)
    return total


class CancellationToken:
    """Thread-safe one-shot cancellation flag with a reason.

    ``cancel`` is idempotent — the first reason wins, so a client
    disconnect that races a shutdown drain reports whichever fired first.
    The token is shared by reference between the connection thread (which
    fires it), the service worker thread and any thread/inline pool
    workers (which poll it). For *fork* pool workers the flag lives in a
    one-byte anonymous ``MAP_SHARED`` mapping: the child inherits the
    mapping (not a copy), so a post-fork ``cancel`` in the parent is
    visible at the child's next morsel-boundary poll — the reason string
    stays parent-side, only the boolean crosses.
    """

    __slots__ = ("_event", "_reason", "_lock", "_shared")

    def __init__(self):
        self._event = threading.Event()
        self._reason: Optional[str] = None
        self._lock = threading.Lock()
        # Anonymous mmap is MAP_SHARED on Unix: one byte, zero-initialized,
        # reclaimed by the kernel when the last mapping closes.
        self._shared = mmap.mmap(-1, 1)

    def cancel(self, reason: str = "cancelled") -> bool:
        """Fire the token; returns True if this call was the first."""
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = str(reason)
            try:
                self._shared[0] = 1
            except ValueError:  # mapping already closed (interpreter teardown)
                pass
            self._event.set()
            return True

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        try:
            return self._shared[0] != 0
        except ValueError:
            return False

    @property
    def reason(self) -> Optional[str]:
        return self._reason

    def __repr__(self):
        state = f"cancelled: {self._reason!r}" if self.cancelled else "live"
        return f"CancellationToken({state})"


class GovernanceContext:
    """One query's in-flight contract: cancellation + deadline + budget.

    Parameters
    ----------
    deadline_at:
        Absolute ``time.monotonic()`` instant the query must stop by;
        None = no deadline. (Absolute, not a duration: queue wait has
        already consumed part of the budget by the time execution starts.)
    memory_budget_bytes:
        Cap on the executor's *live* intermediate bytes (the frontier of
        materialized operator outputs, per execution context); None = no
        cap. Parallel workers each inherit the same cap over their own
        partition-local state.
    token:
        Shared :class:`CancellationToken`; a fresh one is created when
        omitted.

    The context also keeps a small ledger (checks performed, peak live
    bytes seen) that the service reports in ``service.governor.*``
    metrics.
    """

    __slots__ = (
        "deadline_at",
        "memory_budget_bytes",
        "token",
        "checks",
        "peak_live_bytes",
        "selection_fraction",
    )

    def __init__(
        self,
        deadline_at: Optional[float] = None,
        memory_budget_bytes: Optional[int] = None,
        token: Optional[CancellationToken] = None,
    ):
        self.deadline_at = float(deadline_at) if deadline_at is not None else None
        self.memory_budget_bytes = (
            int(memory_budget_bytes) if memory_budget_bytes is not None else None
        )
        self.token = token if token is not None else CancellationToken()
        self.checks = 0
        self.peak_live_bytes = 0
        #: Per-query weighted-partition-selection override (see the
        #: governor's ``quickr-select`` rung); None leaves the executor's
        #: own ``selection_fraction`` knob in charge.
        self.selection_fraction: Optional[float] = None

    @classmethod
    def with_timeout(
        cls,
        seconds: Optional[float],
        memory_budget_bytes: Optional[int] = None,
        token: Optional[CancellationToken] = None,
    ) -> "GovernanceContext":
        """Context whose deadline is ``seconds`` from now (None = none)."""
        deadline_at = time.monotonic() + seconds if seconds is not None else None
        return cls(deadline_at, memory_budget_bytes, token)

    # -- checkpoint ----------------------------------------------------------
    def check(self, live_bytes: Optional[int] = None) -> None:
        """One cooperative checkpoint; raises the typed governance error.

        ``live_bytes`` is the caller's current materialized intermediate
        footprint (the physical executor's live slot frontier); omitted by
        callers that only enforce cancellation/deadline (the task
        scheduler).
        """
        self.checks += 1
        if self.token.cancelled:
            raise QueryCancelled(
                f"query cancelled: {self.token.reason}",
                reason_code=self.token.reason or "cancelled",
            )
        if self.deadline_at is not None:
            overshoot = time.monotonic() - self.deadline_at
            if overshoot > 0:
                raise DeadlineExceeded(
                    f"deadline exceeded by {overshoot * 1000.0:.1f} ms mid-query"
                )
        if live_bytes is not None:
            if live_bytes > self.peak_live_bytes:
                self.peak_live_bytes = live_bytes
            if (
                self.memory_budget_bytes is not None
                and live_bytes > self.memory_budget_bytes
            ):
                raise BudgetExceeded(
                    f"live intermediate state {live_bytes} bytes exceeds the "
                    f"memory budget {self.memory_budget_bytes} bytes"
                )

    def should_abort(self) -> bool:
        """Non-raising poll for worker-side ``should_abort`` callbacks:
        True once the token fired or the deadline passed. Workers unwind
        with :class:`~repro.errors.TaskCancelled` (discarded, never
        retried); the parent-side scheduler raises the typed error."""
        if self.token.cancelled:
            return True
        return self.deadline_at is not None and time.monotonic() > self.deadline_at

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0

    def __repr__(self):
        parts = []
        if self.deadline_at is not None:
            remaining = self.remaining_seconds()
            parts.append(f"deadline {remaining * 1000.0:+.0f} ms" if remaining is not None else "")
        if self.memory_budget_bytes is not None:
            parts.append(f"budget {self.memory_budget_bytes} B")
        if self.token.cancelled:
            parts.append(f"cancelled ({self.token.reason})")
        return f"GovernanceContext({', '.join(p for p in parts if p) or 'unbounded'})"
