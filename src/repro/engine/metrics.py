"""Cluster configuration and plan-cost structures.

The paper evaluates on a production cluster and reports machine-hours,
runtime, shuffled data and intermediate data (Section 5.1). Our substitute
is an analytical cluster model: plans are split into *stages* (pipelines
bounded by exchanges), each stage runs with a degree of parallelism derived
from its input size, and costs accumulate per stage. The same model costs
optimizer alternatives (with estimated cardinalities) and measures executed
plans (with actual cardinalities), so "estimated vs measured" differ only by
cardinality quality — as in a real system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "ClusterConfig",
    "StageCost",
    "PlanCost",
    "ParallelMetrics",
    "FaultToleranceStats",
    "modeled_speedup",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the simulated cluster.

    Costs are in abstract work units per row; one "machine-hour" is one unit
    of work on one task. Defaults are tuned so TPC-DS-like plans produce the
    pass counts and gain profiles the paper reports (2-4 effective passes,
    startup-dominated small stages, shuffle-heavy fact-fact joins).
    """

    rows_per_task: int = 20_000
    max_dop: int = 64
    task_startup: float = 4_000.0
    scan_cost: float = 0.6
    select_cost: float = 0.25
    project_cost: float = 0.35
    join_build_cost: float = 1.6
    join_probe_cost: float = 1.6
    partial_agg_cost: float = 1.0
    final_agg_cost: float = 1.0
    sort_cost: float = 1.5
    exchange_cost: float = 4.0  # write + network + read, per shuffled row
    broadcast_threshold: int = 1_000
    language_boundary_cost: float = 0.05  # samplers run out-of-process (C# in the paper)

    def dop_for_rows(self, rows: float) -> int:
        """Degree of parallelism for a stage reading ``rows`` rows."""
        if rows <= 0:
            return 1
        return int(min(self.max_dop, max(1, math.ceil(rows / self.rows_per_task))))


@dataclass
class StageCost:
    """One executed stage (a pipeline between exchanges)."""

    pass_index: int
    input_rows: float
    output_rows: float
    dop: int
    cpu_work: float
    duration: float
    shuffled_rows: float = 0.0
    description: str = ""
    sampler_kinds: Tuple[str, ...] = ()

    @property
    def machine_hours(self) -> float:
        """Total work of this stage's tasks (startup already included)."""
        return self.cpu_work


@dataclass
class PlanCost:
    """Aggregate cost of a plan, in the paper's reporting vocabulary."""

    stages: List[StageCost] = field(default_factory=list)
    job_input_rows: float = 0.0
    job_output_rows: float = 0.0

    @property
    def machine_hours(self) -> float:
        """Sum of work across all tasks — cluster occupancy / throughput."""
        return sum(s.cpu_work for s in self.stages)

    @property
    def runtime(self) -> float:
        """Critical-path completion time (set by the cost walk)."""
        return self._runtime

    _runtime: float = 0.0

    @property
    def shuffled_rows(self) -> float:
        """Rows moved across the network at exchanges."""
        return sum(s.shuffled_rows for s in self.stages)

    @property
    def intermediate_rows(self) -> float:
        """Sum of stage outputs less the job output — excess IO footprint."""
        total = sum(s.output_rows for s in self.stages)
        return max(0.0, total - self.job_output_rows)

    @property
    def effective_passes(self) -> float:
        """(sum of task inputs + outputs) / (job input + output), the
        paper's definition of effective passes over data."""
        denominator = self.job_input_rows + self.job_output_rows
        if denominator <= 0:
            return 0.0
        numerator = sum(s.input_rows + s.output_rows for s in self.stages)
        return numerator / denominator

    @property
    def first_pass_duration(self) -> float:
        """Duration of the initial (extraction) wave of stages."""
        first = [s.duration for s in self.stages if s.pass_index == 0]
        return max(first) if first else 0.0

    def total_over_first_pass(self) -> float:
        """The paper's 'Total/First pass time' query statistic."""
        first = self.first_pass_duration
        if first <= 0:
            return 1.0
        return max(1.0, self.runtime / first)

    def sampler_source_distances(self) -> List[int]:
        """IO passes between extraction and each sampler (paper Table 5)."""
        out = []
        for stage in self.stages:
            out.extend(stage.pass_index for _ in stage.sampler_kinds)
        return out

    def summary(self) -> dict:
        return {
            "machine_hours": self.machine_hours,
            "runtime": self.runtime,
            "shuffled_rows": self.shuffled_rows,
            "intermediate_rows": self.intermediate_rows,
            "effective_passes": self.effective_passes,
            "stages": len(self.stages),
        }


def modeled_speedup(
    cost: PlanCost, parallelism: int, config: Optional[ClusterConfig] = None
) -> float:
    """Cluster-model speedup of running a measured plan at ``parallelism``.

    Per stage, a one-worker run takes ``startup + work`` while a ``D``-way
    partition-parallel run divides the row work but still pays one task
    startup per wave (Amdahl's serial fraction):

        serial   runtime = sum_s (startup + work_s)
        parallel runtime = sum_s (startup + work_s / D)

    Stage ``cpu_work`` folds in ``dop * task_startup``, so the startup share
    is recovered from the stage's recorded dop. This is the *modeled*
    companion to the measured wall-clock speedup in
    :class:`ParallelMetrics` — comparing the two shows how far the Python
    substrate is from the hardware ceiling.
    """
    if parallelism <= 1 or not cost.stages:
        return 1.0
    config = config or ClusterConfig()
    serial = 0.0
    parallel = 0.0
    for stage in cost.stages:
        work = max(0.0, stage.cpu_work - stage.dop * config.task_startup)
        serial += config.task_startup + work
        parallel += config.task_startup + work / parallelism
    if parallel <= 0:
        return 1.0
    return serial / parallel


@dataclass
class ParallelMetrics:
    """What the parallel executor did and how it paid off.

    ``measured_speedup`` is serial wall-clock over parallel wall-clock for
    the same plan (populated when the caller timed a serial reference run);
    ``modeled_speedup`` is the cluster cost model's prediction for the same
    degree of parallelism.
    """

    parallelism: int
    strategy: str = "serial-fallback"
    pool_mode: str = "inline"
    merge_mode: str = "rows"
    partitioned_tables: Tuple[str, ...] = ()
    reason: str = ""
    wall_clock_seconds: float = 0.0
    serial_wall_clock_seconds: Optional[float] = None
    modeled_speedup: float = 1.0
    worker_seconds: Tuple[float, ...] = ()
    #: -- fault tolerance (see repro.parallel.tasks) -------------------------
    #: Partition tasks launched at least once.
    tasks: int = 0
    #: Failed attempts that were re-launched (retries with backoff).
    task_retries: int = 0
    #: Speculative duplicate attempts launched for stragglers.
    speculative_launches: int = 0
    #: Tasks whose winning result came from a speculative duplicate.
    speculative_wins: int = 0
    #: Faults the active FaultPlan injected into this run.
    faults_injected: int = 0
    #: Partitions that exhausted every attempt.
    failed_partitions: Tuple[int, ...] = ()
    #: Sample-aware graceful degradation was applied (PartialResult).
    degraded: bool = False
    #: Fraction of partitions whose results made it into the answer.
    coverage: float = 1.0
    #: -- transport (see repro.parallel.transport) ----------------------------
    #: Result transport actually used: "shm" (TableRefs over the pipe,
    #: bytes in shared memory) or "pickle" (whole payloads over the pipe).
    transport: str = "pickle"
    #: Bytes that crossed the result pipe (refs in shm mode; measured
    #: pickled payloads in pickle mode when measurement was requested).
    result_bytes_on_pipe: int = 0
    #: Bytes of table data moved via shared memory instead of the pipe.
    result_bytes_shared: int = 0
    #: -- partition pruning (see repro.optimizer.pruning) ---------------------
    #: ``ScanPrunePlan.summary()`` dict when the catalog prune/select pass
    #: skipped anything this query; None otherwise.
    pruning: Optional[dict] = None

    @property
    def measured_speedup(self) -> Optional[float]:
        if self.serial_wall_clock_seconds is None or self.wall_clock_seconds <= 0:
            return None
        return self.serial_wall_clock_seconds / self.wall_clock_seconds

    def task_latency_percentiles(self) -> dict:
        """p50/p95/max of the winning task attempt durations (seconds)."""
        if not self.worker_seconds:
            return {}
        ordered = sorted(self.worker_seconds)
        pick = lambda q: ordered[min(len(ordered) - 1, int(q * len(ordered)))]  # noqa: E731
        return {"p50": pick(0.50), "p95": pick(0.95), "max": ordered[-1]}

    def summary(self) -> dict:
        out = {
            "parallelism": self.parallelism,
            "strategy": self.strategy,
            "pool": self.pool_mode,
            "merge": self.merge_mode,
            "modeled_speedup": round(self.modeled_speedup, 2),
            "wall_clock_s": round(self.wall_clock_seconds, 4),
        }
        if self.measured_speedup is not None:
            out["measured_speedup"] = round(self.measured_speedup, 2)
        if self.transport != "pickle":
            out["transport"] = self.transport
            out["result_bytes_on_pipe"] = self.result_bytes_on_pipe
            out["result_bytes_shared"] = self.result_bytes_shared
        if self.task_retries:
            out["retries"] = self.task_retries
        if self.speculative_launches:
            out["speculative"] = f"{self.speculative_wins}/{self.speculative_launches} won"
        if self.faults_injected:
            out["faults"] = self.faults_injected
        if self.degraded:
            out["degraded"] = True
            out["coverage"] = round(self.coverage, 3)
            out["lost_partitions"] = list(self.failed_partitions)
        if self.pruning:
            out["pruning"] = (
                f"{self.pruning['partitions_executed']}/"
                f"{self.pruning['partitions_total']} partition(s) executed "
                f"({self.pruning['partitions_pruned']} pruned"
                + (
                    f", {len(self.pruning.get('predicates', []))} predicate(s)"
                    if self.pruning.get("predicates")
                    else ""
                )
                + ")"
            )
        if self.reason:
            out["note"] = self.reason
        return out


@dataclass
class FaultToleranceStats:
    """Cumulative fault-tolerance accounting across queries.

    One instance lives on the parallel executor and accumulates every
    query's :class:`ParallelMetrics`; ``evaluate`` and ``chaos`` print its
    summary — the execution-layer counterpart of the paper's cluster
    telemetry (retries and stragglers are routine in Cosmos, Section 2).
    """

    queries: int = 0
    tasks: int = 0
    retries: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    faults_injected: int = 0
    failed_tasks: int = 0
    degraded_queries: int = 0
    serial_reexecutions: int = 0
    task_seconds: List[float] = field(default_factory=list)

    def record(self, metrics: "ParallelMetrics") -> None:
        self.queries += 1
        self.tasks += metrics.tasks
        self.retries += metrics.task_retries
        self.speculative_launches += metrics.speculative_launches
        self.speculative_wins += metrics.speculative_wins
        self.faults_injected += metrics.faults_injected
        self.failed_tasks += len(metrics.failed_partitions)
        if metrics.degraded:
            self.degraded_queries += 1
        self.task_seconds.extend(metrics.worker_seconds)

    def latency_percentiles(self) -> dict:
        if not self.task_seconds:
            return {}
        ordered = sorted(self.task_seconds)
        pick = lambda q: ordered[min(len(ordered) - 1, int(q * len(ordered)))]  # noqa: E731
        return {"p50": pick(0.50), "p95": pick(0.95), "max": ordered[-1]}

    def summary(self) -> dict:
        out = {
            "queries": self.queries,
            "tasks": self.tasks,
            "retries": self.retries,
            "speculative_launches": self.speculative_launches,
            "speculative_wins": self.speculative_wins,
            "failed_tasks": self.failed_tasks,
            "degraded_queries": self.degraded_queries,
            "serial_reexecutions": self.serial_reexecutions,
        }
        if self.faults_injected:
            out["faults_injected"] = self.faults_injected
        latency = self.latency_percentiles()
        if latency:
            out["task_latency_s"] = {k: round(v, 4) for k, v in latency.items()}
        return out
