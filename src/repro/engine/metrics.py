"""Cluster configuration and plan-cost structures.

The paper evaluates on a production cluster and reports machine-hours,
runtime, shuffled data and intermediate data (Section 5.1). Our substitute
is an analytical cluster model: plans are split into *stages* (pipelines
bounded by exchanges), each stage runs with a degree of parallelism derived
from its input size, and costs accumulate per stage. The same model costs
optimizer alternatives (with estimated cardinalities) and measures executed
plans (with actual cardinalities), so "estimated vs measured" differ only by
cardinality quality — as in a real system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["ClusterConfig", "StageCost", "PlanCost", "ParallelMetrics", "modeled_speedup"]


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the simulated cluster.

    Costs are in abstract work units per row; one "machine-hour" is one unit
    of work on one task. Defaults are tuned so TPC-DS-like plans produce the
    pass counts and gain profiles the paper reports (2-4 effective passes,
    startup-dominated small stages, shuffle-heavy fact-fact joins).
    """

    rows_per_task: int = 20_000
    max_dop: int = 64
    task_startup: float = 4_000.0
    scan_cost: float = 0.6
    select_cost: float = 0.25
    project_cost: float = 0.35
    join_build_cost: float = 1.6
    join_probe_cost: float = 1.6
    partial_agg_cost: float = 1.0
    final_agg_cost: float = 1.0
    sort_cost: float = 1.5
    exchange_cost: float = 4.0  # write + network + read, per shuffled row
    broadcast_threshold: int = 1_000
    language_boundary_cost: float = 0.05  # samplers run out-of-process (C# in the paper)

    def dop_for_rows(self, rows: float) -> int:
        """Degree of parallelism for a stage reading ``rows`` rows."""
        if rows <= 0:
            return 1
        return int(min(self.max_dop, max(1, math.ceil(rows / self.rows_per_task))))


@dataclass
class StageCost:
    """One executed stage (a pipeline between exchanges)."""

    pass_index: int
    input_rows: float
    output_rows: float
    dop: int
    cpu_work: float
    duration: float
    shuffled_rows: float = 0.0
    description: str = ""
    sampler_kinds: Tuple[str, ...] = ()

    @property
    def machine_hours(self) -> float:
        """Total work of this stage's tasks (startup already included)."""
        return self.cpu_work


@dataclass
class PlanCost:
    """Aggregate cost of a plan, in the paper's reporting vocabulary."""

    stages: List[StageCost] = field(default_factory=list)
    job_input_rows: float = 0.0
    job_output_rows: float = 0.0

    @property
    def machine_hours(self) -> float:
        """Sum of work across all tasks — cluster occupancy / throughput."""
        return sum(s.cpu_work for s in self.stages)

    @property
    def runtime(self) -> float:
        """Critical-path completion time (set by the cost walk)."""
        return self._runtime

    _runtime: float = 0.0

    @property
    def shuffled_rows(self) -> float:
        """Rows moved across the network at exchanges."""
        return sum(s.shuffled_rows for s in self.stages)

    @property
    def intermediate_rows(self) -> float:
        """Sum of stage outputs less the job output — excess IO footprint."""
        total = sum(s.output_rows for s in self.stages)
        return max(0.0, total - self.job_output_rows)

    @property
    def effective_passes(self) -> float:
        """(sum of task inputs + outputs) / (job input + output), the
        paper's definition of effective passes over data."""
        denominator = self.job_input_rows + self.job_output_rows
        if denominator <= 0:
            return 0.0
        numerator = sum(s.input_rows + s.output_rows for s in self.stages)
        return numerator / denominator

    @property
    def first_pass_duration(self) -> float:
        """Duration of the initial (extraction) wave of stages."""
        first = [s.duration for s in self.stages if s.pass_index == 0]
        return max(first) if first else 0.0

    def total_over_first_pass(self) -> float:
        """The paper's 'Total/First pass time' query statistic."""
        first = self.first_pass_duration
        if first <= 0:
            return 1.0
        return max(1.0, self.runtime / first)

    def sampler_source_distances(self) -> List[int]:
        """IO passes between extraction and each sampler (paper Table 5)."""
        out = []
        for stage in self.stages:
            out.extend(stage.pass_index for _ in stage.sampler_kinds)
        return out

    def summary(self) -> dict:
        return {
            "machine_hours": self.machine_hours,
            "runtime": self.runtime,
            "shuffled_rows": self.shuffled_rows,
            "intermediate_rows": self.intermediate_rows,
            "effective_passes": self.effective_passes,
            "stages": len(self.stages),
        }


def modeled_speedup(
    cost: PlanCost, parallelism: int, config: Optional[ClusterConfig] = None
) -> float:
    """Cluster-model speedup of running a measured plan at ``parallelism``.

    Per stage, a one-worker run takes ``startup + work`` while a ``D``-way
    partition-parallel run divides the row work but still pays one task
    startup per wave (Amdahl's serial fraction):

        serial   runtime = sum_s (startup + work_s)
        parallel runtime = sum_s (startup + work_s / D)

    Stage ``cpu_work`` folds in ``dop * task_startup``, so the startup share
    is recovered from the stage's recorded dop. This is the *modeled*
    companion to the measured wall-clock speedup in
    :class:`ParallelMetrics` — comparing the two shows how far the Python
    substrate is from the hardware ceiling.
    """
    if parallelism <= 1 or not cost.stages:
        return 1.0
    config = config or ClusterConfig()
    serial = 0.0
    parallel = 0.0
    for stage in cost.stages:
        work = max(0.0, stage.cpu_work - stage.dop * config.task_startup)
        serial += config.task_startup + work
        parallel += config.task_startup + work / parallelism
    if parallel <= 0:
        return 1.0
    return serial / parallel


@dataclass
class ParallelMetrics:
    """What the parallel executor did and how it paid off.

    ``measured_speedup`` is serial wall-clock over parallel wall-clock for
    the same plan (populated when the caller timed a serial reference run);
    ``modeled_speedup`` is the cluster cost model's prediction for the same
    degree of parallelism.
    """

    parallelism: int
    strategy: str = "serial-fallback"
    pool_mode: str = "inline"
    merge_mode: str = "rows"
    partitioned_tables: Tuple[str, ...] = ()
    reason: str = ""
    wall_clock_seconds: float = 0.0
    serial_wall_clock_seconds: Optional[float] = None
    modeled_speedup: float = 1.0
    worker_seconds: Tuple[float, ...] = ()

    @property
    def measured_speedup(self) -> Optional[float]:
        if self.serial_wall_clock_seconds is None or self.wall_clock_seconds <= 0:
            return None
        return self.serial_wall_clock_seconds / self.wall_clock_seconds

    def summary(self) -> dict:
        out = {
            "parallelism": self.parallelism,
            "strategy": self.strategy,
            "pool": self.pool_mode,
            "merge": self.merge_mode,
            "modeled_speedup": round(self.modeled_speedup, 2),
            "wall_clock_s": round(self.wall_clock_seconds, 4),
        }
        if self.measured_speedup is not None:
            out["measured_speedup"] = round(self.measured_speedup, 2)
        if self.reason:
            out["note"] = self.reason
        return out
