"""Execution substrate: columnar tables, physical operators, cost model."""

from repro.engine.costmodel import cost_plan
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.metrics import ClusterConfig, PlanCost, StageCost
from repro.engine.physical import (
    OperatorMetrics,
    PhysicalPlan,
    PlanCache,
    compile_plan,
)
from repro.engine.table import WEIGHT_COLUMN, Database, Table

__all__ = [
    "cost_plan",
    "ExecutionResult",
    "Executor",
    "OperatorMetrics",
    "PhysicalPlan",
    "PlanCache",
    "compile_plan",
    "ClusterConfig",
    "PlanCost",
    "StageCost",
    "WEIGHT_COLUMN",
    "Database",
    "Table",
]
