"""Vectorized physical operator implementations.

These functions execute one logical operator over columnar tables. They are
deliberately stand-alone (table in, table out) so both the executor and the
tests can drive them directly.

The aggregation operator implements the paper's Table 8 estimator rewrites
natively: when the input carries a weight column, every aggregate becomes
its Horvitz-Thompson estimator, and (optionally) each SUM-like aggregate
gains a confidence-interval column computed in the same pass (Section 4.3,
Proposition 2: one effective pass for estimate and error).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.algebra.aggregates import AggKind, AggSpec
from repro.algebra.expressions import Expr
from repro.engine.table import WEIGHT_COLUMN, Table
from repro.errors import SchemaError
from repro.errors import PlanError

__all__ = [
    "group_codes",
    "execute_select",
    "execute_project",
    "execute_join",
    "execute_aggregate",
    "execute_orderby",
    "execute_limit",
    "execute_union_all",
    "CI_SUFFIX",
    "Z_95",
]

#: Suffix for the optional confidence-interval column appended per aggregate.
CI_SUFFIX = "__ci"

#: Central-limit z-score for the 95% confidence intervals Quickr reports.
Z_95 = 1.96


def group_codes(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray, int]:
    """Dense group ids for a tuple of key columns.

    Returns ``(codes, first_row_index_per_group, num_groups)`` where
    ``first_row_index_per_group`` locates one representative row per group
    (used to emit the group-key columns without re-sorting).
    """
    if not arrays:
        raise PlanError("group_codes requires at least one key column")
    stacked = np.rec.fromarrays(arrays)
    uniques, first_index, codes = np.unique(stacked, return_index=True, return_inverse=True)
    return codes.astype(np.int64), first_index, len(uniques)


def execute_select(table: Table, predicate: Expr) -> Table:
    mask = np.asarray(predicate.evaluate(table), dtype=bool)
    if mask.all():
        # Nothing filtered: the input passes through untouched instead of
        # being gathered into a same-sized copy.
        return table
    return table.take(mask)


def execute_project(table: Table, mapping: Dict[str, Expr]) -> Table:
    out = {name: np.asarray(expr.evaluate(table)) for name, expr in mapping.items()}
    if table.has_weights():
        out[WEIGHT_COLUMN] = table.column(WEIGHT_COLUMN)
    return Table(table.name, out)


def _join_codes(left_keys: Sequence[np.ndarray], right_keys: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Common dense codes for the key tuples of both join inputs."""
    n_left = len(left_keys[0])
    combined = []
    for l_col, r_col in zip(left_keys, right_keys):
        common = np.result_type(l_col.dtype, r_col.dtype)
        combined.append(np.concatenate([l_col.astype(common), r_col.astype(common)]))
    stacked = np.rec.fromarrays(combined)
    _, codes = np.unique(stacked, return_inverse=True)
    codes = codes.astype(np.int64)
    return codes[:n_left], codes[n_left:]


def _match_pairs(left_codes: np.ndarray, right_codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """All (left_index, right_index) pairs with equal codes (many-to-many)."""
    order = np.argsort(right_codes, kind="stable")
    sorted_right = right_codes[order]
    lo = np.searchsorted(sorted_right, left_codes, side="left")
    hi = np.searchsorted(sorted_right, left_codes, side="right")
    counts = hi - lo
    left_idx = np.repeat(np.arange(len(left_codes)), counts)
    if len(left_idx) == 0:
        return left_idx, left_idx.copy()
    # Offsets into the sorted right side, expanded per match.
    starts = np.repeat(lo, counts)
    within = np.arange(len(left_idx)) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[starts + within]
    return left_idx, right_idx


def execute_join(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
) -> Table:
    """Hash equi-join. Weights multiply; a side without weights counts as 1."""
    l_codes, r_codes = _join_codes(
        [left.column(k) for k in left_keys], [right.column(k) for k in right_keys]
    )
    left_idx, right_idx = _match_pairs(l_codes, r_codes)

    columns: Dict[str, np.ndarray] = {}
    for name in left.data_column_names():
        columns[name] = left.column(name)[left_idx]
    for name in right.data_column_names():
        columns[name] = right.column(name)[right_idx]

    # Lineage rides along: an output row's identity is the pair of its input
    # rows' identities. Names are disjoint by construction (one per scan).
    clash = set(left.lineage_column_names()) & set(right.lineage_column_names())
    if clash:
        raise SchemaError(
            f"join inputs share lineage columns {sorted(clash)}; a scan node "
            "appears on both sides of the join"
        )
    for name in left.lineage_column_names():
        columns[name] = left.column(name)[left_idx]
    for name in right.lineage_column_names():
        columns[name] = right.column(name)[right_idx]

    if how in ("left", "right"):
        outer, inner, inner_idx = (left, right, left_idx) if how == "left" else (right, left, right_idx)
        outer_keys = outer.data_column_names() + outer.lineage_column_names()
        matched = np.zeros(outer.num_rows, dtype=bool)
        matched[inner_idx] = True
        missing = np.flatnonzero(~matched)
        if len(missing):
            for name in outer_keys:
                columns[name] = np.concatenate([columns[name], outer.column(name)[missing]])
            for name in inner.data_column_names():
                fill = np.full(len(missing), np.nan)
                columns[name] = np.concatenate([columns[name].astype(np.float64), fill])
            for name in inner.lineage_column_names():
                # Unmatched rows have no partner; -1 marks the absent lineage.
                fill = np.full(len(missing), -1, dtype=np.int64)
                columns[name] = np.concatenate([columns[name], fill])
            left_idx = np.concatenate([left_idx, missing]) if how == "left" else left_idx
            right_idx = np.concatenate([right_idx, missing]) if how == "right" else right_idx
    elif how != "inner":
        raise PlanError(f"unsupported join type {how!r}")

    n_out = len(next(iter(columns.values()))) if columns else 0
    if left.has_weights() or right.has_weights():
        lw = left.weights()[left_idx] if left.has_weights() else 1.0
        rw = right.weights()[right_idx] if right.has_weights() else 1.0
        weight = np.asarray(lw * rw, dtype=np.float64)
        if len(np.atleast_1d(weight)) != n_out:  # outer-join fill rows keep weight 1
            padded = np.ones(n_out)
            padded[: len(np.atleast_1d(weight))] = weight
            weight = padded
        columns[WEIGHT_COLUMN] = weight
    return Table(f"{left.name}_join_{right.name}", columns)


def _grouped_sum(codes: np.ndarray, num_groups: int, values: np.ndarray) -> np.ndarray:
    return np.bincount(codes, weights=values, minlength=num_groups)


def _grouped_min(codes: np.ndarray, num_groups: int, values: np.ndarray) -> np.ndarray:
    out = np.full(num_groups, np.inf)
    np.minimum.at(out, codes, values)
    return out


def _grouped_max(codes: np.ndarray, num_groups: int, values: np.ndarray) -> np.ndarray:
    out = np.full(num_groups, -np.inf)
    np.maximum.at(out, codes, values)
    return out


def _grouped_count_distinct(codes: np.ndarray, num_groups: int, values: np.ndarray) -> np.ndarray:
    pair = np.rec.fromarrays([codes, values])
    unique_pairs = np.unique(pair)
    return np.bincount(unique_pairs.f0.astype(np.int64), minlength=num_groups).astype(np.float64)


def _per_row_contribution(agg: AggSpec, table: Table) -> np.ndarray:
    """The raw (unweighted) per-row value y_i such that the true aggregate is
    sum over all rows of y_i. Used for both estimate and variance."""
    if agg.kind is AggKind.COUNT:
        return np.ones(table.num_rows)
    if agg.kind is AggKind.COUNT_IF:
        return np.asarray(agg.cond.evaluate(table), dtype=np.float64)
    values = np.asarray(agg.expr.evaluate(table), dtype=np.float64)
    if agg.kind is AggKind.SUM_IF:
        return values * np.asarray(agg.cond.evaluate(table), dtype=np.float64)
    return values


def _variance_independent(codes, num_groups, weights, y) -> np.ndarray:
    """HT variance for independent per-row inclusion (uniform/distinct):
    Var-hat = sum_i (w_i^2 - w_i) * y_i^2, grouped."""
    return _grouped_sum(codes, num_groups, (weights * weights - weights) * y * y)


def _variance_universe(codes, num_groups, universe_values, p, y) -> np.ndarray:
    """HT variance under universe sampling (Section B.1): rows sharing a key
    subspace value are perfectly correlated, so
    Var-hat = (1 - p)/p^2 * sum over key values g of (sum_{i in g} y_i)^2."""
    pair_codes, _, pair_groups = group_codes([codes, universe_values])
    sums = _grouped_sum(pair_codes, pair_groups, y)
    # Every row of a (group, universe-value) pair shares the same group id,
    # so any representative row maps the pair back to its group.
    representative = np.zeros(pair_groups, dtype=np.int64)
    representative[pair_codes] = codes
    var = np.zeros(num_groups)
    np.add.at(var, representative, (1.0 - p) / (p * p) * sums * sums)
    return var


def execute_aggregate(
    table: Table,
    group_by: Sequence[str],
    aggs: Sequence[AggSpec],
    compute_ci: bool = False,
    universe_rescale: Optional[Dict[str, float]] = None,
    universe_variance: Optional[Tuple[Tuple[str, ...], float]] = None,
) -> Table:
    """Grouped aggregation with Horvitz-Thompson estimation.

    If the input has no weight column this computes exact answers. With
    weights, each aggregate is rewritten per the paper's Table 8:

    ====================  =============================================
    true value            estimate over the sample
    ====================  =============================================
    SUM(x)                SUM(w * x)
    COUNT(*)              SUM(w)
    AVG(x)                SUM(w * x) / SUM(w)
    SUM(IF(c, x))         SUM(IF(c, w * x))
    COUNT(IF(c))          SUM(IF(c, w))
    COUNT(DISTINCT x)     COUNT(DISTINCT x) * (universe on x ? 1/p : 1)
    ====================  =============================================

    ``universe_rescale`` maps aggregate aliases to the 1/p factor for
    COUNT DISTINCT under universe sampling. ``universe_variance`` is
    ``(universe column names, p)`` when the dominant sampler for this
    aggregation is a universe sampler — variance then accounts for the
    perfect correlation of rows within a key-subspace value.
    """
    universe_rescale = universe_rescale or {}
    weighted = table.has_weights()
    weights = table.weights()

    if group_by:
        key_arrays = [table.column(k) for k in group_by]
        codes, first_index, num_groups = group_codes(key_arrays)
        # Emit groups in order of first appearance in the input.
        order = np.argsort(first_index)
        remap = np.empty(num_groups, dtype=np.int64)
        remap[order] = np.arange(num_groups)
        codes = remap[codes]
        out = {k: table.column(k)[first_index[order]] for k in group_by}
    else:
        codes = np.zeros(table.num_rows, dtype=np.int64)
        num_groups = 1
        out = {}

    if table.num_rows == 0 and not group_by:
        # Scalar aggregates over empty input: zero counts/sums, NaN averages.
        for agg in aggs:
            if agg.kind in (AggKind.AVG, AggKind.MIN, AggKind.MAX):
                out[agg.alias] = np.asarray([np.nan])
            else:
                out[agg.alias] = np.asarray([0.0])
            if compute_ci:
                out[agg.alias + CI_SUFFIX] = np.asarray([0.0])
        return Table(f"{table.name}_agg", out)

    universe_values = None
    universe_p = None
    if universe_variance is not None:
        ucols, universe_p = universe_variance
        present = [c for c in ucols if table.has_column(c)]
        if present:
            ucodes, _, _ = group_codes([table.column(c) for c in present])
            universe_values = ucodes

    weight_sum = _grouped_sum(codes, num_groups, weights)

    for agg in aggs:
        variance: Optional[np.ndarray] = None
        if agg.kind in (AggKind.SUM, AggKind.COUNT, AggKind.SUM_IF, AggKind.COUNT_IF):
            y = _per_row_contribution(agg, table)
            estimate = _grouped_sum(codes, num_groups, weights * y)
            if compute_ci and weighted:
                if universe_values is not None and universe_p is not None:
                    variance = _variance_universe(codes, num_groups, universe_values, universe_p, y)
                else:
                    variance = _variance_independent(codes, num_groups, weights, y)
        elif agg.kind is AggKind.AVG:
            y = np.asarray(agg.expr.evaluate(table), dtype=np.float64)
            numerator = _grouped_sum(codes, num_groups, weights * y)
            with np.errstate(invalid="ignore", divide="ignore"):
                estimate = np.where(weight_sum > 0, numerator / weight_sum, np.nan)
            if compute_ci and weighted:
                # Delta-method variance of the ratio estimator.
                var_num = _variance_independent(codes, num_groups, weights, y)
                var_den = _variance_independent(codes, num_groups, weights, np.ones(table.num_rows))
                cov = _grouped_sum(codes, num_groups, (weights * weights - weights) * y)
                with np.errstate(invalid="ignore", divide="ignore"):
                    ratio = estimate
                    variance = np.where(
                        weight_sum > 0,
                        (var_num - 2 * ratio * cov + ratio * ratio * var_den) / (weight_sum * weight_sum),
                        np.nan,
                    )
                variance = np.maximum(variance, 0.0)
        elif agg.kind is AggKind.MIN:
            estimate = _grouped_min(codes, num_groups, np.asarray(agg.expr.evaluate(table), dtype=np.float64))
        elif agg.kind is AggKind.MAX:
            estimate = _grouped_max(codes, num_groups, np.asarray(agg.expr.evaluate(table), dtype=np.float64))
        elif agg.kind is AggKind.COUNT_DISTINCT:
            values = agg.expr.evaluate(table)
            raw = _grouped_count_distinct(codes, num_groups, np.asarray(values))
            factor = universe_rescale.get(agg.alias, 1.0)
            estimate = raw * factor
            if compute_ci and weighted and factor > 1.0:
                p = 1.0 / factor
                variance = raw * (1.0 - p) / (p * p)
        else:
            raise PlanError(f"unknown aggregate kind {agg.kind}")
        out[agg.alias] = estimate
        if compute_ci:
            if variance is None:
                variance = np.zeros(num_groups)
            out[agg.alias + CI_SUFFIX] = Z_95 * np.sqrt(np.maximum(variance, 0.0))

    return Table(f"{table.name}_agg", out)


def execute_orderby(table: Table, keys: Sequence[str], descending: bool) -> Table:
    return table.sort_by(keys, descending)


def execute_limit(table: Table, n: int) -> Table:
    return table.head(n)


def execute_union_all(tables: Sequence[Table]) -> Table:
    aligned = []
    any_weights = any(t.has_weights() for t in tables)
    for t in tables:
        # Lineage does not survive a union: children carry lineage from
        # different scans, so there is no common identity space. Samplers
        # above a union fall back to positional randomness.
        t = t.drop_lineage()
        if any_weights and not t.has_weights():
            t = t.with_columns({WEIGHT_COLUMN: np.ones(t.num_rows)})
        aligned.append(t)
    if len(aligned) == 1:
        # Degenerate union: concat would copy every column of the single
        # input just to glue it to nothing.
        return aligned[0]
    return Table.concat(aligned, name=aligned[0].name)
