"""Compiled physical plans: compile once, execute many times.

The logical tree (:mod:`repro.algebra.logical`) is what the optimizer
reasons about; this module is what actually runs. :func:`compile_plan`
lowers a logical tree into a :class:`PhysicalPlan` — a post-order
(topologically sorted) list of :class:`PhysicalOp` entries in which every
per-run derivation has been resolved at compile time:

* each Scan *occurrence* gets its pre-order ordinal and therefore its
  lineage column name (two occurrences of one Scan object — a self-join —
  get two distinct lineage columns, where the old per-run ``scan_indices``
  walk gave up and silently disabled lineage);
* each node gets its stable :data:`~repro.algebra.addressing.NodeAddress`,
  which keys cardinalities, overrides and per-operator metrics from here on
  (no more ``id(node)`` maps);
* sampler specs are validated to be physical (``apply``-able) so a logical
  plan fails at compile time with a clear error instead of mid-execution;
* aggregate estimation annotations (``compute_ci`` etc.) are looked up once.

Execution is an iterative loop over the operator list — no recursion, so
plan depth is bounded by memory rather than the interpreter stack — and
records per-operator rows-in/rows-out and wall time. Because the list is
post-order, each subtree is a contiguous range ending at its root, which
makes override skipping (used by the parallel executor to splice merged
partition results into the upper plan) a range mask rather than a tree
walk.

:class:`PlanCache` is the fingerprint-keyed LRU that makes the executor a
compile-once/run-many service for repeated queries.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.algebra.addressing import NodeAddress, format_address, plan_fingerprint
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.engine import operators
from repro.engine.governance import table_nbytes as _table_nbytes
from repro.engine.table import Database, Table, rowid_column_name
from repro.errors import PlanError, TaskCancelled

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "OperatorMetrics",
    "PhysicalOp",
    "PhysicalPlan",
    "PlanCache",
    "compile_plan",
]

#: Default morsel size (rows) for fused select/project chains. 64 Ki rows of
#: float64 is 512 KiB per column — a handful of columns stay L2/L3-resident
#: through the whole chain instead of streaming each operator over the full
#: partition.
DEFAULT_MORSEL_ROWS = 65536

#: Opcodes eligible for morsel-driven fusion: unary, streamable, row-local
#: (output row *i* depends only on input row *i*). Samplers are excluded —
#: the distinct sampler keeps per-stratum running state across rows, so its
#: decisions are stream-order-global, not morsel-local.
_STREAMABLE = ("select", "project")


@dataclass(frozen=True)
class OperatorMetrics:
    """Measured per-operator profile from one execution."""

    address: NodeAddress
    description: str
    rows_in: int
    rows_out: int
    seconds: float
    #: Samplers only: accuracy telemetry — kind, target probability,
    #: effective pass rate and output Horvitz-Thompson weight mass.
    sampler: Optional[dict] = None
    #: Morsel-driven operators only: number of row-range batches executed
    #: (0 = the operator ran once over its whole input).
    morsels: int = 0

    def summary(self) -> dict:
        out = {
            "address": format_address(self.address),
            "op": self.description,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "seconds": self.seconds,
        }
        if self.sampler is not None:
            out["sampler"] = dict(self.sampler)
        if self.morsels:
            out["morsels"] = self.morsels
        return out


@dataclass(frozen=True)
class PhysicalOp:
    """One entry of the compiled operator pipeline."""

    #: Position in the post-order pipeline (execution order).
    index: int
    #: Stable structural address of the originating logical node.
    address: NodeAddress
    node: LogicalNode
    #: Dispatch tag; one of scan/select/project/sampler/join/aggregate/
    #: orderby/limit/union.
    opcode: str
    #: Pipeline slots holding this operator's direct inputs, in child order.
    child_slots: Tuple[int, ...]
    #: First pipeline index of this operator's subtree. Post-order puts a
    #: subtree at the contiguous range [subtree_start, index].
    subtree_start: int
    #: Scans only: lineage column to attach (None when lineage is disabled).
    lineage_column: Optional[str] = None
    #: Aggregates only: estimation annotations resolved at compile time.
    agg_kwargs: Optional[dict] = None

    def describe(self) -> str:
        return repr(self.node)


@dataclass(frozen=True)
class PhysicalPlan:
    """An executable, reusable compilation of one logical plan.

    A compiled plan holds no run state: :meth:`execute` touches only local
    slots, so one cached instance can serve many runs (and many threads).
    """

    logical: LogicalNode
    fingerprint: str
    ops: Tuple[PhysicalOp, ...]
    address_to_index: Dict[NodeAddress, int]
    #: Scan occurrence address -> pre-order scan ordinal.
    scan_ordinals: Dict[NodeAddress, int]
    attach_rowids: bool = True
    #: Morsel-fusable chains, keyed by first member index: maximal runs of
    #: consecutive streamable unary ops (select/project) each consuming its
    #: predecessor. Detected at compile time; executed morsel-wise at run
    #: time when the chain input is large enough.
    morsel_chains: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def num_operators(self) -> int:
        return len(self.ops)

    def execute(
        self,
        database: Database,
        overrides: Optional[Dict[NodeAddress, Table]] = None,
        record_metrics: bool = False,
        should_abort: Optional[Callable[[], bool]] = None,
        tracer=None,
        morsel_rows: Optional[int] = None,
        governance=None,
    ) -> Tuple[Table, Dict[NodeAddress, int], Tuple[OperatorMetrics, ...]]:
        """Run the pipeline against ``database``.

        ``overrides`` maps a node address to a pre-computed table: that
        operator's subtree is skipped and the table used as its output (the
        parallel executor splices merged partition results in this way).
        ``should_abort`` is polled between operators (and between morsels);
        when it turns true the run raises :class:`TaskCancelled` — the
        cooperative-cancellation hook the task scheduler uses to stop
        speculative losers without waiting out the whole pipeline.
        ``governance`` (a :class:`~repro.engine.governance.GovernanceContext`)
        is checked at the same boundaries, with the executor's live
        intermediate byte count: a fired cancellation token, passed
        deadline or blown memory budget raises the matching typed
        :class:`~repro.errors.GovernanceError`, unwinding the run with all
        partial state discarded.
        ``tracer`` (a :class:`repro.obs.trace.Tracer`) records one span per
        executed operator, carrying its address, rows-in/rows-out and — for
        samplers — the effective rate vs. target ``p`` and output weight
        mass. ``morsel_rows`` sets the batch size for fused streamable
        chains (None = :data:`DEFAULT_MORSEL_ROWS`; 0 disables fusion).
        Returns the raw root table (lineage intact), per-address output
        cardinalities, and per-operator metrics (empty unless requested).
        """
        ops = self.ops
        morsel_rows = DEFAULT_MORSEL_ROWS if morsel_rows is None else int(morsel_rows)
        skipped = bytearray(len(ops))
        if overrides:
            for address in overrides:
                root = self.address_to_index.get(address)
                if root is None:
                    raise PlanError(
                        f"override address {format_address(address)} is not in this plan"
                    )
                for i in range(ops[root].subtree_start, root):
                    skipped[i] = 1

        slots: List[Optional[Table]] = [None] * len(ops)
        cardinalities: Dict[NodeAddress, int] = {}
        metrics: List[OperatorMetrics] = []
        observe = record_metrics or tracer is not None
        # Live-frontier memory ledger for the governance budget: bytes of
        # each materialized slot, maintained only when a context is present.
        governed = governance is not None
        slot_bytes: List[int] = [0] * len(ops) if governed else []
        live_bytes = 0

        index = 0
        while index < len(ops):
            op = ops[index]
            index += 1
            if skipped[op.index]:
                continue
            if should_abort is not None and should_abort():
                raise TaskCancelled(
                    f"execution aborted before operator {format_address(op.address)}"
                )
            if governed:
                governance.check(live_bytes)
            chain = self.morsel_chains.get(op.index) if morsel_rows > 0 else None
            if chain is not None and self._chain_runnable(chain, skipped, overrides, slots, morsel_rows):
                source_slot = ops[chain[0]].child_slots[0]
                self._execute_chain(
                    chain, slots, database, cardinalities, metrics,
                    record_metrics, should_abort, tracer, morsel_rows,
                    governance, live_bytes,
                )
                if governed:
                    live_bytes -= slot_bytes[source_slot]
                    slot_bytes[source_slot] = 0
                    produced = _table_nbytes(slots[chain[-1]])
                    slot_bytes[chain[-1]] = produced
                    live_bytes += produced
                index = chain[-1] + 1
                continue
            started = time.perf_counter() if observe else 0.0
            span = (
                tracer.begin(f"op.{op.opcode}", address=format_address(op.address))
                if tracer is not None
                else None
            )
            overridden = bool(overrides) and op.address in overrides
            if overridden:
                table = overrides[op.address]
                rows_in = table.num_rows
            else:
                inputs = [slots[slot] for slot in op.child_slots]
                if op.opcode == "scan":
                    rows_in = database.table(op.node.table).num_rows
                else:
                    rows_in = sum(t.num_rows for t in inputs)
                table = self._dispatch(op, inputs, database)
            # Each slot feeds exactly one parent; release inputs eagerly so
            # peak memory tracks the live frontier, not the whole plan.
            for slot in op.child_slots:
                slots[slot] = None
                if governed:
                    live_bytes -= slot_bytes[slot]
                    slot_bytes[slot] = 0
            slots[op.index] = table
            if governed:
                produced = _table_nbytes(table)
                slot_bytes[op.index] = produced
                live_bytes += produced
                governance.check(live_bytes)
            cardinalities[op.address] = table.num_rows
            sampler_stats = (
                _sampler_stats(op.node.spec, rows_in, table)
                if observe and op.opcode == "sampler" and not overridden
                else None
            )
            if span is not None:
                attrs = {"rows_in": rows_in, "rows_out": table.num_rows}
                if overridden:
                    attrs["override"] = True
                if sampler_stats is not None:
                    attrs.update(sampler_stats)
                tracer.end(span, **attrs)
            if record_metrics:
                metrics.append(
                    OperatorMetrics(
                        address=op.address,
                        description=op.describe(),
                        rows_in=rows_in,
                        rows_out=table.num_rows,
                        seconds=time.perf_counter() - started,
                        sampler=sampler_stats,
                    )
                )

        result = slots[len(ops) - 1]
        assert result is not None
        return result, cardinalities, tuple(metrics)

    # -- morsel-driven chain execution ----------------------------------------
    def _chain_runnable(self, chain, skipped, overrides, slots, morsel_rows: int) -> bool:
        """Whether a compiled chain can actually run fused for this call.

        A chain falls back to one-op-at-a-time execution when any member is
        masked out or overridden (the parallel executor splices results at
        arbitrary addresses) or when the input is small enough that a single
        pass already fits in cache.
        """
        if any(skipped[m] for m in chain):
            return False
        if overrides and any(self.ops[m].address in overrides for m in chain):
            return False
        source = slots[self.ops[chain[0]].child_slots[0]]
        return source is not None and source.num_rows > morsel_rows

    def _execute_chain(
        self,
        chain: Tuple[int, ...],
        slots: List[Optional[Table]],
        database: Database,
        cardinalities: Dict[NodeAddress, int],
        metrics: List[OperatorMetrics],
        record_metrics: bool,
        should_abort: Optional[Callable[[], bool]],
        tracer,
        morsel_rows: int,
        governance=None,
        live_bytes: int = 0,
    ) -> None:
        """Run a fused select/project chain morsel-by-morsel.

        Each morsel is a zero-copy row-range view of the chain's input; the
        whole chain runs over one morsel before the next is touched, so the
        working set stays cache-resident. Because every member is row-local
        (see :data:`_STREAMABLE`), concatenating the per-morsel outputs is
        bit-identical to running each operator over the full input.
        ``governance`` is checked at every morsel boundary — the tightest
        cooperative-cancellation grain the engine has — against
        ``live_bytes`` (the caller's slot frontier) plus the bytes this
        chain has accumulated so far.
        """
        members = [self.ops[m] for m in chain]
        source_slot = members[0].child_slots[0]
        source = slots[source_slot]
        assert source is not None
        observe = record_metrics or tracer is not None

        n = len(members)
        rows_in = [0] * n
        rows_out = [0] * n
        seconds = [0.0] * n
        pieces: List[Table] = []
        piece_bytes = 0
        num_morsels = 0
        for start in range(0, source.num_rows, morsel_rows):
            if should_abort is not None and should_abort():
                raise TaskCancelled(
                    f"execution aborted at morsel {num_morsels} of chain "
                    f"{format_address(members[0].address)}"
                )
            if governance is not None:
                governance.check(live_bytes + piece_bytes)
            num_morsels += 1
            table = source.slice(start, start + morsel_rows)
            for i, op in enumerate(members):
                started = time.perf_counter() if observe else 0.0
                rows_in[i] += table.num_rows
                table = self._dispatch(op, [table], database)
                rows_out[i] += table.num_rows
                if observe:
                    seconds[i] += time.perf_counter() - started
            pieces.append(table)
            if governance is not None:
                piece_bytes += _table_nbytes(table)
        result = Table.concat(pieces, name=pieces[-1].name)

        slots[source_slot] = None
        slots[chain[-1]] = result
        for i, op in enumerate(members):
            cardinalities[op.address] = rows_out[i] if i < n - 1 else result.num_rows
            if tracer is not None:
                span = tracer.begin(f"op.{op.opcode}", address=format_address(op.address))
                tracer.end(
                    span, rows_in=rows_in[i], rows_out=rows_out[i], morsels=num_morsels
                )
            if record_metrics:
                metrics.append(
                    OperatorMetrics(
                        address=op.address,
                        description=op.describe(),
                        rows_in=rows_in[i],
                        rows_out=rows_out[i],
                        seconds=seconds[i],
                        morsels=num_morsels,
                    )
                )

    # -- operator dispatch ----------------------------------------------------
    def _dispatch(self, op: PhysicalOp, inputs: List[Table], database: Database) -> Table:
        node = op.node
        if op.opcode == "scan":
            out = database.table(node.table).project(node.output_columns())
            if op.lineage_column is not None and not out.has_lineage():
                out = out.with_columns(
                    {op.lineage_column: np.arange(out.num_rows, dtype=np.int64)}
                )
            return out
        if op.opcode == "select":
            return operators.execute_select(inputs[0], node.predicate)
        if op.opcode == "project":
            return operators.execute_project(inputs[0], node.mapping)
        if op.opcode == "sampler":
            return node.spec.apply(inputs[0])
        if op.opcode == "join":
            return operators.execute_join(
                inputs[0], inputs[1], node.left_keys, node.right_keys, node.how
            )
        if op.opcode == "aggregate":
            return operators.execute_aggregate(
                inputs[0], node.group_by, node.aggs, **op.agg_kwargs
            )
        if op.opcode == "orderby":
            return operators.execute_orderby(inputs[0], node.keys, node.descending)
        if op.opcode == "limit":
            return operators.execute_limit(inputs[0], node.n)
        if op.opcode == "union":
            return operators.execute_union_all(inputs)
        raise PlanError(f"compiled plan has unknown opcode {op.opcode!r}")


def _sampler_stats(spec, rows_in: int, out: Table) -> dict:
    """Accuracy telemetry of one sampler execution.

    ``weight_mass`` is the sum of output Horvitz-Thompson weights — an
    unbiased estimate of the sampler's input cardinality, so comparing it
    to ``rows_in`` shows the estimator's realized accuracy at this node.
    """
    target = getattr(spec, "p", None)
    if target is None:
        target = spec.expected_fraction()
    return {
        "kind": spec.kind,
        "target_p": float(target),
        "effective_rate": (out.num_rows / rows_in) if rows_in > 0 else 0.0,
        "weight_mass": float(out.weights().sum())
        if out.has_weights()
        else float(out.num_rows),
    }


_OPCODES = (
    (Scan, "scan"),
    (Select, "select"),
    (Project, "project"),
    (SamplerNode, "sampler"),
    (Join, "join"),
    (Aggregate, "aggregate"),
    (OrderBy, "orderby"),
    (Limit, "limit"),
    (UnionAll, "union"),
)


def _opcode_of(node: LogicalNode) -> str:
    for klass, opcode in _OPCODES:
        if isinstance(node, klass):
            return opcode
    raise PlanError(f"executor cannot handle node {type(node).__name__}")


def compile_plan(
    plan: LogicalNode,
    attach_rowids: bool = True,
    fingerprint: Optional[str] = None,
) -> PhysicalPlan:
    """Lower a logical tree into an executable :class:`PhysicalPlan`.

    Raises :class:`PlanError` if the plan carries logical (uncosted)
    sampler state or an unknown operator — compile-time, not mid-run.
    """
    ops: List[PhysicalOp] = []
    address_to_index: Dict[NodeAddress, int] = {}
    scan_ordinals: Dict[NodeAddress, int] = {}

    def lower(node: LogicalNode, address: NodeAddress) -> int:
        subtree_start = len(ops)
        child_slots = tuple(
            lower(child, address + (i,)) for i, child in enumerate(node.children)
        )
        opcode = _opcode_of(node)
        lineage_column = None
        agg_kwargs = None
        if opcode == "scan":
            ordinal = len(scan_ordinals)
            scan_ordinals[address] = ordinal
            if attach_rowids:
                lineage_column = rowid_column_name(ordinal)
        elif opcode == "sampler":
            if not hasattr(node.spec, "apply"):
                raise PlanError(
                    f"sampler spec {node.spec!r} is logical; run ASALQA costing "
                    "to obtain a physical plan"
                )
        elif opcode == "aggregate":
            agg_kwargs = {
                "compute_ci": getattr(node, "compute_ci", False),
                "universe_rescale": getattr(node, "universe_rescale", None),
                "universe_variance": getattr(node, "universe_variance", None),
            }
        index = len(ops)
        ops.append(
            PhysicalOp(
                index=index,
                address=address,
                node=node,
                opcode=opcode,
                child_slots=child_slots,
                subtree_start=subtree_start,
                lineage_column=lineage_column,
                agg_kwargs=agg_kwargs,
            )
        )
        address_to_index[address] = index
        return index

    lower(plan, ())
    return PhysicalPlan(
        logical=plan,
        fingerprint=fingerprint if fingerprint is not None else plan_fingerprint(plan),
        ops=tuple(ops),
        address_to_index=address_to_index,
        scan_ordinals=scan_ordinals,
        attach_rowids=attach_rowids,
        morsel_chains=_find_morsel_chains(ops),
    )


def _find_morsel_chains(ops: List[PhysicalOp]) -> Dict[int, Tuple[int, ...]]:
    """Maximal runs of consecutive streamable unary ops, keyed by first index.

    Post-order guarantees a unary operator's child sits at ``index - 1``, so
    a filter→project chain is literally a contiguous slice of the pipeline.
    Single streamable ops are not worth fusing (one morselized pass plus a
    concat is strictly more work than one whole-input pass); only chains of
    two or more become morsel-driven.
    """
    runs: List[List[int]] = []
    for op in ops:
        if op.opcode in _STREAMABLE and op.child_slots == (op.index - 1,):
            if runs and runs[-1][-1] == op.index - 1:
                runs[-1].append(op.index)
            else:
                runs.append([op.index])
    return {run[0]: tuple(run) for run in runs if len(run) >= 2}


@dataclass
class PlanCache:
    """Fingerprint-keyed LRU cache of compiled plans.

    ``capacity=0`` disables caching (every lookup misses). Hit, miss and
    eviction counts are kept for reporting.

    Thread-safe: the query service shares one cache across every session's
    worker thread, and an LRU is mutate-on-read (``move_to_end``), so *all*
    access — including lookups — takes the cache lock. Cached
    :class:`PhysicalPlan` values are immutable, so returning one outside
    the lock is safe.
    """

    capacity: int = 128
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _entries: "OrderedDict[str, PhysicalPlan]" = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def get(self, fingerprint: str) -> Optional[PhysicalPlan]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, physical: PhysicalPlan) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
            self._entries[fingerprint] = physical
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters without dropping entries —
        the harvest boundary between a warm-up pass and a measured pass."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
