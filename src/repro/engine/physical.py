"""Compiled physical plans: compile once, execute many times.

The logical tree (:mod:`repro.algebra.logical`) is what the optimizer
reasons about; this module is what actually runs. :func:`compile_plan`
lowers a logical tree into a :class:`PhysicalPlan` — a post-order
(topologically sorted) list of :class:`PhysicalOp` entries in which every
per-run derivation has been resolved at compile time:

* each Scan *occurrence* gets its pre-order ordinal and therefore its
  lineage column name (two occurrences of one Scan object — a self-join —
  get two distinct lineage columns, where the old per-run ``scan_indices``
  walk gave up and silently disabled lineage);
* each node gets its stable :data:`~repro.algebra.addressing.NodeAddress`,
  which keys cardinalities, overrides and per-operator metrics from here on
  (no more ``id(node)`` maps);
* sampler specs are validated to be physical (``apply``-able) so a logical
  plan fails at compile time with a clear error instead of mid-execution;
* aggregate estimation annotations (``compute_ci`` etc.) are looked up once.

Execution is an iterative loop over the operator list — no recursion, so
plan depth is bounded by memory rather than the interpreter stack — and
records per-operator rows-in/rows-out and wall time. Because the list is
post-order, each subtree is a contiguous range ending at its root, which
makes override skipping (used by the parallel executor to splice merged
partition results into the upper plan) a range mask rather than a tree
walk.

:class:`PlanCache` is the fingerprint-keyed LRU that makes the executor a
compile-once/run-many service for repeated queries.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.algebra.addressing import NodeAddress, format_address, plan_fingerprint
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.engine import operators
from repro.engine.table import Database, Table, rowid_column_name
from repro.errors import PlanError, TaskCancelled

__all__ = [
    "OperatorMetrics",
    "PhysicalOp",
    "PhysicalPlan",
    "PlanCache",
    "compile_plan",
]


@dataclass(frozen=True)
class OperatorMetrics:
    """Measured per-operator profile from one execution."""

    address: NodeAddress
    description: str
    rows_in: int
    rows_out: int
    seconds: float
    #: Samplers only: accuracy telemetry — kind, target probability,
    #: effective pass rate and output Horvitz-Thompson weight mass.
    sampler: Optional[dict] = None

    def summary(self) -> dict:
        out = {
            "address": format_address(self.address),
            "op": self.description,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "seconds": self.seconds,
        }
        if self.sampler is not None:
            out["sampler"] = dict(self.sampler)
        return out


@dataclass(frozen=True)
class PhysicalOp:
    """One entry of the compiled operator pipeline."""

    #: Position in the post-order pipeline (execution order).
    index: int
    #: Stable structural address of the originating logical node.
    address: NodeAddress
    node: LogicalNode
    #: Dispatch tag; one of scan/select/project/sampler/join/aggregate/
    #: orderby/limit/union.
    opcode: str
    #: Pipeline slots holding this operator's direct inputs, in child order.
    child_slots: Tuple[int, ...]
    #: First pipeline index of this operator's subtree. Post-order puts a
    #: subtree at the contiguous range [subtree_start, index].
    subtree_start: int
    #: Scans only: lineage column to attach (None when lineage is disabled).
    lineage_column: Optional[str] = None
    #: Aggregates only: estimation annotations resolved at compile time.
    agg_kwargs: Optional[dict] = None

    def describe(self) -> str:
        return repr(self.node)


@dataclass(frozen=True)
class PhysicalPlan:
    """An executable, reusable compilation of one logical plan.

    A compiled plan holds no run state: :meth:`execute` touches only local
    slots, so one cached instance can serve many runs (and many threads).
    """

    logical: LogicalNode
    fingerprint: str
    ops: Tuple[PhysicalOp, ...]
    address_to_index: Dict[NodeAddress, int]
    #: Scan occurrence address -> pre-order scan ordinal.
    scan_ordinals: Dict[NodeAddress, int]
    attach_rowids: bool = True

    @property
    def num_operators(self) -> int:
        return len(self.ops)

    def execute(
        self,
        database: Database,
        overrides: Optional[Dict[NodeAddress, Table]] = None,
        record_metrics: bool = False,
        should_abort: Optional[Callable[[], bool]] = None,
        tracer=None,
    ) -> Tuple[Table, Dict[NodeAddress, int], Tuple[OperatorMetrics, ...]]:
        """Run the pipeline against ``database``.

        ``overrides`` maps a node address to a pre-computed table: that
        operator's subtree is skipped and the table used as its output (the
        parallel executor splices merged partition results in this way).
        ``should_abort`` is polled between operators; when it turns true the
        run raises :class:`TaskCancelled` — the cooperative-cancellation
        hook the task scheduler uses to stop speculative losers without
        waiting out the whole pipeline. ``tracer`` (a
        :class:`repro.obs.trace.Tracer`) records one span per executed
        operator, carrying its address, rows-in/rows-out and — for samplers
        — the effective rate vs. target ``p`` and output weight mass.
        Returns the raw root table (lineage intact), per-address output
        cardinalities, and per-operator metrics (empty unless requested).
        """
        ops = self.ops
        skipped = bytearray(len(ops))
        if overrides:
            for address in overrides:
                root = self.address_to_index.get(address)
                if root is None:
                    raise PlanError(
                        f"override address {format_address(address)} is not in this plan"
                    )
                for i in range(ops[root].subtree_start, root):
                    skipped[i] = 1

        slots: List[Optional[Table]] = [None] * len(ops)
        cardinalities: Dict[NodeAddress, int] = {}
        metrics: List[OperatorMetrics] = []
        observe = record_metrics or tracer is not None

        for op in ops:
            if skipped[op.index]:
                continue
            if should_abort is not None and should_abort():
                raise TaskCancelled(
                    f"execution aborted before operator {format_address(op.address)}"
                )
            started = time.perf_counter() if observe else 0.0
            span = (
                tracer.begin(f"op.{op.opcode}", address=format_address(op.address))
                if tracer is not None
                else None
            )
            overridden = bool(overrides) and op.address in overrides
            if overridden:
                table = overrides[op.address]
                rows_in = table.num_rows
            else:
                inputs = [slots[slot] for slot in op.child_slots]
                if op.opcode == "scan":
                    rows_in = database.table(op.node.table).num_rows
                else:
                    rows_in = sum(t.num_rows for t in inputs)
                table = self._dispatch(op, inputs, database)
            # Each slot feeds exactly one parent; release inputs eagerly so
            # peak memory tracks the live frontier, not the whole plan.
            for slot in op.child_slots:
                slots[slot] = None
            slots[op.index] = table
            cardinalities[op.address] = table.num_rows
            sampler_stats = (
                _sampler_stats(op.node.spec, rows_in, table)
                if observe and op.opcode == "sampler" and not overridden
                else None
            )
            if span is not None:
                attrs = {"rows_in": rows_in, "rows_out": table.num_rows}
                if overridden:
                    attrs["override"] = True
                if sampler_stats is not None:
                    attrs.update(sampler_stats)
                tracer.end(span, **attrs)
            if record_metrics:
                metrics.append(
                    OperatorMetrics(
                        address=op.address,
                        description=op.describe(),
                        rows_in=rows_in,
                        rows_out=table.num_rows,
                        seconds=time.perf_counter() - started,
                        sampler=sampler_stats,
                    )
                )

        result = slots[len(ops) - 1]
        assert result is not None
        return result, cardinalities, tuple(metrics)

    # -- operator dispatch ----------------------------------------------------
    def _dispatch(self, op: PhysicalOp, inputs: List[Table], database: Database) -> Table:
        node = op.node
        if op.opcode == "scan":
            out = database.table(node.table).project(node.output_columns())
            if op.lineage_column is not None and not out.has_lineage():
                out = out.with_columns(
                    {op.lineage_column: np.arange(out.num_rows, dtype=np.int64)}
                )
            return out
        if op.opcode == "select":
            return operators.execute_select(inputs[0], node.predicate)
        if op.opcode == "project":
            return operators.execute_project(inputs[0], node.mapping)
        if op.opcode == "sampler":
            return node.spec.apply(inputs[0])
        if op.opcode == "join":
            return operators.execute_join(
                inputs[0], inputs[1], node.left_keys, node.right_keys, node.how
            )
        if op.opcode == "aggregate":
            return operators.execute_aggregate(
                inputs[0], node.group_by, node.aggs, **op.agg_kwargs
            )
        if op.opcode == "orderby":
            return operators.execute_orderby(inputs[0], node.keys, node.descending)
        if op.opcode == "limit":
            return operators.execute_limit(inputs[0], node.n)
        if op.opcode == "union":
            return operators.execute_union_all(inputs)
        raise PlanError(f"compiled plan has unknown opcode {op.opcode!r}")


def _sampler_stats(spec, rows_in: int, out: Table) -> dict:
    """Accuracy telemetry of one sampler execution.

    ``weight_mass`` is the sum of output Horvitz-Thompson weights — an
    unbiased estimate of the sampler's input cardinality, so comparing it
    to ``rows_in`` shows the estimator's realized accuracy at this node.
    """
    target = getattr(spec, "p", None)
    if target is None:
        target = spec.expected_fraction()
    return {
        "kind": spec.kind,
        "target_p": float(target),
        "effective_rate": (out.num_rows / rows_in) if rows_in > 0 else 0.0,
        "weight_mass": float(out.weights().sum())
        if out.has_weights()
        else float(out.num_rows),
    }


_OPCODES = (
    (Scan, "scan"),
    (Select, "select"),
    (Project, "project"),
    (SamplerNode, "sampler"),
    (Join, "join"),
    (Aggregate, "aggregate"),
    (OrderBy, "orderby"),
    (Limit, "limit"),
    (UnionAll, "union"),
)


def _opcode_of(node: LogicalNode) -> str:
    for klass, opcode in _OPCODES:
        if isinstance(node, klass):
            return opcode
    raise PlanError(f"executor cannot handle node {type(node).__name__}")


def compile_plan(
    plan: LogicalNode,
    attach_rowids: bool = True,
    fingerprint: Optional[str] = None,
) -> PhysicalPlan:
    """Lower a logical tree into an executable :class:`PhysicalPlan`.

    Raises :class:`PlanError` if the plan carries logical (uncosted)
    sampler state or an unknown operator — compile-time, not mid-run.
    """
    ops: List[PhysicalOp] = []
    address_to_index: Dict[NodeAddress, int] = {}
    scan_ordinals: Dict[NodeAddress, int] = {}

    def lower(node: LogicalNode, address: NodeAddress) -> int:
        subtree_start = len(ops)
        child_slots = tuple(
            lower(child, address + (i,)) for i, child in enumerate(node.children)
        )
        opcode = _opcode_of(node)
        lineage_column = None
        agg_kwargs = None
        if opcode == "scan":
            ordinal = len(scan_ordinals)
            scan_ordinals[address] = ordinal
            if attach_rowids:
                lineage_column = rowid_column_name(ordinal)
        elif opcode == "sampler":
            if not hasattr(node.spec, "apply"):
                raise PlanError(
                    f"sampler spec {node.spec!r} is logical; run ASALQA costing "
                    "to obtain a physical plan"
                )
        elif opcode == "aggregate":
            agg_kwargs = {
                "compute_ci": getattr(node, "compute_ci", False),
                "universe_rescale": getattr(node, "universe_rescale", None),
                "universe_variance": getattr(node, "universe_variance", None),
            }
        index = len(ops)
        ops.append(
            PhysicalOp(
                index=index,
                address=address,
                node=node,
                opcode=opcode,
                child_slots=child_slots,
                subtree_start=subtree_start,
                lineage_column=lineage_column,
                agg_kwargs=agg_kwargs,
            )
        )
        address_to_index[address] = index
        return index

    lower(plan, ())
    return PhysicalPlan(
        logical=plan,
        fingerprint=fingerprint if fingerprint is not None else plan_fingerprint(plan),
        ops=tuple(ops),
        address_to_index=address_to_index,
        scan_ordinals=scan_ordinals,
        attach_rowids=attach_rowids,
    )


@dataclass
class PlanCache:
    """Fingerprint-keyed LRU cache of compiled plans.

    ``capacity=0`` disables caching (every lookup misses). Hit, miss and
    eviction counts are kept for reporting.

    Thread-safe: the query service shares one cache across every session's
    worker thread, and an LRU is mutate-on-read (``move_to_end``), so *all*
    access — including lookups — takes the cache lock. Cached
    :class:`PhysicalPlan` values are immutable, so returning one outside
    the lock is safe.
    """

    capacity: int = 128
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _entries: "OrderedDict[str, PhysicalPlan]" = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def get(self, fingerprint: str) -> Optional[PhysicalPlan]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, physical: PhysicalPlan) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
            self._entries[fingerprint] = physical
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters without dropping entries —
        the harvest boundary between a warm-up pass and a measured pass."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
