"""End-to-end planning: Baseline QO and Quickr QO over the same substrate.

``QuickrPlanner`` is the library's main entry point:

* ``plan_baseline(query)`` — normalize (select push-down, project pruning)
  and reorder joins: the production optimizer *without* samplers.
* ``plan(query)`` — the same relational preparation, then ASALQA explores
  sampled alternatives natively (the paper's option (b): samplers are
  first-class operators inside the optimizer, not an a-posteriori edit).

Both return plans over the identical substrate, so measured differences
come only from the samplers — mirroring the paper's evaluation, whose
Baseline "is identical to Quickr except for samplers".

Planning is deterministic in the submitted plan, so both entry points keep
a canonical-fingerprint-keyed LRU of their results: a repeated query (the
dominant pattern in the paper's production trace) skips normalization, join
reordering and the ASALQA exploration entirely. Pass ``plan_cache_size=0``
to disable.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.algebra.addressing import plan_fingerprint
from repro.algebra.builder import Query
from repro.algebra.logical import LogicalNode
from repro.core.asalqa import Asalqa, AsalqaOptions, AsalqaResult
from repro.engine.metrics import PlanCost
from repro.engine.table import Database
from repro.obs import log as obs_log
from repro.obs.trace import maybe_span
from repro.optimizer.join_order import reorder_joins
from repro.optimizer.rules import normalize
from repro.stats.catalog import Catalog
from repro.stats.derivation import StatsDeriver

__all__ = ["BaselinePlan", "QuickrPlanner"]

_LOG = obs_log.logger("optimizer.planner")


@dataclass
class BaselinePlan:
    """A relationally-optimized plan without samplers."""

    query_name: str
    plan: LogicalNode
    estimated_cost: PlanCost
    qo_time_seconds: float


class QuickrPlanner:
    """Shared-substrate planner producing Baseline and Quickr plans."""

    def __init__(
        self,
        database: Database,
        options: Optional[AsalqaOptions] = None,
        reorder: bool = True,
        plan_cache_size: int = 128,
    ):
        self.database = database
        self.catalog = Catalog(database)
        self.options = options or AsalqaOptions()
        self.reorder = reorder
        self._asalqa = Asalqa(self.catalog, self.options)
        self._cache_capacity = int(plan_cache_size)
        self._plan_cache: "OrderedDict[tuple, object]" = OrderedDict()
        # The memo is an LRU (mutate-on-read); the query service plans from
        # many session threads against one planner, so all memo access is
        # serialized. Planning itself stays outside the lock.
        self._memo_lock = threading.Lock()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # -- relational preparation shared by both planners ----------------------
    def prepare(self, query: Query) -> Query:
        with maybe_span("planner.normalize", query=query.name):
            plan = normalize(query.plan)
        if self.reorder:
            with maybe_span("planner.reorder_joins", query=query.name):
                plan = reorder_joins(plan, self._asalqa.deriver)
        return Query(query.name, plan)

    def _cached(self, kind: str, query: Query):
        """Fingerprint-keyed memo over the submitted (pre-normalization)
        plan; planning is deterministic, so equal plans get equal results."""
        if self._cache_capacity <= 0:
            return None, None
        key = (kind, plan_fingerprint(query.plan))
        with self._memo_lock:
            hit = self._plan_cache.get(key)
            if hit is not None:
                self._plan_cache.move_to_end(key)
                self.plan_cache_hits += 1
            else:
                self.plan_cache_misses += 1
        _LOG.debug("plan cache %s (%s) for %s",
                   "hit" if hit is not None else "miss", kind, query.name)
        return key, hit

    def reset_cache_stats(self) -> None:
        """Zero the hit/miss counters (entries stay cached) — a harvest
        boundary for benchmarks that separate cold and warm phases."""
        with self._memo_lock:
            self.plan_cache_hits = 0
            self.plan_cache_misses = 0

    def _remember(self, key, value):
        if key is None:
            return
        with self._memo_lock:
            self._plan_cache[key] = value
            while len(self._plan_cache) > self._cache_capacity:
                self._plan_cache.popitem(last=False)

    def plan_baseline(self, query: Query) -> BaselinePlan:
        """The production QO without samplers."""
        key, hit = self._cached("baseline", query)
        if hit is not None:
            return hit
        start = time.perf_counter()
        with maybe_span("planner.plan_baseline", query=query.name):
            prepared = self.prepare(query)
            cost = self._asalqa._cost(prepared.plan)
        result = BaselinePlan(
            query_name=query.name,
            plan=prepared.plan,
            estimated_cost=cost,
            qo_time_seconds=time.perf_counter() - start,
        )
        self._remember(key, result)
        return result

    def plan(self, query: Query) -> AsalqaResult:
        """The Quickr QO: relational preparation plus ASALQA."""
        key, hit = self._cached("quickr", query)
        if hit is not None:
            return hit
        with maybe_span("planner.plan", query=query.name) as span:
            prepared = self.prepare(query)
            result = self._asalqa.optimize(prepared)
            if span is not None:
                span.attributes.update(
                    approximable=result.approximable,
                    alternatives=result.alternatives_explored,
                    samplers=",".join(result.sampler_kinds()),
                )
        self._remember(key, result)
        return result

    @property
    def deriver(self) -> StatsDeriver:
        return self._asalqa.deriver
