"""End-to-end planning: Baseline QO and Quickr QO over the same substrate.

``QuickrPlanner`` is the library's main entry point:

* ``plan_baseline(query)`` — normalize (select push-down, project pruning)
  and reorder joins: the production optimizer *without* samplers.
* ``plan(query)`` — the same relational preparation, then ASALQA explores
  sampled alternatives natively (the paper's option (b): samplers are
  first-class operators inside the optimizer, not an a-posteriori edit).

Both return plans over the identical substrate, so measured differences
come only from the samplers — mirroring the paper's evaluation, whose
Baseline "is identical to Quickr except for samplers".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.algebra.builder import Query
from repro.algebra.logical import LogicalNode
from repro.core.asalqa import Asalqa, AsalqaOptions, AsalqaResult
from repro.engine.metrics import ClusterConfig, PlanCost
from repro.engine.table import Database
from repro.optimizer.join_order import reorder_joins
from repro.optimizer.rules import normalize
from repro.stats.catalog import Catalog
from repro.stats.derivation import StatsDeriver

__all__ = ["BaselinePlan", "QuickrPlanner"]


@dataclass
class BaselinePlan:
    """A relationally-optimized plan without samplers."""

    query_name: str
    plan: LogicalNode
    estimated_cost: PlanCost
    qo_time_seconds: float


class QuickrPlanner:
    """Shared-substrate planner producing Baseline and Quickr plans."""

    def __init__(
        self,
        database: Database,
        options: Optional[AsalqaOptions] = None,
        reorder: bool = True,
    ):
        self.database = database
        self.catalog = Catalog(database)
        self.options = options or AsalqaOptions()
        self.reorder = reorder
        self._asalqa = Asalqa(self.catalog, self.options)

    # -- relational preparation shared by both planners ----------------------
    def prepare(self, query: Query) -> Query:
        plan = normalize(query.plan)
        if self.reorder:
            plan = reorder_joins(plan, self._asalqa.deriver)
        return Query(query.name, plan)

    def plan_baseline(self, query: Query) -> BaselinePlan:
        """The production QO without samplers."""
        start = time.perf_counter()
        prepared = self.prepare(query)
        cost = self._asalqa._cost(prepared.plan)
        return BaselinePlan(
            query_name=query.name,
            plan=prepared.plan,
            estimated_cost=cost,
            qo_time_seconds=time.perf_counter() - start,
        )

    def plan(self, query: Query) -> AsalqaResult:
        """The Quickr QO: relational preparation plus ASALQA."""
        prepared = self.prepare(query)
        return self._asalqa.optimize(prepared)

    @property
    def deriver(self) -> StatsDeriver:
        return self._asalqa.deriver
