"""Relational query-optimization substrate shared by Baseline and Quickr."""

from repro.optimizer.join_order import flatten_join_tree, reorder_joins
from repro.optimizer.planner import BaselinePlan, QuickrPlanner
from repro.optimizer.rules import (
    fuse_adjacent_selects,
    normalize,
    prune_identity_projects,
    push_selects_down,
    split_conjuncts,
)

__all__ = [
    "flatten_join_tree",
    "reorder_joins",
    "BaselinePlan",
    "QuickrPlanner",
    "fuse_adjacent_selects",
    "normalize",
    "prune_identity_projects",
    "push_selects_down",
    "split_conjuncts",
]
