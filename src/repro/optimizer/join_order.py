"""Greedy cost-based join ordering.

Inner-join chains are flattened into a join graph (leaves plus equi-join
edges) and rebuilt left-deep: start from the cheapest connected pair, then
repeatedly attach the relation that minimizes the estimated intermediate
cardinality. This mirrors what a production optimizer's join enumeration
achieves on the star/snowflake shapes of the evaluation workloads — small
dimension tables join early, so they become broadcast joins, and fact-fact
joins move as late as their predicates allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.algebra.logical import Join, LogicalNode
from repro.stats.derivation import StatsDeriver

__all__ = ["flatten_join_tree", "reorder_joins"]


@dataclass
class _JoinEdge:
    left_leaf: int
    right_leaf: int
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]


def flatten_join_tree(node: LogicalNode) -> Optional[Tuple[List[LogicalNode], List[_JoinEdge]]]:
    """Flatten a maximal chain of inner joins into (leaves, edges).

    Returns None when the node is not an inner join (nothing to reorder).
    Non-join children become leaves; outer joins act as chain boundaries.
    """
    if not isinstance(node, Join) or node.how != "inner":
        return None
    leaves: List[LogicalNode] = []
    edges: List[_JoinEdge] = []

    def leaf_owning(column: str) -> int:
        for index, leaf in enumerate(leaves):
            if column in leaf.output_columns():
                return index
        raise LookupError(column)

    class _Abort(Exception):
        """Chain contains a key we cannot attribute to a single leaf."""

    def visit(current: LogicalNode) -> None:
        if isinstance(current, Join) and current.how == "inner":
            visit(current.left)
            visit(current.right)
            try:
                li = leaf_owning(current.left_keys[0])
                ri = leaf_owning(current.right_keys[0])
            except LookupError:
                raise _Abort from None
            edges.append(_JoinEdge(li, ri, current.left_keys, current.right_keys))
        else:
            leaves.append(current)

    try:
        visit(node)
    except _Abort:
        return None
    if len(leaves) < 3:
        return None
    return leaves, edges


def reorder_joins(node: LogicalNode, deriver: StatsDeriver) -> LogicalNode:
    """Recursively reorder every inner-join chain in the plan."""
    if node.children:
        node = node.with_children([reorder_joins(c, deriver) for c in node.children])
    flat = flatten_join_tree(node)
    if flat is None:
        return node
    leaves, edges = flat
    if not edges:
        return node
    return _greedy_left_deep(leaves, edges, deriver) or node


def _greedy_left_deep(
    leaves: List[LogicalNode], edges: List[_JoinEdge], deriver: StatsDeriver
) -> Optional[LogicalNode]:
    remaining: Set[int] = set(range(len(leaves)))
    by_leaf: Dict[int, List[_JoinEdge]] = {}
    for edge in edges:
        by_leaf.setdefault(edge.left_leaf, []).append(edge)
        by_leaf.setdefault(edge.right_leaf, []).append(edge)

    def rows(plan: LogicalNode) -> float:
        return deriver.stats_for(plan).rows

    def join_pair(current: LogicalNode, joined: Set[int], candidate: int) -> Optional[Join]:
        """Join the current left-deep tree with leaf ``candidate`` using
        every applicable edge's key pairs."""
        left_keys: List[str] = []
        right_keys: List[str] = []
        for edge in by_leaf.get(candidate, []):
            other = edge.left_leaf if edge.right_leaf == candidate else edge.right_leaf
            if other not in joined:
                continue
            if edge.right_leaf == candidate:
                left_keys.extend(edge.left_keys)
                right_keys.extend(edge.right_keys)
            else:
                left_keys.extend(edge.right_keys)
                right_keys.extend(edge.left_keys)
        if not left_keys:
            return None
        try:
            return Join(current, leaves[candidate], left_keys, right_keys, "inner")
        except Exception:
            return None

    # Seed with the connected pair that yields the smallest output.
    best_seed: Optional[Tuple[float, _JoinEdge]] = None
    for edge in edges:
        try:
            seed = Join(
                leaves[edge.left_leaf], leaves[edge.right_leaf], edge.left_keys, edge.right_keys, "inner"
            )
        except Exception:
            continue
        score = rows(seed)
        if best_seed is None or score < best_seed[0]:
            best_seed = (score, edge)
    if best_seed is None:
        return None
    _, seed_edge = best_seed
    current: LogicalNode = Join(
        leaves[seed_edge.left_leaf],
        leaves[seed_edge.right_leaf],
        seed_edge.left_keys,
        seed_edge.right_keys,
        "inner",
    )
    joined = {seed_edge.left_leaf, seed_edge.right_leaf}
    remaining -= joined

    while remaining:
        best: Optional[Tuple[float, int, Join]] = None
        for candidate in remaining:
            attempt = join_pair(current, joined, candidate)
            if attempt is None:
                continue
            score = rows(attempt)
            if best is None or score < best[0]:
                best = (score, candidate, attempt)
        if best is None:
            # Disconnected graph (should not happen for valid plans): give up.
            return None
        _, candidate, current = best
        joined.add(candidate)
        remaining.discard(candidate)
    return current
