"""Classical relational rewrites used by both Baseline and Quickr plans.

The paper's Baseline is a production Cascades optimizer; ours applies the
standard rewrites that matter for the cost profile of these workloads:

* conjunct splitting and select push-down (predicates sink to the deepest
  node whose schema satisfies them — in particular below joins, which is
  what makes fact-dimension joins cheap and gives Quickr's samplers
  first-pass locations to land on);
* adjacent-select fusion;
* pruning of projections that are pure identity maps.
"""

from __future__ import annotations

from typing import List

from repro.algebra.expressions import And, Col, Expr
from repro.algebra.logical import Join, LogicalNode, Project, Select, UnionAll

__all__ = ["split_conjuncts", "push_selects_down", "prune_identity_projects", "normalize"]


def split_conjuncts(predicate: Expr) -> List[Expr]:
    """Flatten a conjunctive predicate into its literal conjuncts."""
    if isinstance(predicate, And):
        return predicate.conjuncts()
    return [predicate]


def _combine(conjuncts: List[Expr]) -> Expr:
    combined = conjuncts[0]
    for extra in conjuncts[1:]:
        combined = And(combined, extra)
    return combined


def _sink(node: LogicalNode, predicate: Expr) -> LogicalNode:
    """Push one conjunct as deep as its column requirements allow."""
    needed = predicate.columns()

    if isinstance(node, Select):
        return Select(_sink(node.child, predicate), node.predicate)

    if isinstance(node, Join):
        left_cols = set(node.left.output_columns())
        right_cols = set(node.right.output_columns())
        if needed <= left_cols:
            return node.with_children([_sink(node.left, predicate), node.right])
        if needed <= right_cols:
            return node.with_children([node.left, _sink(node.right, predicate)])
        return Select(node, predicate)

    if isinstance(node, Project):
        renames = node.identity_passthrough()
        if needed <= set(renames):
            pushed = predicate.rename({name: renames[name] for name in needed})
            return Project(_sink(node.child, pushed), node.mapping)
        return Select(node, predicate)

    if isinstance(node, UnionAll):
        return UnionAll([_sink(child, predicate) for child in node.children])

    return Select(node, predicate)


def push_selects_down(plan: LogicalNode) -> LogicalNode:
    """Sink every select's conjuncts as deep as possible."""
    if isinstance(plan, Select):
        child = push_selects_down(plan.child)
        result = child
        for conjunct in split_conjuncts(plan.predicate):
            result = _sink(result, conjunct)
        return result
    if not plan.children:
        return plan
    return plan.with_children([push_selects_down(c) for c in plan.children])


def fuse_adjacent_selects(plan: LogicalNode) -> LogicalNode:
    """Merge Select(Select(x, p2), p1) into Select(x, p1 AND p2)."""
    if isinstance(plan, Select) and isinstance(plan.child, Select):
        inner = fuse_adjacent_selects(plan.child)
        if isinstance(inner, Select):
            return Select(inner.child, And(plan.predicate, inner.predicate))
        return Select(inner, plan.predicate)
    if not plan.children:
        return plan
    return plan.with_children([fuse_adjacent_selects(c) for c in plan.children])


def prune_identity_projects(plan: LogicalNode) -> LogicalNode:
    """Remove projections that map every column to itself unchanged."""
    if not plan.children:
        return plan
    node = plan.with_children([prune_identity_projects(c) for c in plan.children])
    if isinstance(node, Project):
        child_cols = node.child.output_columns()
        is_identity = tuple(node.mapping.keys()) == tuple(child_cols) and all(
            isinstance(expr, Col) and expr.name == name for name, expr in node.mapping.items()
        )
        if is_identity:
            return node.child
    return node


def normalize(plan: LogicalNode) -> LogicalNode:
    """The standard rewrite pipeline applied before sampler exploration."""
    plan = push_selects_down(plan)
    plan = fuse_adjacent_selects(plan)
    plan = prune_identity_projects(plan)
    return plan
