"""Catalog-backed partition pruning and weighted partition selection.

This is the prune/select pass of Rong et al. ("Approximate Partition
Selection for Big-Data Workloads using Summary Statistics"), grafted onto
the Quickr executor: before the parallel executor materializes partition
tasks, it consults the partition catalog
(:class:`repro.stats.catalog.PartitionCatalog`) attached to the database
and decides, per partition of the round-robin-partitioned scan:

1. **prune (exact)** — partitions whose per-column min/max, null-count and
   value-set summaries *prove* that no row can satisfy the query's
   pushed-down predicates are dropped. This never changes the answer: the
   dropped rows would have been filtered anyway. Two predicate sources
   feed the proof:

   * direct conjuncts of every ``Select`` in the precursor whose columns
     trace (through joins/projections) to the partitioned scan, rewritten
     into scan-column names;
   * **semi-join keys**: for a join between the partitioned scan and a
     sampler-free, broadcast-only dimension subtree, the dimension side is
     executed once (it is small by construction — that is why it was
     broadcast) and a fact partition is pruned when its key summary cannot
     intersect the qualifying key set.

2. **select (weighted)** — under an error budget, a weighted subset of the
   surviving partitions is chosen: inclusion probability
   ``pi_p ∝ rows_p * (1 + heavy-hitter overlap with the group-by columns)``
   (occurrence-weighted, clipped to 1, the heaviest partition always
   included). Each executed partition's rows have their Horvitz-Thompson
   weights multiplied by ``1/pi_p``, so aggregates stay unbiased and the
   CI algebra widens honestly. Selection is only offered when the plan
   already carries uniform/universe samplers (the weighted estimator path
   must be live) and merges by rows.

A partition whose live row count disagrees with its catalog summary is
**conservatively retained** (stale/corrupt catalog entries can only cost
performance, never correctness).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.algebra.addressing import NodeAddress, format_address, walk_with_addresses
from repro.algebra.logical import Join, SamplerNode, Select
from repro.core.pushdown import partition_feasible, prune_conjuncts
from repro.parallel.plan import PlanAnalysis, ScanPartitioning, _trace_to_scan

__all__ = ["ScanPrunePlan", "plan_partition_pruning", "PRUNE_INVARIANT_KINDS"]

#: Sampler kinds whose per-row decisions are lineage/value-hash based, so
#: any disjoint repartitioning of the input yields the same merged output
#: (partition-invariance; verified by tests/parallel/test_equivalence.py).
#: Pruning swaps the round-robin split for the catalog's clustered layout,
#: which is only sound under this invariance (or with no samplers at all).
PRUNE_INVARIANT_KINDS = frozenset({"uniform", "universe", "passthrough"})

#: Sampler kinds that make weighted *selection* available: the plan's
#: estimators already run the Horvitz-Thompson weighted path, so the
#: ``1/pi`` partition weights fold in without biasing anything.
SELECTION_KINDS = frozenset({"uniform", "universe"})

#: Inclusion probabilities are clipped below at this value so one unlucky
#: draw cannot blow a row's weight up by more than 100x.
MIN_INCLUSION_PROBABILITY = 0.01


@dataclass
class ScanPrunePlan:
    """The prune/select decision for one partitioned scan occurrence."""

    table: str
    #: Absolute address of the scan in the submitted plan.
    scan_address: NodeAddress
    num_partitions: int
    layout_kind: str
    cluster_column: Optional[str]
    #: Partition ordinals to actually execute (post-selection), ascending.
    keep: Tuple[int, ...]
    #: Ordinals proved infeasible and skipped exactly.
    pruned: Tuple[int, ...]
    #: Survivors skipped by weighted selection (reweighting covers them).
    unselected: Tuple[int, ...]
    #: Ordinals whose summaries failed the row-count cross-check and were
    #: conservatively retained.
    stale: Tuple[int, ...]
    #: Ordinal -> inclusion probability (1.0 unless selection fired).
    inclusion: Dict[int, float]
    rows_total: int
    #: Rows skipped by exact pruning, per the catalog summaries.
    rows_pruned_est: int
    #: Rows skipped by exact pruning, per the live split (equal unless the
    #: catalog went stale between build and use).
    rows_pruned_actual: int
    rows_unselected: int
    bytes_pruned: int
    selection_fraction: Optional[float]
    #: Human-readable prune predicates (for explain-analyze).
    predicates: Tuple[str, ...] = ()
    #: Human-readable semi-join prune sources (for explain-analyze).
    semijoins: Tuple[str, ...] = ()
    #: Row-index arrays of *all* partitions under the catalog layout
    #: (executor splits with these so summaries and data line up).
    split_indices: List[np.ndarray] = field(default_factory=list, repr=False)

    @property
    def selection_active(self) -> bool:
        return bool(self.unselected) or any(p < 1.0 for p in self.inclusion.values())

    @property
    def executed(self) -> int:
        return len(self.keep)

    def token(self) -> str:
        """Stable short token of the decision, mixed into trace metadata so
        two runs of the same plan with different prune outcomes are
        distinguishable (the plan cache itself is unaffected: it caches
        compiled structure, while partitions arrive as runtime tables)."""
        payload = (
            f"{self.table}|{self.num_partitions}|{self.keep}|{self.pruned}|"
            f"{sorted(self.inclusion.items())}"
        )
        return f"{zlib.crc32(payload.encode()):08x}"

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "table": self.table,
            "address": format_address(self.scan_address),
            "layout": self.layout_kind,
            "partitions_total": self.num_partitions,
            "partitions_pruned": len(self.pruned),
            "partitions_selected": len(self.keep) if self.selection_active else 0,
            "partitions_executed": len(self.keep),
            "partitions_stale_retained": len(self.stale),
            "rows_total": self.rows_total,
            "rows_pruned_est": self.rows_pruned_est,
            "rows_pruned_actual": self.rows_pruned_actual,
            "rows_unselected": self.rows_unselected,
            "bytes_pruned": self.bytes_pruned,
            "token": self.token(),
        }
        if self.cluster_column:
            out["cluster_column"] = self.cluster_column
        if self.selection_fraction is not None:
            out["selection_fraction"] = self.selection_fraction
        if self.selection_active:
            out["inclusion_min"] = min(self.inclusion.values())
        if self.predicates:
            out["predicates"] = list(self.predicates)
        if self.semijoins:
            out["semijoins"] = list(self.semijoins)
        return out


def _sampler_kinds(split) -> frozenset:
    return frozenset(
        node.spec.kind for node in split.walk() if isinstance(node, SamplerNode)
    )


def _collect_direct_predicates(
    analysis: PlanAnalysis, entry: ScanPartitioning
) -> List:
    """Conjuncts of precursor Selects, rewritten into scan-column names.

    A conjunct applies to the partitioned scan when all its columns trace
    (pass-through only) to that scan occurrence: under the precursor's
    inner-join/select/project algebra, any output row descends from a scan
    row satisfying the conjunct, so a partition where no row can satisfy
    it contributes nothing to the answer.
    """
    predicates = []
    for address, node in walk_with_addresses(analysis.split, analysis.split_address):
        if not isinstance(node, Select):
            continue
        for conjunct in prune_conjuncts(node.predicate):
            cols = tuple(sorted(conjunct.columns()))
            if not cols:
                continue
            traced = _trace_to_scan(node.child, address + (0,), cols)
            if traced is None or traced[0] != entry.address:
                continue
            mapping = dict(zip(cols, traced[2]))
            predicates.append(conjunct.rename(mapping))
    return predicates


def _collect_semijoin_keys(
    analysis: PlanAnalysis,
    entry: ScanPartitioning,
    run_subtree: Callable,
) -> List[Tuple[str, np.ndarray, str]]:
    """(fact-key column, qualifying values, label) per prunable join.

    A join side qualifies as a pruning *source* when it is sampler-free and
    every scan under it is broadcast (small by the partitioner's own
    sizing): executing it once costs about one worker's share of the work
    it can save, and its exact output keys bound which fact keys survive
    the (inner) join.
    """
    modes = {scan.address: scan.mode for scan in analysis.scans}
    selects = [
        (address, node)
        for address, node in walk_with_addresses(analysis.split, analysis.split_address)
        if isinstance(node, Select)
    ]
    checks: List[Tuple[str, np.ndarray, str]] = []
    for address, node in walk_with_addresses(analysis.split, analysis.split_address):
        if not isinstance(node, Join) or node.how != "inner":
            continue
        sides = (
            (node.left, node.left_keys, node.right, node.right_keys, 0),
            (node.right, node.right_keys, node.left, node.left_keys, 1),
        )
        for fact_side, fact_keys, dim_side, dim_keys, child in sides:
            if len(fact_keys) != 1 or len(dim_keys) != 1:
                continue
            traced = _trace_to_scan(fact_side, address + (child,), tuple(fact_keys))
            if traced is None or traced[0] != entry.address:
                continue
            if any(isinstance(n, SamplerNode) for n in dim_side.walk()):
                continue
            dim_addr = address + (1 - child,)
            dim_scans = [
                a for a, n in walk_with_addresses(dim_side, dim_addr) if a in modes
            ]
            if not dim_scans or any(modes[a] != "broadcast" for a in dim_scans):
                continue
            # Dimension filters frequently sit *above* the join (builders
            # filter the joined rows); any ancestor-Select conjunct whose
            # columns pass through to a scan under the dimension side holds
            # row-for-row on the dimension, so it is pushed into the probe.
            probe = dim_side
            pushed = 0
            for sel_addr, sel in selects:
                if sel_addr != address[: len(sel_addr)]:
                    continue  # not an ancestor of this join
                for conjunct in prune_conjuncts(sel.predicate):
                    cols = tuple(sorted(conjunct.columns()))
                    if not cols:
                        continue
                    dim_traced = _trace_to_scan(dim_side, dim_addr, cols)
                    if dim_traced is None or dim_traced[0] not in dim_scans:
                        continue
                    try:
                        probe = Select(probe, conjunct)
                        pushed += 1
                    except Exception:  # noqa: BLE001 - schema mismatch: skip
                        continue
            try:
                qualifying = run_subtree(probe)
                keys = np.unique(qualifying.column(dim_keys[0]))
            except Exception:  # noqa: BLE001 - pruning must never fail a query
                continue
            checks.append(
                (
                    traced[2][0],
                    keys,
                    f"{traced[2][0]} ⋉ {dim_keys[0]} "
                    f"({keys.size} keys, {pushed} pushed filter(s))",
                )
            )
    return checks


def _keys_may_intersect(summary, keys: np.ndarray) -> bool:
    """Can the partition's column contain any of the qualifying keys?"""
    if summary.min_value is None:
        return False  # no non-null values: nothing joins
    if summary.values is not None:
        try:
            return bool(np.isin(np.asarray(summary.values), keys).any())
        except (TypeError, ValueError):
            return True
    try:
        window = keys[(keys >= summary.min_value) & (keys <= summary.max_value)]
    except TypeError:
        return True
    return bool(window.size)


def _selection_probabilities(
    weights: np.ndarray, fraction: float
) -> np.ndarray:
    """Clipped weight-proportional inclusion probabilities targeting an
    expected ``fraction`` of the partitions; the heaviest partition is
    always included (a deterministic anchor keeps the sample non-empty
    and, like any fixed ``pi`` vector, costs no unbiasedness)."""
    n = len(weights)
    target = max(1, int(round(fraction * n)))
    pi = np.minimum(1.0, target * weights / weights.sum())
    for _ in range(n):  # redistribute mass clipped at 1.0
        fixed = pi >= 1.0
        free = ~fixed
        spare = target - int(fixed.sum())
        if spare <= 0 or not free.any():
            break
        scaled = np.minimum(1.0, spare * weights[free] / weights[free].sum())
        if np.allclose(scaled, pi[free]):
            break
        pi[free] = scaled
    pi = np.maximum(pi, MIN_INCLUSION_PROBABILITY)
    pi[int(np.argmax(weights))] = 1.0
    return pi


def plan_partition_pruning(
    analysis: PlanAnalysis,
    database,
    degree: int,
    *,
    selection_fraction: Optional[float] = None,
    run_subtree: Optional[Callable] = None,
    task_seed: int = 0,
) -> Optional[ScanPrunePlan]:
    """Decide which partitions of the round-robin scan to run.

    Returns None when pruning does not apply: no catalog on the database,
    no round-robin-partitioned scan (hash strategies redistribute rows, so
    partition summaries do not describe the executed partitions), or a
    plan whose samplers are not partition-invariant (their output would
    change under the catalog's clustered layout).
    """
    catalog = getattr(database, "partition_stats", None)
    if catalog is None or degree < 2:
        return None
    if any(s.mode == "partition-hash" for s in analysis.scans):
        # Hash-partitioned siblings are co-partitioned by pid with each
        # other; compacting the round-robin scan's task list would break
        # that alignment.
        return None
    entries = [s for s in analysis.scans if s.mode == "partition-rr"]
    if len(entries) != 1:
        return None
    entry = entries[0]
    if not _sampler_kinds(analysis.split) <= PRUNE_INVARIANT_KINDS:
        return None

    table = database.table(entry.table)
    layout = catalog.layout(entry.table, degree)
    summaries = catalog.summaries(entry.table, degree)
    split_indices = layout.split_indices(table)

    predicates = _collect_direct_predicates(analysis, entry)
    semijoins = (
        _collect_semijoin_keys(analysis, entry, run_subtree)
        if run_subtree is not None
        else []
    )

    keep: List[int] = []
    pruned: List[int] = []
    stale: List[int] = []
    rows_pruned_est = rows_pruned_actual = bytes_pruned = 0
    for pid in range(degree):
        summary = summaries[pid]
        live_rows = int(len(split_indices[pid]))
        if summary.rows != live_rows:
            # Stale/corrupt catalog entry: retain conservatively. Its
            # column summaries may describe rows that no longer exist (or
            # miss rows that do), so no proof built on them is trusted.
            stale.append(pid)
            keep.append(pid)
            continue
        if summary.rows == 0:
            pruned.append(pid)
            continue
        columns = summary.columns
        infeasible = any(not partition_feasible(p, columns) for p in predicates)
        if not infeasible:
            for fact_col, qualifying, _label in semijoins:
                col_summary = columns.get(fact_col)
                if col_summary is not None and not _keys_may_intersect(
                    col_summary, qualifying
                ):
                    infeasible = True
                    break
        if infeasible:
            pruned.append(pid)
            rows_pruned_est += summary.rows
            rows_pruned_actual += live_rows
            bytes_pruned += summary.bytes
        else:
            keep.append(pid)

    if not keep:
        # Every partition proved infeasible: the scan contributes no rows,
        # but the executor still needs one task to carry the schema through
        # the merge. Take back the smallest pruned partition — its rows are
        # all filtered out downstream anyway.
        smallest = min(pruned, key=lambda pid: summaries[pid].rows)
        pruned.remove(smallest)
        rows_pruned_est -= summaries[smallest].rows
        rows_pruned_actual -= int(len(split_indices[smallest]))
        bytes_pruned -= summaries[smallest].bytes
        keep = [smallest]

    # -- weighted selection over the survivors ------------------------------
    inclusion = {pid: 1.0 for pid in keep}
    unselected: List[int] = []
    rows_unselected = 0
    kinds = _sampler_kinds(analysis.split)
    can_select = (
        selection_fraction is not None
        and 0.0 < selection_fraction < 1.0
        and len(keep) > 1
        and analysis.aggregate is not None
        and bool(kinds & SELECTION_KINDS)
    )
    if can_select:
        group_columns = tuple(analysis.aggregate.group_by)
        weights = np.empty(len(keep), dtype=np.float64)
        for i, pid in enumerate(keep):
            summary = summaries[pid]
            overlap = 0
            for name in group_columns:
                col_summary = summary.columns.get(name)
                if col_summary is not None and col_summary.heavy is not None:
                    overlap += col_summary.heavy.num_entries
            # Occurrence-weighted: bigger partitions and partitions whose
            # heavy hitters cover more of the query's group-by space are
            # likelier to carry answer mass (Rong et al. §4.2).
            weights[i] = max(1.0, float(summary.rows)) * (1.0 + float(overlap))
        pi = _selection_probabilities(weights, float(selection_fraction))
        seed_tail = zlib.crc32(
            f"{entry.table}|{degree}|{tuple(keep)}".encode()
        )
        rng = np.random.default_rng([int(task_seed) & 0xFFFFFFFF, seed_tail])
        drawn = rng.random(len(keep)) < pi
        selected_pids = [pid for pid, take in zip(keep, drawn) if take]
        unselected = [pid for pid, take in zip(keep, drawn) if not take]
        rows_unselected = sum(summaries[pid].rows for pid in unselected)
        inclusion = {
            pid: float(p) for pid, p, take in zip(keep, pi, drawn) if take
        }
        keep = selected_pids

    return ScanPrunePlan(
        table=entry.table,
        scan_address=entry.address,
        num_partitions=degree,
        layout_kind=layout.kind,
        cluster_column=layout.cluster_column,
        keep=tuple(keep),
        pruned=tuple(pruned),
        unselected=tuple(unselected),
        stale=tuple(stale),
        inclusion=inclusion,
        rows_total=int(table.num_rows),
        rows_pruned_est=rows_pruned_est,
        rows_pruned_actual=rows_pruned_actual,
        rows_unselected=rows_unselected,
        bytes_pruned=bytes_pruned,
        selection_fraction=(
            float(selection_fraction) if can_select else None
        ),
        predicates=tuple(repr(p) for p in predicates),
        semijoins=tuple(label for _, _, label in semijoins),
        split_indices=split_indices,
    )
