"""TPC-H-style query subset (10 queries), for Table 9's comparison."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algebra.aggregates import avg, count, count_distinct, sum_
from repro.algebra.builder import Query, scan
from repro.algebra.expressions import col

__all__ = ["QUERY_BUILDERS", "queries"]


def h01(db) -> Query:
    """Q1: pricing summary report."""
    return (
        scan(db, "lineitem")
        .where(col("l_shipdate") <= 2_400)
        .derive(disc_price=col("l_extendedprice") * (1 - col("l_discount")))
        .groupby("l_returnflag", "l_linestatus")
        .agg(
            sum_(col("l_quantity"), "sum_qty"),
            sum_(col("l_extendedprice"), "sum_base_price"),
            sum_(col("disc_price"), "sum_disc_price"),
            avg(col("l_quantity"), "avg_qty"),
            count("count_order"),
        )
        .build("h01")
    )


def h03(db) -> Query:
    """Q3: shipping priority."""
    return (
        scan(db, "customer")
        .where(col("c_mktsegment") == "BUILDING")
        .join(scan(db, "orders"), on=[("c_custkey", "o_custkey")])
        .join(scan(db, "lineitem"), on=[("o_orderkey", "l_orderkey")])
        .where(col("o_orderdate") < 1_200)
        .derive(revenue=col("l_extendedprice") * (1 - col("l_discount")))
        .groupby("o_orderkey", "o_orderdate")
        .agg(sum_(col("revenue"), "revenue"))
        .orderby("revenue", desc=True)
        .limit(10)
        .build("h03")
    )


def h05(db) -> Query:
    """Q5: local supplier volume."""
    return (
        scan(db, "customer")
        .join(scan(db, "orders"), on=[("c_custkey", "o_custkey")])
        .join(scan(db, "lineitem"), on=[("o_orderkey", "l_orderkey")])
        .join(scan(db, "nation"), on=[("c_nationkey", "n_nationkey")])
        .where((col("o_orderdate") >= 365) & (col("o_orderdate") < 730))
        .derive(revenue=col("l_extendedprice") * (1 - col("l_discount")))
        .groupby("n_name")
        .agg(sum_(col("revenue"), "revenue"))
        .build("h05")
    )


def h06(db) -> Query:
    """Q6: forecasting revenue change (scalar aggregate)."""
    return (
        scan(db, "lineitem")
        .where(
            (col("l_shipdate") >= 365)
            & (col("l_shipdate") < 730)
            & (col("l_discount") >= 0.05)
            & (col("l_quantity") < 24)
        )
        .agg(sum_(col("l_extendedprice") * col("l_discount"), "revenue"))
        .build("h06")
    )


def h10(db) -> Query:
    """Q10: returned item reporting."""
    return (
        scan(db, "customer")
        .join(scan(db, "orders"), on=[("c_custkey", "o_custkey")])
        .join(scan(db, "lineitem"), on=[("o_orderkey", "l_orderkey")])
        .where(col("l_returnflag") == 1)
        .derive(revenue=col("l_extendedprice") * (1 - col("l_discount")))
        .groupby("c_nationkey")
        .agg(sum_(col("revenue"), "revenue"), count("items"))
        .build("h10")
    )


def h12(db) -> Query:
    """Q12: shipping modes and order priority."""
    return (
        scan(db, "orders")
        .join(scan(db, "lineitem"), on=[("o_orderkey", "l_orderkey")])
        .where(col("l_shipmode").isin(["MAIL", "SHIP"]))
        .groupby("l_shipmode")
        .agg(count("line_count"), avg(col("o_totalprice"), "avg_price"))
        .build("h12")
    )


def h14(db) -> Query:
    """Q14: promotion effect."""
    return (
        scan(db, "lineitem")
        .join(scan(db, "part"), on=[("l_partkey", "p_partkey")])
        .where((col("l_shipdate") >= 500) & (col("l_shipdate") < 530))
        .groupby("p_brand")
        .agg(sum_(col("l_extendedprice") * (1 - col("l_discount")), "revenue"))
        .build("h14")
    )


def h18(db) -> Query:
    """Q18: large volume customers."""
    return (
        scan(db, "orders")
        .join(scan(db, "lineitem"), on=[("o_orderkey", "l_orderkey")])
        .groupby("o_custkey")
        .agg(sum_(col("l_quantity"), "total_qty"))
        .orderby("total_qty", desc=True)
        .limit(100)
        .build("h18")
    )


def h19(db) -> Query:
    """Q19: discounted revenue for selected parts."""
    return (
        scan(db, "lineitem")
        .join(scan(db, "part"), on=[("l_partkey", "p_partkey")])
        .where((col("p_size") <= 15) & (col("l_quantity") >= 10))
        .agg(sum_(col("l_extendedprice") * (1 - col("l_discount")), "revenue"))
        .build("h19")
    )


def h21(db) -> Query:
    """Distinct-supplier activity per nation (count-distinct flavor)."""
    return (
        scan(db, "lineitem")
        .join(scan(db, "supplier"), on=[("l_suppkey", "s_suppkey")])
        .groupby("s_nationkey")
        .agg(count_distinct(col("l_suppkey"), "active_suppliers"), count("lines"))
        .build("h21")
    )


QUERY_BUILDERS: Dict[str, Callable] = {
    fn.__name__: fn for fn in [h01, h03, h05, h06, h10, h12, h14, h18, h19, h21]
}


def queries(db) -> List[Query]:
    return [build(db) for build in QUERY_BUILDERS.values()]
