"""Synthetic TPC-H-shaped data generator (laptop-scale dbgen substitute)."""

from __future__ import annotations

import numpy as np

from repro.engine.table import Database, Table
from repro.workloads.tpch.schema import BASE_ROWS, TABLE_COLUMNS

__all__ = ["generate_tpch"]

_SEGMENTS = np.asarray(["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"])
_MODES = np.asarray(["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"])
_PRIORITIES = np.asarray(["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"])
_NATIONS = np.asarray(
    ["ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "CHINA", "EGYPT", "FRANCE", "GERMANY",
     "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO",
     "MOZAMBIQUE", "PERU", "ROMANIA", "RUSSIA", "SAUDI ARABIA", "UNITED KINGDOM",
     "UNITED STATES", "VIETNAM", "ETHIOPIA"]
)


#: Fact tables clustered on their date column (see the TPC-DS twin).
CLUSTER_COLUMNS = {
    "lineitem": "l_shipdate",
    "orders": "o_orderdate",
}


def generate_tpch(scale: float = 1.0, seed: int = 7, stats: bool = True) -> Database:
    """Build a TPC-H-style database at the given scale factor.

    With ``stats`` (the default) the database carries a lazy partition
    catalog clustered on the fact tables' date columns.
    """
    rng = np.random.default_rng(seed)
    db = Database()

    def rows(table: str) -> int:
        return max(16, int(BASE_ROWS[table] * scale)) if table != "nation" else BASE_ROWS["nation"]

    n_nation = rows("nation")
    db.register(
        Table(
            "nation",
            {
                "n_nationkey": np.arange(n_nation),
                "n_name": _NATIONS[:n_nation],
                "n_regionkey": np.arange(n_nation) % 5,
            },
        )
    )

    n_supp = rows("supplier")
    db.register(
        Table(
            "supplier",
            {
                "s_suppkey": np.arange(n_supp),
                "s_nationkey": rng.integers(0, n_nation, n_supp),
                "s_acctbal": np.round(rng.normal(4500, 3000, n_supp), 2),
            },
        )
    )

    n_part = rows("part")
    db.register(
        Table(
            "part",
            {
                "p_partkey": np.arange(n_part),
                "p_brand": rng.integers(1, 26, n_part),
                "p_type": rng.integers(0, 150, n_part),
                "p_size": rng.integers(1, 51, n_part),
                "p_container": rng.integers(0, 40, n_part),
            },
        )
    )

    n_cust = rows("customer")
    db.register(
        Table(
            "customer",
            {
                "c_custkey": np.arange(n_cust),
                "c_nationkey": rng.integers(0, n_nation, n_cust),
                "c_mktsegment": _SEGMENTS[rng.integers(0, len(_SEGMENTS), n_cust)],
                "c_acctbal": np.round(rng.normal(4500, 3200, n_cust), 2),
            },
        )
    )

    n_orders = rows("orders")
    order_dates = rng.integers(0, 2_557, n_orders)  # ~7 years of days
    db.register(
        Table(
            "orders",
            {
                "o_orderkey": np.arange(n_orders),
                "o_custkey": rng.integers(0, n_cust, n_orders),
                "o_orderstatus": rng.integers(0, 3, n_orders),
                "o_totalprice": np.round(rng.lognormal(10.5, 0.7, n_orders), 2),
                "o_orderdate": order_dates,
                "o_orderpriority": _PRIORITIES[rng.integers(0, len(_PRIORITIES), n_orders)],
            },
        )
    )

    n_line = rows("lineitem")
    line_orders = rng.integers(0, n_orders, n_line)
    quantity = rng.integers(1, 51, n_line)
    price = np.round(rng.lognormal(7.0, 0.6, n_line), 2)
    db.register(
        Table(
            "lineitem",
            {
                "l_orderkey": line_orders,
                "l_partkey": rng.integers(0, n_part, n_line),
                "l_suppkey": rng.integers(0, n_supp, n_line),
                "l_quantity": quantity,
                "l_extendedprice": price,
                "l_discount": np.round(rng.uniform(0.0, 0.1, n_line), 2),
                "l_tax": np.round(rng.uniform(0.0, 0.08, n_line), 2),
                "l_returnflag": rng.integers(0, 3, n_line),
                "l_linestatus": rng.integers(0, 2, n_line),
                "l_shipdate": np.minimum(order_dates[line_orders] + rng.integers(1, 121, n_line), 2_600),
                "l_shipmode": _MODES[rng.integers(0, len(_MODES), n_line)],
            },
        )
    )

    for name, columns in TABLE_COLUMNS.items():
        assert set(db.columns(name)) == set(columns), name
    if stats:
        from repro.stats.catalog import PartitionCatalog

        db.partition_stats = PartitionCatalog(db, cluster_columns=CLUSTER_COLUMNS)
    return db
