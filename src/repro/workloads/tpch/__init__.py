"""TPC-H-style workload for the cross-benchmark comparison (Table 9)."""

from repro.workloads.tpch.datagen import generate_tpch
from repro.workloads.tpch.queries import QUERY_BUILDERS, queries
from repro.workloads.tpch.schema import BASE_ROWS, TABLE_COLUMNS

__all__ = ["generate_tpch", "QUERY_BUILDERS", "queries", "BASE_ROWS", "TABLE_COLUMNS"]
