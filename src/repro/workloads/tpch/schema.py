"""TPC-H-style schema, used for Table 9's cross-benchmark comparison.

TPC-H queries are simpler than TPC-DS (fewer joins, smaller QCS), which is
exactly the contrast Table 9 documents. We keep the classic six tables the
query subset touches.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["BASE_ROWS", "TABLE_COLUMNS"]

BASE_ROWS: Dict[str, int] = {
    "lineitem": 120_000,
    "orders": 30_000,
    "customer": 3_000,
    "part": 4_000,
    "supplier": 200,
    "nation": 25,
}

TABLE_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "lineitem": (
        "l_orderkey",
        "l_partkey",
        "l_suppkey",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_returnflag",
        "l_linestatus",
        "l_shipdate",
        "l_shipmode",
    ),
    "orders": (
        "o_orderkey",
        "o_custkey",
        "o_orderstatus",
        "o_totalprice",
        "o_orderdate",
        "o_orderpriority",
    ),
    "customer": (
        "c_custkey",
        "c_nationkey",
        "c_mktsegment",
        "c_acctbal",
    ),
    "part": (
        "p_partkey",
        "p_brand",
        "p_type",
        "p_size",
        "p_container",
    ),
    "supplier": (
        "s_suppkey",
        "s_nationkey",
        "s_acctbal",
    ),
    "nation": (
        "n_nationkey",
        "n_name",
        "n_regionkey",
    ),
}
