"""TPC-DS-style schema (the evaluation workload's shape).

A faithful subset of the TPC-DS tables and columns the paper's evaluation
exercises: five fact tables (store/catalog/web sales plus store/web
returns) sharing item / date / customer keys, and the dimension tables the
benchmark queries join against. Returns reference the sales they reverse
(shared ticket/order numbers), which is what makes fact-fact joins
meaningful — the workload feature apriori sampling cannot cover and
Quickr's universe sampler targets.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["FACT_TABLES", "DIMENSION_TABLES", "TABLE_COLUMNS", "BASE_ROWS"]

#: Fact tables and their approximate base cardinality at scale 1.0.
FACT_TABLES: Dict[str, int] = {
    "store_sales": 180_000,
    "catalog_sales": 90_000,
    "web_sales": 45_000,
    "store_returns": 18_000,
    "web_returns": 4_500,
}

#: Dimension tables and their base cardinality at scale 1.0.
DIMENSION_TABLES: Dict[str, int] = {
    "item": 600,
    "date_dim": 1_826,  # five years of days
    "customer": 12_000,
    "customer_address": 3_000,
    "store": 24,
    "promotion": 90,
}

BASE_ROWS: Dict[str, int] = {**FACT_TABLES, **DIMENSION_TABLES}

TABLE_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "store_sales": (
        "ss_sold_date_sk",
        "ss_item_sk",
        "ss_customer_sk",
        "ss_store_sk",
        "ss_promo_sk",
        "ss_ticket_number",
        "ss_quantity",
        "ss_sales_price",
        "ss_ext_sales_price",
        "ss_wholesale_cost",
        "ss_net_profit",
    ),
    "store_returns": (
        "sr_returned_date_sk",
        "sr_item_sk",
        "sr_customer_sk",
        "sr_ticket_number",
        "sr_return_quantity",
        "sr_return_amt",
        "sr_net_loss",
    ),
    "catalog_sales": (
        "cs_sold_date_sk",
        "cs_item_sk",
        "cs_bill_customer_sk",
        "cs_promo_sk",
        "cs_order_number",
        "cs_quantity",
        "cs_sales_price",
        "cs_ext_sales_price",
        "cs_net_profit",
    ),
    "web_sales": (
        "ws_sold_date_sk",
        "ws_item_sk",
        "ws_bill_customer_sk",
        "ws_order_number",
        "ws_quantity",
        "ws_sales_price",
        "ws_net_profit",
    ),
    "web_returns": (
        "wr_returned_date_sk",
        "wr_item_sk",
        "wr_refunded_customer_sk",
        "wr_order_number",
        "wr_return_amt",
    ),
    "item": (
        "i_item_sk",
        "i_brand_id",
        "i_class_id",
        "i_category_id",
        "i_category",
        "i_color",
        "i_manager_id",
        "i_current_price",
    ),
    "date_dim": (
        "d_date_sk",
        "d_year",
        "d_moy",
        "d_qoy",
        "d_dow",
        "d_month_seq",
    ),
    "customer": (
        "c_customer_sk",
        "c_current_addr_sk",
        "c_birth_year",
        "c_preferred_cust_flag",
    ),
    "customer_address": (
        "ca_address_sk",
        "ca_state",
        "ca_gmt_offset",
    ),
    "store": (
        "s_store_sk",
        "s_state",
        "s_county",
        "s_gmt_offset",
    ),
    "promotion": (
        "p_promo_sk",
        "p_channel_email",
        "p_channel_event",
    ),
}
