"""TPC-DS-style workload: schema, synthetic data generator, 24-query suite."""

from repro.workloads.tpcds.datagen import generate_tpcds, scaled_rows
from repro.workloads.tpcds.queries import (
    EXPECTED_UNAPPROXIMABLE,
    QUERY_BUILDERS,
    queries,
    query_by_name,
)
from repro.workloads.tpcds.schema import BASE_ROWS, DIMENSION_TABLES, FACT_TABLES, TABLE_COLUMNS

__all__ = [
    "generate_tpcds",
    "scaled_rows",
    "EXPECTED_UNAPPROXIMABLE",
    "QUERY_BUILDERS",
    "queries",
    "query_by_name",
    "BASE_ROWS",
    "DIMENSION_TABLES",
    "FACT_TABLES",
    "TABLE_COLUMNS",
]
