"""TPC-DS-shaped query suite (24 queries).

Each query mirrors the structure of a TPC-DS benchmark query (noted per
function) against our generated schema. The suite deliberately covers the
full feature matrix the paper's evaluation exercises:

* star joins of a fact table with several dimensions (q01-q10);
* fact-fact joins on shared keys — the universe sampler's territory,
  including the paper's Figure 1 motivating example (q11-q14);
* scalar aggregates and COUNT DISTINCT (q15, q16);
* queries that should come out *unapproximable*: per-day groups with thin
  support, MIN/MAX answers, per-customer grouping (q17, q18, q21);
* ORDER BY <aggregate> LIMIT 100 — the paper's main source of missed
  groups (q20);
* UDFs in predicates and projections, *IF aggregates, UNION ALL across
  channels, and nested (two-level) aggregation (q10, q22-q24).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.algebra.aggregates import (
    avg,
    count,
    count_distinct,
    count_if,
    max_,
    min_,
    sum_,
    sum_if,
)
from repro.algebra.builder import Query, scan
from repro.algebra.expressions import Func, col

__all__ = ["QUERY_BUILDERS", "queries", "query_by_name"]


def _margin_udf(price, cost):
    return (price - cost) / np.maximum(cost, 1.0)


def _decade_udf(year):
    return (year // 10) * 10


def q01(db) -> Query:
    """q3-style: brand revenue by year (store channel)."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .where(col("i_manager_id") == 1)
        .groupby("d_year", "i_brand_id")
        .agg(sum_(col("ss_ext_sales_price"), "sum_agg"))
        .orderby("d_year", "sum_agg", desc=True)
        .build("q01")
    )


def q02(db) -> Query:
    """q7-style: average store quantities and prices per category under promotion."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .join(scan(db, "promotion"), on=[("ss_promo_sk", "p_promo_sk")])
        .where(col("p_channel_email") == 1)
        .groupby("i_category")
        .agg(
            avg(col("ss_quantity"), "agg1"),
            avg(col("ss_sales_price"), "agg2"),
            count("cnt"),
        )
        .build("q02")
    )


def q03(db) -> Query:
    """q12/q98-style: web revenue share per class for selected categories."""
    return (
        scan(db, "web_sales")
        .join(scan(db, "item"), on=[("ws_item_sk", "i_item_sk")])
        .join(scan(db, "date_dim"), on=[("ws_sold_date_sk", "d_date_sk")])
        .where(col("i_category").isin(["Books", "Electronics", "Music"]))
        .groupby("i_class_id", "d_year")
        .agg(sum_(col("ws_sales_price") * col("ws_quantity"), "itemrevenue"))
        .build("q03")
    )


def q04(db) -> Query:
    """q15-style: catalog revenue by customer state, top 100."""
    return (
        scan(db, "catalog_sales")
        .join(scan(db, "customer"), on=[("cs_bill_customer_sk", "c_customer_sk")])
        .join(scan(db, "customer_address"), on=[("c_current_addr_sk", "ca_address_sk")])
        .join(scan(db, "date_dim"), on=[("cs_sold_date_sk", "d_date_sk")])
        .where(col("d_qoy") == 2)
        .groupby("ca_state")
        .agg(sum_(col("cs_sales_price"), "total_sales"))
        .orderby("total_sales", desc=True)
        .limit(100)
        .build("q04")
    )


def q05(db) -> Query:
    """q19-style: brand revenue for one manager tier, by store state."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .join(scan(db, "store"), on=[("ss_store_sk", "s_store_sk")])
        .where((col("i_manager_id") >= 20) & (col("i_manager_id") <= 30))
        .groupby("i_brand_id", "s_state")
        .agg(sum_(col("ss_ext_sales_price"), "ext_price"))
        .build("q05")
    )


def q06(db) -> Query:
    """q26-style: catalog averages per item class under event promotions."""
    return (
        scan(db, "catalog_sales")
        .join(scan(db, "promotion"), on=[("cs_promo_sk", "p_promo_sk")])
        .join(scan(db, "item"), on=[("cs_item_sk", "i_item_sk")])
        .where(col("p_channel_event") == 1)
        .groupby("i_class_id")
        .agg(avg(col("cs_quantity"), "agg1"), avg(col("cs_sales_price"), "agg2"))
        .build("q06")
    )


def q07(db) -> Query:
    """q42-style: category revenue in one year, store channel."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .where(col("d_year") == 2002)
        .groupby("i_category_id", "i_category")
        .agg(sum_(col("ss_ext_sales_price"), "total"))
        .orderby("total", desc=True)
        .build("q07")
    )


def q08(db) -> Query:
    """q52-style: brand revenue for one month."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .where((col("d_year") == 2001) & (col("d_moy") == 11))
        .groupby("i_brand_id")
        .agg(sum_(col("ss_ext_sales_price"), "ext_price"))
        .build("q08")
    )


def q09(db) -> Query:
    """q55-style: manager revenue for one quarter."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .where((col("d_year") == 2003) & (col("d_qoy") == 1))
        .groupby("i_manager_id")
        .agg(sum_(col("ss_ext_sales_price"), "ext_price"), count("cnt"))
        .build("q09")
    )


def q10(db) -> Query:
    """UDF-heavy: profit-margin buckets via a user-defined function."""
    margin = Func("margin", _margin_udf, [col("ss_sales_price"), col("ss_wholesale_cost")])
    return (
        scan(db, "store_sales")
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .derive(margin=margin)
        .where(col("margin") > 0.05)
        .groupby("i_category")
        .agg(avg(col("margin"), "avg_margin"), sum_(col("ss_net_profit"), "profit"))
        .build("q10")
    )


def q11(db) -> Query:
    """Fact-fact on ticket+item: profit lost to returns per category."""
    return (
        scan(db, "store_sales")
        .join(
            scan(db, "store_returns"),
            on=[("ss_ticket_number", "sr_ticket_number"), ("ss_item_sk", "sr_item_sk")],
        )
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .groupby("i_category")
        .agg(
            sum_(col("ss_net_profit"), "profit"),
            sum_(col("sr_net_loss"), "loss"),
            count("returns"),
        )
        .build("q11")
    )


def q12(db) -> Query:
    """Figure 1 motivating query: store sales joined with store returns and
    catalog sales on customer, per item color and year."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "store_returns"), on=[("ss_customer_sk", "sr_customer_sk")])
        .join(scan(db, "catalog_sales"), on=[("ss_customer_sk", "cs_bill_customer_sk")])
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .groupby("i_color", "d_year")
        .agg(
            sum_(col("ss_net_profit"), "total_profit"),
            count_distinct(col("ss_customer_sk"), "uniq_cust"),
        )
        .build("q12")
    )


def q13(db) -> Query:
    """Section 4.1.3 example: web sales joined with web returns on order."""
    return (
        scan(db, "web_sales")
        .join(scan(db, "web_returns"), on=[("ws_order_number", "wr_order_number")])
        .agg(
            count_distinct(col("ws_order_number"), "orders"),
            sum_(col("ws_net_profit"), "profit"),
        )
        .build("q13")
    )


def q14(db) -> Query:
    """Cross-channel: customers buying from both store and catalog, by year."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "catalog_sales"), on=[("ss_customer_sk", "cs_bill_customer_sk")])
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .groupby("d_year")
        .agg(
            count_distinct(col("ss_customer_sk"), "cross_shoppers"),
            sum_(col("cs_sales_price"), "catalog_sales_amt"),
        )
        .build("q14")
    )


def q15(db) -> Query:
    """Scalar aggregate: overall web revenue above a price threshold."""
    return (
        scan(db, "web_sales")
        .where(col("ws_sales_price") > 10)
        .agg(sum_(col("ws_sales_price") * col("ws_quantity"), "revenue"), count("cnt"))
        .build("q15")
    )


def q16(db) -> Query:
    """Scalar COUNT DISTINCT: active store customers in one year."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .where(col("d_year") == 2002)
        .agg(count_distinct(col("ss_customer_sk"), "active_customers"))
        .build("q16")
    )


def q17(db) -> Query:
    """Per-day grouping: support per group is too thin to sample."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .groupby("d_date_sk", "d_year")
        .agg(sum_(col("ss_net_profit"), "daily_profit"))
        .build("q17")
    )


def q18(db) -> Query:
    """MIN/MAX answer: extremes cannot be estimated from a sample."""
    return (
        scan(db, "catalog_sales")
        .join(scan(db, "item"), on=[("cs_item_sk", "i_item_sk")])
        .groupby("i_category")
        .agg(
            max_(col("cs_sales_price"), "max_price"),
            min_(col("cs_sales_price"), "min_price"),
        )
        .build("q18")
    )


def q19(db) -> Query:
    """High value skew: state revenue from heavy-tailed basket totals."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "store"), on=[("ss_store_sk", "s_store_sk")])
        .groupby("s_state")
        .agg(sum_(col("ss_ext_sales_price"), "state_revenue"), count("baskets"))
        .build("q19")
    )


def q20(db) -> Query:
    """ORDER BY aggregate LIMIT 100: the paper's missed-groups scenario."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .groupby("i_item_sk", "i_brand_id")
        .agg(sum_(col("ss_ext_sales_price"), "revenue"))
        .orderby("revenue", desc=True)
        .limit(100)
        .build("q20")
    )


def q21(db) -> Query:
    """Per-customer grouping: too many groups, too little support each."""
    return (
        scan(db, "store_sales")
        .groupby("ss_customer_sk")
        .agg(sum_(col("ss_net_profit"), "customer_profit"), count("visits"))
        .build("q21")
    )


def q22(db) -> Query:
    """UNION ALL across channels: yearly revenue over all three channels."""
    store = (
        scan(db, "store_sales")
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .derive(revenue=col("ss_ext_sales_price"))
        .select("d_year", "revenue")
    )
    catalog = (
        scan(db, "catalog_sales")
        .join(scan(db, "date_dim"), on=[("cs_sold_date_sk", "d_date_sk")])
        .derive(revenue=col("cs_ext_sales_price"))
        .select("d_year", "revenue")
    )
    return (
        store.union_all(catalog)
        .groupby("d_year")
        .agg(sum_(col("revenue"), "total_revenue"), count("line_items"))
        .build("q22")
    )


def q23(db) -> Query:
    """*IF aggregates: promotional vs non-promotional revenue per category."""
    return (
        scan(db, "store_sales")
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .join(scan(db, "promotion"), on=[("ss_promo_sk", "p_promo_sk")])
        .groupby("i_category")
        .agg(
            sum_if(col("ss_ext_sales_price"), col("p_channel_email") == 1, "promo_rev"),
            sum_if(col("ss_ext_sales_price"), col("p_channel_email") == 0, "other_rev"),
            count_if(col("ss_quantity") > 50, "bulk_orders"),
        )
        .build("q23")
    )


def q24(db) -> Query:
    """Nested aggregation: average of per-month revenue, per decade (UDF)."""
    decade = Func("decade", _decade_udf, [col("d_year")])
    monthly = (
        scan(db, "store_sales")
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .derive(decade=decade)
        .groupby("d_month_seq", "decade")
        .agg(sum_(col("ss_ext_sales_price"), "monthly_rev"))
    )
    return (
        monthly.groupby("decade")
        .agg(avg(col("monthly_rev"), "avg_monthly_rev"))
        .build("q24")
    )


QUERY_BUILDERS: Dict[str, Callable] = {
    fn.__name__: fn
    for fn in [
        q01, q02, q03, q04, q05, q06, q07, q08, q09, q10, q11, q12,
        q13, q14, q15, q16, q17, q18, q19, q20, q21, q22, q23, q24,
    ]
}

#: Queries the optimizer is expected to declare unapproximable (thin
#: support, extreme-value answers, or per-entity grouping).
EXPECTED_UNAPPROXIMABLE = frozenset({"q17", "q18", "q21"})


def queries(db) -> List[Query]:
    """Build the full suite against a database."""
    return [build(db) for build in QUERY_BUILDERS.values()]


def query_by_name(db, name: str) -> Query:
    return QUERY_BUILDERS[name](db)
