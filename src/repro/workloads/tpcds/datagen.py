"""Synthetic TPC-DS-shaped data generator.

Substitutes for dsdgen at laptop scale (see DESIGN.md): the evaluation's
conclusions depend on schema structure, key relationships and skew — not on
absolute bytes — so the generator preserves:

* foreign keys from facts to dimensions (date / item / customer / store);
* Zipf-skewed popularity of items and customers (heavy hitters exist, which
  exercises the catalog's heavy-hitter statistics and the distinct
  sampler's sketch);
* returns that reference actual sales (shared ticket / order numbers), so
  fact-fact joins have realistic match rates;
* skewed monetary values (lognormal prices, heavy-tailed profit) so SUM
  aggregates exhibit the value-skew error mode the paper discusses.
"""

from __future__ import annotations


import numpy as np

from repro.engine.table import Database, Table
from repro.workloads.tpcds.schema import BASE_ROWS, TABLE_COLUMNS

__all__ = ["generate_tpcds", "scaled_rows"]

_STATES = np.asarray(["CA", "TX", "NY", "WA", "IL", "FL", "GA", "OH", "MI", "NC"])
_CATEGORIES = np.asarray(["Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women", "Children"])
_COLORS = np.asarray(["red", "blue", "green", "black", "white", "yellow", "purple", "navy", "maroon", "beige"])


def scaled_rows(table: str, scale: float) -> int:
    """Row count of a table at the given scale factor."""
    base = BASE_ROWS[table]
    if table in ("item", "date_dim", "store", "promotion"):
        # Dimensions grow sub-linearly, as in TPC-DS.
        return max(8, int(base * min(1.0, 0.5 + scale / 2)))
    return max(16, int(base * scale))


def _zipf_choice(
    rng: np.random.Generator,
    n_values: int,
    size: int,
    alpha: float = 0.9,
    shift: int = 20,
) -> np.ndarray:
    """Shifted-Zipf draws over 0..n_values-1 (rank 0 is the heaviest).

    The shift flattens the extreme head: a pure Zipf head value can carry
    >10% of a fact table, which makes self-joins on that key quadratic. With
    the shift, heavy hitters still exist (the catalog and the distinct
    sampler's sketch see them) but fact-fact joins stay near-linear, as in
    real TPC-DS data where key popularity is only mildly skewed.
    """
    ranks = np.arange(1 + shift, n_values + 1 + shift, dtype=np.float64)
    weights = ranks**-alpha
    weights /= weights.sum()
    return rng.choice(n_values, size=size, p=weights)


#: Fact tables are physically clustered on their sale/return date — the
#: layout the partition catalog's range pruning exploits (dimension tables
#: are broadcast, so they never need a layout).
CLUSTER_COLUMNS = {
    "store_sales": "ss_sold_date_sk",
    "catalog_sales": "cs_sold_date_sk",
    "web_sales": "ws_sold_date_sk",
    "store_returns": "sr_returned_date_sk",
    "web_returns": "wr_returned_date_sk",
}


def generate_tpcds(scale: float = 1.0, seed: int = 42, stats: bool = True) -> Database:
    """Build a fully-populated TPC-DS-style database.

    ``scale`` multiplies fact-table cardinalities (scale 1.0 is ~340k fact
    rows total — enough for the sampling effects to be visible while every
    benchmark query still runs in well under a second). With ``stats``
    (the default) the database carries a lazy partition catalog clustered
    on the fact tables' date columns; per-partition summaries are computed
    on first use, so generation itself stays fast.
    """
    rng = np.random.default_rng(seed)
    db = Database()

    n_item = scaled_rows("item", scale)
    n_date = scaled_rows("date_dim", scale)
    n_customer = scaled_rows("customer", scale)
    n_address = scaled_rows("customer_address", scale)
    n_store = scaled_rows("store", scale)
    n_promo = scaled_rows("promotion", scale)

    # -- dimensions -----------------------------------------------------------
    item_sk = np.arange(n_item)
    db.register(
        Table(
            "item",
            {
                "i_item_sk": item_sk,
                "i_brand_id": rng.integers(1, 60, n_item),
                "i_class_id": rng.integers(1, 20, n_item),
                "i_category_id": rng.integers(0, len(_CATEGORIES), n_item),
                "i_category": _CATEGORIES[rng.integers(0, len(_CATEGORIES), n_item)],
                "i_color": _COLORS[rng.integers(0, len(_COLORS), n_item)],
                "i_manager_id": rng.integers(1, 40, n_item),
                "i_current_price": np.round(rng.lognormal(2.5, 0.8, n_item), 2),
            },
        )
    )

    date_sk = np.arange(n_date)
    day_of_year = date_sk % 365
    db.register(
        Table(
            "date_dim",
            {
                "d_date_sk": date_sk,
                "d_year": 2000 + date_sk // 365,
                "d_moy": (day_of_year // 30) % 12 + 1,
                "d_qoy": (day_of_year // 91) % 4 + 1,
                "d_dow": date_sk % 7,
                "d_month_seq": date_sk // 30,
            },
        )
    )

    customer_sk = np.arange(n_customer)
    db.register(
        Table(
            "customer",
            {
                "c_customer_sk": customer_sk,
                "c_current_addr_sk": rng.integers(0, n_address, n_customer),
                "c_birth_year": rng.integers(1940, 2000, n_customer),
                "c_preferred_cust_flag": rng.integers(0, 2, n_customer),
            },
        )
    )

    db.register(
        Table(
            "customer_address",
            {
                "ca_address_sk": np.arange(n_address),
                "ca_state": _STATES[rng.integers(0, len(_STATES), n_address)],
                "ca_gmt_offset": rng.integers(-8, -4, n_address),
            },
        )
    )

    db.register(
        Table(
            "store",
            {
                "s_store_sk": np.arange(n_store),
                "s_state": _STATES[rng.integers(0, len(_STATES), n_store)],
                "s_county": rng.integers(0, 30, n_store),
                "s_gmt_offset": rng.integers(-8, -4, n_store),
            },
        )
    )

    db.register(
        Table(
            "promotion",
            {
                "p_promo_sk": np.arange(n_promo),
                "p_channel_email": rng.integers(0, 2, n_promo),
                "p_channel_event": rng.integers(0, 2, n_promo),
            },
        )
    )

    # -- store channel ------------------------------------------------------------
    n_ss = scaled_rows("store_sales", scale)
    ss_quantity = rng.integers(1, 100, n_ss)
    ss_price = np.round(rng.lognormal(2.2, 0.9, n_ss), 2)
    ss_wholesale = np.round(ss_price * rng.uniform(0.4, 0.9, n_ss), 2)
    db.register(
        Table(
            "store_sales",
            {
                "ss_sold_date_sk": rng.integers(0, n_date, n_ss),
                "ss_item_sk": _zipf_choice(rng, n_item, n_ss),
                "ss_customer_sk": _zipf_choice(rng, n_customer, n_ss, alpha=0.5, shift=100),
                "ss_store_sk": rng.integers(0, n_store, n_ss),
                "ss_promo_sk": rng.integers(0, n_promo, n_ss),
                "ss_ticket_number": np.arange(n_ss) // 4,  # ~4 line items per basket
                "ss_quantity": ss_quantity,
                "ss_sales_price": ss_price,
                "ss_ext_sales_price": np.round(ss_price * ss_quantity, 2),
                "ss_wholesale_cost": ss_wholesale,
                "ss_net_profit": np.round((ss_price - ss_wholesale) * ss_quantity, 2),
            },
        )
    )

    # Store returns reverse a subset of store sales (same ticket/item/customer).
    n_sr = scaled_rows("store_returns", scale)
    returned = rng.choice(n_ss, size=min(n_sr, n_ss), replace=False)
    ss = db.table("store_sales")
    return_qty = np.minimum(ss.column("ss_quantity")[returned], rng.integers(1, 20, len(returned)))
    db.register(
        Table(
            "store_returns",
            {
                "sr_returned_date_sk": np.minimum(
                    ss.column("ss_sold_date_sk")[returned] + rng.integers(1, 90, len(returned)),
                    n_date - 1,
                ),
                "sr_item_sk": ss.column("ss_item_sk")[returned],
                "sr_customer_sk": ss.column("ss_customer_sk")[returned],
                "sr_ticket_number": ss.column("ss_ticket_number")[returned],
                "sr_return_quantity": return_qty,
                "sr_return_amt": np.round(ss.column("ss_sales_price")[returned] * return_qty, 2),
                "sr_net_loss": np.round(rng.exponential(25, len(returned)), 2),
            },
        )
    )

    # -- catalog channel ------------------------------------------------------------
    n_cs = scaled_rows("catalog_sales", scale)
    cs_quantity = rng.integers(1, 100, n_cs)
    cs_price = np.round(rng.lognormal(2.4, 0.9, n_cs), 2)
    db.register(
        Table(
            "catalog_sales",
            {
                "cs_sold_date_sk": rng.integers(0, n_date, n_cs),
                "cs_item_sk": _zipf_choice(rng, n_item, n_cs),
                "cs_bill_customer_sk": _zipf_choice(rng, n_customer, n_cs, alpha=0.5, shift=100),
                "cs_promo_sk": rng.integers(0, n_promo, n_cs),
                "cs_order_number": np.arange(n_cs) // 3,
                "cs_quantity": cs_quantity,
                "cs_sales_price": cs_price,
                "cs_ext_sales_price": np.round(cs_price * cs_quantity, 2),
                "cs_net_profit": np.round(cs_price * cs_quantity * rng.normal(0.12, 0.2, n_cs), 2),
            },
        )
    )

    # -- web channel ------------------------------------------------------------------
    n_ws = scaled_rows("web_sales", scale)
    ws_quantity = rng.integers(1, 100, n_ws)
    ws_price = np.round(rng.lognormal(2.3, 1.0, n_ws), 2)
    db.register(
        Table(
            "web_sales",
            {
                "ws_sold_date_sk": rng.integers(0, n_date, n_ws),
                "ws_item_sk": _zipf_choice(rng, n_item, n_ws),
                "ws_bill_customer_sk": _zipf_choice(rng, n_customer, n_ws, alpha=0.5, shift=100),
                "ws_order_number": np.arange(n_ws) // 3,
                "ws_quantity": ws_quantity,
                "ws_sales_price": ws_price,
                "ws_net_profit": np.round(ws_price * ws_quantity * rng.normal(0.1, 0.25, n_ws), 2),
            },
        )
    )

    n_wr = scaled_rows("web_returns", scale)
    ws = db.table("web_sales")
    wr_src = rng.choice(n_ws, size=min(n_wr, n_ws), replace=False)
    db.register(
        Table(
            "web_returns",
            {
                "wr_returned_date_sk": np.minimum(
                    ws.column("ws_sold_date_sk")[wr_src] + rng.integers(1, 60, len(wr_src)),
                    n_date - 1,
                ),
                "wr_item_sk": ws.column("ws_item_sk")[wr_src],
                "wr_refunded_customer_sk": ws.column("ws_bill_customer_sk")[wr_src],
                "wr_order_number": ws.column("ws_order_number")[wr_src],
                "wr_return_amt": np.round(
                    ws.column("ws_sales_price")[wr_src] * rng.integers(1, 10, len(wr_src)), 2
                ),
            },
        )
    )

    # Sanity: every table exposes exactly the documented schema.
    for name, columns in TABLE_COLUMNS.items():
        assert set(db.columns(name)) == set(columns), name
    if stats:
        from repro.stats.catalog import PartitionCatalog

        db.partition_stats = PartitionCatalog(db, cluster_columns=CLUSTER_COLUMNS)
    return db
