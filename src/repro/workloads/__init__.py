"""Evaluation workloads: TPC-DS, TPC-H, AMPLab-style, and the synthetic
production trace calibrated to the paper's Figure 2."""

from repro.workloads import other, production, tpcds, tpch
from repro.workloads.production import (
    PAPER_FIGURE2B,
    ProductionQuery,
    ProductionTrace,
    generate_trace,
    input_usage_cdf,
    shape_percentiles,
)

__all__ = [
    "other",
    "production",
    "tpcds",
    "tpch",
    "PAPER_FIGURE2B",
    "ProductionQuery",
    "ProductionTrace",
    "generate_trace",
    "input_usage_cdf",
    "shape_percentiles",
]
