"""Synthetic production-cluster trace (paper Section 3, Figure 2).

The paper characterizes O(10^8) queries from Microsoft's Cosmos clusters:
heavy-tailed usage of inputs (Figure 2a) and complex query shapes
(Figure 2b percentiles: passes over data, operator counts, depth, joins,
UDFs, QCS+QVS sizes). The raw trace is proprietary; per the substitution
rule we synthesize a trace whose *distributions* are calibrated to the
published percentiles, so the Figure 2 analyses can be regenerated and the
paper's argument — apriori samples cannot cover this workload — re-derived
quantitatively.

Calibration targets (Figure 2b of the paper):

====================  =====  =====  =====  =====  =====
metric                 25th   50th   75th   90th   95th
====================  =====  =====  =====  =====  =====
passes over data       1.83   2.45   3.63   6.49   9.78
operators               143    192    581   1103   1283
depth                    21     28     40     51     75
aggregation ops           2      3      9     37    112
joins                     2      3      5     11     27
user-defined aggs         0      0      1      3      5
user-defined funcs        7     27     45    127    260
QCS+QVS size              4      8     24     49    104
====================  =====  =====  =====  =====  =====
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ProductionQuery",
    "ProductionTrace",
    "generate_trace",
    "PAPER_FIGURE2B",
    "input_usage_cdf",
    "shape_percentiles",
]

#: The paper's Figure 2b values, used both for calibration and for the
#: paper-vs-measured comparison in EXPERIMENTS.md.
PAPER_FIGURE2B: Dict[str, Dict[int, float]] = {
    "passes": {25: 1.83, 50: 2.45, 75: 3.63, 90: 6.49, 95: 9.78},
    "operators": {25: 143, 50: 192, 75: 581, 90: 1103, 95: 1283},
    "depth": {25: 21, 50: 28, 75: 40, 90: 51, 95: 75},
    "aggregation_ops": {25: 2, 50: 3, 75: 9, 90: 37, 95: 112},
    "joins": {25: 2, 50: 3, 75: 5, 90: 11, 95: 27},
    "udas": {25: 0, 50: 0, 75: 1, 90: 3, 95: 5},
    "udfs": {25: 7, 50: 27, 75: 45, 90: 127, 95: 260},
    "qcs_plus_qvs": {25: 4, 50: 8, 75: 24, 90: 49, 95: 104},
}


@dataclass
class ProductionQuery:
    """One synthesized query descriptor (shape statistics + input usage)."""

    query_id: int
    passes: float
    operators: int
    depth: int
    aggregation_ops: int
    joins: int
    udas: int
    udfs: int
    qcs_plus_qvs: int
    input_ids: Tuple[int, ...]
    cluster_hours: float


@dataclass
class ProductionTrace:
    """A synthesized two-month trace: queries plus the input-file universe."""

    queries: List[ProductionQuery]
    input_sizes_pb: np.ndarray  # size of each distinct input, in petabytes

    def total_input_pb(self) -> float:
        return float(self.input_sizes_pb.sum())


def _lognormal_matching(rng: np.random.Generator, size: int, median: float, p90: float) -> np.ndarray:
    """Lognormal draws whose median and 90th percentile match the targets."""
    mu = np.log(max(median, 1e-9))
    # For lognormal, q90 = exp(mu + 1.2816 * sigma).
    sigma = max(0.05, (np.log(max(p90, median * 1.01)) - mu) / 1.2816)
    return rng.lognormal(mu, sigma, size)


def generate_trace(
    num_queries: int = 20_000,
    num_inputs: int = 4_000,
    seed: int = 2016,
) -> ProductionTrace:
    """Synthesize a trace calibrated to Figure 2.

    Inputs have lognormal sizes (a few PB-scale heavy hitters); queries pick
    inputs with Zipf popularity and receive shape statistics from lognormal
    marginals fitted to the Figure 2b medians/90th percentiles, with shape
    metrics positively correlated (deep queries have more joins, UDFs and
    passes) through a shared complexity factor.
    """
    rng = np.random.default_rng(seed)

    # Input universe: heavy-tailed sizes summing to O(100) PB.
    sizes = rng.lognormal(-4.5, 2.0, num_inputs)
    sizes = sizes / sizes.sum() * 120.0  # total ~120 PB as in the paper

    # Shared complexity factor couples all shape metrics.
    complexity = rng.lognormal(0.0, 0.75, num_queries)

    def metric(median: float, p90: float, integral: bool = True) -> np.ndarray:
        base = _lognormal_matching(rng, num_queries, median, p90)
        # Blend the independent draw with the shared factor.
        blended = base ** 0.6 * (median * complexity) ** 0.4
        return np.round(blended).astype(int) if integral else blended

    passes = np.maximum(1.0, metric(PAPER_FIGURE2B["passes"][50], PAPER_FIGURE2B["passes"][90], integral=False))
    operators = np.maximum(5, metric(192, 1103))
    depth = np.maximum(3, metric(28, 51))
    agg_ops = np.maximum(1, metric(3, 37))
    joins = np.maximum(0, metric(3, 11))
    udas = np.maximum(0, np.round(rng.exponential(0.8, num_queries) * (complexity > 1.2)).astype(int))
    udfs = np.maximum(0, metric(27, 127))
    qcs_qvs = np.maximum(1, metric(8, 49))

    # Input assignment: Zipf popularity over inputs ordered by size rank, so
    # a small set of popular inputs carries most of the cluster time.
    ranks = np.argsort(-sizes)  # input ids sorted by decreasing size
    popularity = (np.arange(1, num_inputs + 1) ** -1.1)
    popularity /= popularity.sum()

    queries: List[ProductionQuery] = []
    for qid in range(num_queries):
        n_inputs = 1 + int(rng.poisson(0.7))
        chosen = tuple(int(ranks[i]) for i in rng.choice(num_inputs, size=n_inputs, p=popularity))
        hours = float(rng.lognormal(0.0, 1.2) * passes[qid])
        queries.append(
            ProductionQuery(
                query_id=qid,
                passes=float(passes[qid]),
                operators=int(operators[qid]),
                depth=int(depth[qid]),
                aggregation_ops=int(agg_ops[qid]),
                joins=int(joins[qid]),
                udas=int(udas[qid]),
                udfs=int(udfs[qid]),
                qcs_plus_qvs=int(qcs_qvs[qid]),
                input_ids=chosen,
                cluster_hours=hours,
            )
        )
    return ProductionTrace(queries=queries, input_sizes_pb=sizes)


def input_usage_cdf(trace: ProductionTrace) -> Tuple[np.ndarray, np.ndarray]:
    """Figure 2a: cumulative input bytes vs cumulative cluster time.

    Reproduces the paper's construction: apportion each query's cluster
    hours across its inputs proportionally to input size, sort inputs by
    decreasing cluster hours, and accumulate (input PB, cluster-time
    fraction) along that order.
    """
    hours_per_input = np.zeros(len(trace.input_sizes_pb))
    for query in trace.queries:
        sizes = trace.input_sizes_pb[list(query.input_ids)]
        total = sizes.sum()
        if total <= 0:
            continue
        hours_per_input[list(query.input_ids)] += query.cluster_hours * sizes / total
    order = np.argsort(-hours_per_input)
    cumulative_pb = np.cumsum(trace.input_sizes_pb[order])
    cumulative_hours = np.cumsum(hours_per_input[order])
    total_hours = cumulative_hours[-1] if len(cumulative_hours) else 1.0
    return cumulative_pb, cumulative_hours / max(total_hours, 1e-12)


def shape_percentiles(trace: ProductionTrace, percentiles: Sequence[int] = (25, 50, 75, 90, 95)) -> Dict[str, Dict[int, float]]:
    """Figure 2b: shape-statistic percentiles of the synthesized trace."""
    arrays = {
        "passes": np.asarray([q.passes for q in trace.queries]),
        "operators": np.asarray([q.operators for q in trace.queries]),
        "depth": np.asarray([q.depth for q in trace.queries]),
        "aggregation_ops": np.asarray([q.aggregation_ops for q in trace.queries]),
        "joins": np.asarray([q.joins for q in trace.queries]),
        "udas": np.asarray([q.udas for q in trace.queries]),
        "udfs": np.asarray([q.udfs for q in trace.queries]),
        "qcs_plus_qvs": np.asarray([q.qcs_plus_qvs for q in trace.queries]),
    }
    return {
        name: {p: float(np.percentile(values, p)) for p in percentiles}
        for name, values in arrays.items()
    }
