"""The "Other" workload of Table 9 (BigBench / AMPLab-BigData style).

The paper's Table 9 contrasts query-shape statistics across TPC-DS, TPC-H
and a bucket of simpler benchmarks (BigBench, the AMPLab Big Data
benchmark, ...). We model that bucket with the AMPLab benchmark's
rankings / uservisits schema plus a handful of the simple scan-aggregate
and single-join queries those benchmarks are known for.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.algebra.aggregates import avg, count, count_distinct, sum_
from repro.algebra.builder import Query, scan
from repro.algebra.expressions import Func, col
from repro.engine.table import Database, Table

__all__ = ["generate_other", "queries", "QUERY_BUILDERS"]


def generate_other(scale: float = 1.0, seed: int = 11) -> Database:
    """Rankings / uservisits tables in the AMPLab benchmark's shape."""
    rng = np.random.default_rng(seed)
    db = Database()

    n_pages = max(64, int(30_000 * scale))
    db.register(
        Table(
            "rankings",
            {
                "r_pageid": np.arange(n_pages),
                "r_pagerank": rng.integers(1, 100, n_pages),
                "r_avgduration": rng.integers(1, 100, n_pages),
            },
        )
    )

    n_visits = max(256, int(90_000 * scale))
    db.register(
        Table(
            "uservisits",
            {
                "uv_pageid": rng.integers(0, n_pages, n_visits),
                "uv_userid": rng.integers(0, max(16, int(8_000 * scale)), n_visits),
                "uv_adrevenue": np.round(rng.exponential(0.5, n_visits), 4),
                "uv_countrycode": rng.integers(0, 40, n_visits),
                "uv_date": rng.integers(0, 365, n_visits),
            },
        )
    )
    return db


def b01(db) -> Query:
    """AMPLab query 1: high-pagerank pages."""
    return (
        scan(db, "rankings")
        .where(col("r_pagerank") > 50)
        .groupby("r_pagerank")
        .agg(count("pages"))
        .build("b01")
    )


def b02(db) -> Query:
    """AMPLab query 2: ad revenue per user prefix (bucketed user id)."""
    bucket = Func("bucket", lambda uid: uid // 100, [col("uv_userid")])
    return (
        scan(db, "uservisits")
        .derive(user_bucket=bucket)
        .groupby("user_bucket")
        .agg(sum_(col("uv_adrevenue"), "revenue"))
        .build("b02")
    )


def b03(db) -> Query:
    """AMPLab query 3: join rankings with uservisits, revenue per rank band."""
    band = Func("band", lambda r: r // 10, [col("r_pagerank")])
    return (
        scan(db, "uservisits")
        .join(scan(db, "rankings"), on=[("uv_pageid", "r_pageid")])
        .derive(rank_band=band)
        .groupby("rank_band")
        .agg(sum_(col("uv_adrevenue"), "revenue"), avg(col("r_avgduration"), "avg_duration"))
        .build("b03")
    )


def b04(db) -> Query:
    """BigBench-style: distinct visitors and revenue per country."""
    return (
        scan(db, "uservisits")
        .groupby("uv_countrycode")
        .agg(
            count_distinct(col("uv_userid"), "visitors"),
            sum_(col("uv_adrevenue"), "revenue"),
        )
        .build("b04")
    )


def b05(db) -> Query:
    """Scalar: total revenue in a date window."""
    return (
        scan(db, "uservisits")
        .where((col("uv_date") >= 100) & (col("uv_date") < 200))
        .agg(sum_(col("uv_adrevenue"), "revenue"), count("visits"))
        .build("b05")
    )


def b06(db) -> Query:
    """Daily visit counts (fine-grained groups)."""
    return (
        scan(db, "uservisits")
        .groupby("uv_date")
        .agg(count("visits"), sum_(col("uv_adrevenue"), "revenue"))
        .build("b06")
    )


QUERY_BUILDERS: Dict[str, Callable] = {fn.__name__: fn for fn in [b01, b02, b03, b04, b05, b06]}


def queries(db) -> List[Query]:
    return [build(db) for build in QUERY_BUILDERS.values()]
