"""Transport benchmark core: shared-memory arena vs pickle-over-pipe.

Runs each plan twice through the partition-parallel executor at a fixed
degree — once with partition results pickled over the worker pipe, once
through the shared-memory arena — and records wall clock, bytes moved on
the pipe vs bytes mapped, and the process tree's peak RSS. The two
answers must be bit-identical (same ``task_seed`` drives both runs).

Two workloads are measured:

* **TPC-DS queries** — end-to-end numbers where transport is one cost
  among sampling, filtering and aggregation. Informational: the speedup
  here is bounded by how much of each query *is* transport.
* **A transport-bound shuffle** — a wide synthetic table pushed through a
  near-pass-through filter, so the partition results are roughly the
  partition inputs and the run cost is dominated by moving them. This is
  the workload the ``>= 1.5x`` perf bar asserts on (when the machine has
  the cores to show it).

Used by ``benchmarks/bench_transport.py`` (asserting CI perf bar, writes
``BENCH_exec.json``) and the ``repro bench-transport`` subcommand.
"""

from __future__ import annotations

import json
import resource
from time import perf_counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine.executor import Executor
from repro.engine.table import Database, Table
from repro.optimizer.planner import QuickrPlanner

__all__ = [
    "DEFAULT_QUERIES",
    "SHUFFLE_ROWS",
    "measure_transport",
    "shuffle_database",
    "write_report",
]

#: TPC-DS queries whose parallel plans cover both partitioning strategies
#: (round-robin and hash-with-broadcast) and ship sampled-row partials big
#: enough for transport to register in the profile.
DEFAULT_QUERIES = ("q01", "q02", "q05", "q07", "q12", "q17")

#: Rows in the synthetic shuffle table (6 float64 columns => ~48 bytes/row).
SHUFFLE_ROWS = 1_500_000


def _bit_identical(a: Table, b: Table) -> bool:
    if set(a.column_names) != set(b.column_names) or a.num_rows != b.num_rows:
        return False
    for c in a.column_names:
        x, y = a.column(c), b.column(c)
        same = (
            np.array_equal(x, y, equal_nan=True)
            if x.dtype.kind == "f"
            else np.array_equal(x, y)
        )
        if not same:
            return False
    return True


def shuffle_database(rows: int = SHUFFLE_ROWS, seed: int = 5) -> Database:
    """A single wide table whose parallel plans are transport-bound: the
    filter passes essentially every row, so each partition's result is its
    input and moving it back is the run."""
    gen = np.random.default_rng(seed)
    db = Database()
    db.register(
        Table(
            "wide",
            {f"c{i}": gen.normal(0.0, 1.0, rows) for i in range(6)},
        )
    )
    return db


def _shuffle_plan(db: Database):
    from repro.algebra.builder import scan
    from repro.algebra.expressions import col

    return (
        scan(db, "wide")
        .where(col("c0") > -1e9)  # pass-through: keeps the plan parallelizable
        .derive(c_sum=col("c1") + col("c2"))
        .build("shuffle")
        .plan
    )


def _executor(db: Database, transport: str, degree: int, seed: int, measure: bool = False) -> Executor:
    from repro.parallel import ParallelOptions

    return Executor(
        db,
        parallelism=degree,
        parallel_options=ParallelOptions(
            pool="process",
            max_workers=degree,
            transport=transport,
            task_seed=seed,
            measure_transport_bytes=measure,
        ),
    )


def _timed(executor: Executor, plan, repeat: int):
    """Best-of-``repeat`` execution; returns (result, seconds) where the
    seconds come from the parallel section (compile excluded)."""
    best = None
    best_s = float("inf")
    for _ in range(max(1, repeat)):
        t0 = perf_counter()
        result = executor.execute(plan)
        wall = perf_counter() - t0
        metrics = result.parallel
        seconds = metrics.wall_clock_seconds if metrics is not None else wall
        if seconds < best_s:
            best, best_s = result, seconds
    return best, best_s


def _measure_plan(db, plan, name: str, degree: int, seed: int, repeat: int) -> Dict:
    """One plan, both transports; the pickle byte count comes from a third
    (untimed) run so measurement overhead never inflates the timed one."""
    via_pickle, pickle_s = _timed(_executor(db, "pickle", degree, seed), plan, repeat)
    via_shm, shm_s = _timed(_executor(db, "auto", degree, seed), plan, repeat)
    counted = _executor(db, "pickle", degree, seed, measure=True).execute(plan)

    shm_metrics = via_shm.parallel
    transport = shm_metrics.transport if shm_metrics is not None else "serial"
    row: Dict = {
        "query": name,
        "transport": transport,
        "seconds_pickle": round(pickle_s, 4),
        "seconds_shm": round(shm_s, 4),
        "bytes_pickled": (
            counted.parallel.result_bytes_on_pipe if counted.parallel else 0
        ),
        "bytes_on_pipe_shm": (
            shm_metrics.result_bytes_on_pipe if shm_metrics else 0
        ),
        "bytes_shared": shm_metrics.result_bytes_shared if shm_metrics else 0,
        "identical": _bit_identical(via_pickle.table, via_shm.table),
    }
    return row


def measure_transport(
    db: Database,
    names: Sequence[str] = DEFAULT_QUERIES,
    degree: int = 4,
    seed: int = 7,
    repeat: int = 1,
    shuffle_rows: int = SHUFFLE_ROWS,
    scale: Optional[float] = None,
) -> Dict:
    """Run the full transport comparison; returns the report dict.

    ``report["queries"]`` holds one row per TPC-DS query,
    ``report["shuffle"]`` the transport-bound microbench row, and
    ``report["speedup_shuffle"]`` the pickle/shm wall-clock ratio the perf
    bar is judged on.
    """
    from repro.parallel import available_parallelism
    from repro.workloads.tpcds import query_by_name

    planner = QuickrPlanner(db)
    rows: List[Dict] = []
    for name in names:
        plan = planner.plan(query_by_name(db, name)).plan
        rows.append(_measure_plan(db, plan, name, degree, seed, repeat))

    shuffle_db = shuffle_database(rows=shuffle_rows)
    shuffle_row = _measure_plan(
        shuffle_db, _shuffle_plan(shuffle_db), "shuffle", degree, seed, repeat
    )

    usage_self = resource.getrusage(resource.RUSAGE_SELF)
    usage_children = resource.getrusage(resource.RUSAGE_CHILDREN)
    total_pickle = sum(r["seconds_pickle"] for r in rows)
    total_shm = sum(r["seconds_shm"] for r in rows)
    return {
        "degree": degree,
        "cores": available_parallelism(),
        "scale": scale,
        "repeat": repeat,
        "queries": rows,
        "shuffle": shuffle_row,
        "speedup_tpcds": round(total_pickle / total_shm, 3) if total_shm else None,
        "speedup_shuffle": (
            round(shuffle_row["seconds_pickle"] / shuffle_row["seconds_shm"], 3)
            if shuffle_row["seconds_shm"]
            else None
        ),
        "peak_rss_kb": max(usage_self.ru_maxrss, usage_children.ru_maxrss),
    }


def write_report(report: Dict, path: str) -> None:
    """Write the transport report in the shared bench envelope
    (``{"meta": {...}, "series": <report>}``; see
    :mod:`repro.experiments.report`)."""
    from repro.experiments.report import bench_envelope

    payload = bench_envelope(
        "transport",
        report,
        degree=report.get("degree"),
        scale=report.get("scale"),
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
