"""Rendering helpers: percentile tables, CDFs and aligned text tables.

Every benchmark harness prints through these so the output rows read like
the paper's tables and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["percentile_row", "cdf", "format_table", "format_percentile_table", "fraction_at_or_above"]

DEFAULT_PERCENTILES = (10, 25, 50, 75, 90, 95)


def percentile_row(values: Sequence[float], percentiles: Sequence[int] = DEFAULT_PERCENTILES) -> Dict[int, float]:
    """Percentiles of a metric across queries, as the paper's tables report."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {p: float("nan") for p in percentiles}
    return {p: float(np.percentile(arr, p)) for p in percentiles}


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative fraction)."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions


def fraction_at_or_above(values: Sequence[float], threshold: float) -> float:
    """Fraction of values >= threshold (used for 'X% of queries gain >= 2x')."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr >= threshold))


def format_table(rows: List[dict], title: str = "") -> str:
    """Align a list of homogeneous dicts into a text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), max(len(str(r.get(h, ""))) for r in rows)) for h in headers}
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def format_percentile_table(
    metrics: Dict[str, Sequence[float]],
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
    title: str = "",
    decimals: int = 2,
) -> str:
    """A paper-style table: one metric per row, percentiles as columns."""
    rows = []
    for name, values in metrics.items():
        row = {"metric": name}
        for p, v in percentile_row(values, percentiles).items():
            row[f"{p}th"] = round(v, decimals)
        rows.append(row)
    return format_table(rows, title)
