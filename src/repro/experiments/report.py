"""Rendering helpers: percentile tables, CDFs and aligned text tables.

Every benchmark harness prints through these so the output rows read like
the paper's tables and can be diffed against EXPERIMENTS.md.

This module also owns the shared **bench JSON envelope**: every
``BENCH_*.json`` artifact is ``{"meta": {...}, "series": {...}}`` with
``meta.schema == "repro-bench/1"``, so ``repro bench-report`` (and CI)
can merge artifacts from different benchmarks without per-file parsing
rules. :func:`load_bench` tolerates pre-envelope files by wrapping them
on read.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "percentile_row",
    "cdf",
    "format_table",
    "format_percentile_table",
    "fraction_at_or_above",
    "BENCH_SCHEMA",
    "bench_envelope",
    "load_bench",
]

DEFAULT_PERCENTILES = (10, 25, 50, 75, 90, 95)


def percentile_row(values: Sequence[float], percentiles: Sequence[int] = DEFAULT_PERCENTILES) -> Dict[int, float]:
    """Percentiles of a metric across queries, as the paper's tables report."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {p: float("nan") for p in percentiles}
    return {p: float(np.percentile(arr, p)) for p in percentiles}


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative fraction)."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions


def fraction_at_or_above(values: Sequence[float], threshold: float) -> float:
    """Fraction of values >= threshold (used for 'X% of queries gain >= 2x')."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr >= threshold))


def format_table(rows: List[dict], title: str = "") -> str:
    """Align a list of homogeneous dicts into a text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    headers = list(rows[0].keys())
    widths = {h: max(len(str(h)), max(len(str(r.get(h, ""))) for r in rows)) for h in headers}
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def format_percentile_table(
    metrics: Dict[str, Sequence[float]],
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
    title: str = "",
    decimals: int = 2,
) -> str:
    """A paper-style table: one metric per row, percentiles as columns."""
    rows = []
    for name, values in metrics.items():
        row = {"metric": name}
        for p, v in percentile_row(values, percentiles).items():
            row[f"{p}th"] = round(v, decimals)
        rows.append(row)
    return format_table(rows, title)


# -- the shared bench JSON envelope --------------------------------------------

#: Schema tag carried in every BENCH_*.json written through the envelope.
BENCH_SCHEMA = "repro-bench/1"


def bench_envelope(bench: str, series: Dict[str, Any], **meta: Any) -> Dict[str, Any]:
    """Wrap one benchmark's measurements in the shared envelope.

    ``bench`` names the producing benchmark (``transport``, ``governor``,
    ``prune``, ...); ``series`` is the benchmark's own payload, unchanged;
    extra keyword arguments (scale, degree, seed, ...) land in ``meta``.
    None-valued meta entries are dropped so callers can forward optional
    settings (``degree=report.get("degree")``) without cluttering the file.
    """
    kept = {k: v for k, v in meta.items() if v is not None}
    return {
        "meta": {"schema": BENCH_SCHEMA, "bench": str(bench), **kept},
        "series": series,
    }


def load_bench(path: str) -> Dict[str, Any]:
    """Load one ``BENCH_*.json``, enveloping legacy (pre-schema) files.

    A file already in the envelope passes through; a bare payload is
    wrapped as ``bench="legacy"`` so downstream code can always rely on
    the ``{"meta", "series"}`` shape.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if (
        isinstance(payload, dict)
        and isinstance(payload.get("meta"), dict)
        and "series" in payload
        and str(payload["meta"].get("schema", "")).startswith("repro-bench/")
    ):
        return payload
    return {
        "meta": {"schema": BENCH_SCHEMA, "bench": "legacy", "path": path},
        "series": payload,
    }
