"""Error metrics for approximate answers (paper Section 5.1).

*Missed Groups* — fraction of groups present in the exact answer but absent
from the approximate one. *Aggregation Error* — mean relative error of all
aggregate values over the groups both answers share. Both are computed by
aligning the two answer tables on the group-by columns, exactly as the
paper does "by analyzing the query output".

The paper's LIMIT-100 subtlety is reproduced: with ``full_answer=True``
the comparison is taken before any ORDER BY + LIMIT (the paper's "full
answer"), which is how Quickr's zero-missed-groups claim is evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.algebra.aggregates import AggKind
from repro.algebra.logical import Aggregate, Limit, LogicalNode, OrderBy
from repro.engine.table import Table

__all__ = ["ErrorMetrics", "compare_answers", "strip_limit", "answer_structure"]


@dataclass
class ErrorMetrics:
    """Accuracy of one approximate answer against the exact answer."""

    groups_exact: int
    groups_missed: int
    extra_groups: int
    aggregation_error: float  # mean relative error over shared groups
    max_aggregation_error: float
    per_aggregate_error: Dict[str, float]

    @property
    def missed_fraction(self) -> float:
        if self.groups_exact == 0:
            return 0.0
        return self.groups_missed / self.groups_exact

    def within(self, ratio: float) -> bool:
        """True when no groups are missed and all aggregates are within
        ``ratio`` of truth — the paper's accuracy goal with ratio = 0.1."""
        return self.groups_missed == 0 and self.aggregation_error <= ratio


def answer_structure(plan: LogicalNode) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(group columns, aggregate aliases) of the plan's outermost aggregate."""
    for node in plan.walk():
        if isinstance(node, Aggregate):
            sampleable = [a.alias for a in node.aggs if a.kind is not AggKind.MIN and a.kind is not AggKind.MAX]
            return node.group_by, tuple(sampleable)
    return (), ()


def strip_limit(plan: LogicalNode) -> LogicalNode:
    """Remove top-of-plan ORDER BY / LIMIT: the paper's "full answer"."""
    while isinstance(plan, (Limit, OrderBy)):
        plan = plan.child
    return plan


def _group_map(table: Table, group_cols: Sequence[str], agg_cols: Sequence[str]) -> Dict[tuple, tuple]:
    if not group_cols:
        if table.num_rows == 0:
            return {}
        return {(): tuple(float(table.column(a)[0]) for a in agg_cols)}
    keys = [table.column(c) for c in group_cols]
    values = [table.column(a) for a in agg_cols]
    out = {}
    for i in range(table.num_rows):
        key = tuple(k[i] for k in keys)
        out[key] = tuple(float(v[i]) for v in values)
    return out


def compare_answers(
    exact: Table,
    approx: Table,
    group_cols: Sequence[str],
    agg_cols: Sequence[str],
) -> ErrorMetrics:
    """Align two answers on the group columns and measure the error."""
    agg_cols = [a for a in agg_cols if exact.has_column(a) and approx.has_column(a)]
    exact_map = _group_map(exact, group_cols, agg_cols)
    approx_map = _group_map(approx, group_cols, agg_cols)

    missed = sum(1 for key in exact_map if key not in approx_map)
    extra = sum(1 for key in approx_map if key not in exact_map)

    per_agg_errors: Dict[str, List[float]] = {a: [] for a in agg_cols}
    for key, truth in exact_map.items():
        got = approx_map.get(key)
        if got is None:
            continue
        for alias, true_value, est in zip(agg_cols, truth, got):
            if not np.isfinite(true_value) or not np.isfinite(est):
                continue
            denom = abs(true_value)
            if denom < 1e-12:
                error = 0.0 if abs(est) < 1e-12 else 1.0
            else:
                error = abs(est - true_value) / denom
            per_agg_errors[alias].append(error)

    all_errors = [e for errors in per_agg_errors.values() for e in errors]
    return ErrorMetrics(
        groups_exact=len(exact_map),
        groups_missed=missed,
        extra_groups=extra,
        aggregation_error=float(np.mean(all_errors)) if all_errors else 0.0,
        max_aggregation_error=float(np.max(all_errors)) if all_errors else 0.0,
        per_aggregate_error={
            alias: float(np.mean(errors)) if errors else 0.0
            for alias, errors in per_agg_errors.items()
        },
    )
