"""One generator per paper table/figure (the per-experiment index of
DESIGN.md maps each to its benchmark target).

Each function returns plain data (dicts / arrays) plus enough context to
print a paper-style table via :mod:`repro.experiments.report`. The
benchmark files under ``benchmarks/`` call these and print the same rows
the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.algebra.analysis import plan_shape_stats
from repro.algebra.builder import Query
from repro.core.accuracy import unroll_plan
from repro.engine.executor import Executor
from repro.engine.table import Database
from repro.experiments.report import cdf, fraction_at_or_above, percentile_row
from repro.experiments.runner import QueryOutcome
from repro.optimizer.planner import QuickrPlanner
from repro.workloads import production

__all__ = [
    "figure2",
    "table3_shape_stats",
    "table4_qo_times",
    "table5_sampler_placement",
    "table7_sampler_frequency",
    "figure8a_performance",
    "figure8b_error",
    "figure8c_correlation",
    "table9_workload_comparison",
    "figure9_unrolling",
]


# -- Figure 2: production trace ---------------------------------------------------

def figure2(num_queries: int = 20_000, seed: int = 2016) -> dict:
    """Figure 2a CDF and Figure 2b percentile table from the synthetic
    production trace, alongside the paper's published values."""
    trace = production.generate_trace(num_queries=num_queries, seed=seed)
    pb, hours = production.input_usage_cdf(trace)
    measured = production.shape_percentiles(trace)
    # Headline Figure 2a statistic: PB of input touched by the jobs that
    # account for half the cluster time.
    half_idx = int(np.searchsorted(hours, 0.5))
    pb_at_half = float(pb[min(half_idx, len(pb) - 1)]) if len(pb) else 0.0
    return {
        "cdf_pb": pb,
        "cdf_hours": hours,
        "pb_at_half_cluster_time": pb_at_half,
        "total_pb": trace.total_input_pb(),
        "measured": measured,
        "paper": production.PAPER_FIGURE2B,
    }


# -- Table 3 / Table 9: query shape statistics -----------------------------------

def _shape_rows(database: Database, queries: Sequence[Query]) -> Dict[str, List[float]]:
    planner = QuickrPlanner(database)
    executor = Executor(database)
    metrics: Dict[str, List[float]] = {
        "passes": [],
        "total_over_first_pass": [],
        "aggregation_ops": [],
        "joins": [],
        "depth": [],
        "operators": [],
        "qcs_plus_qvs": [],
        "qcs": [],
        "udfs": [],
    }
    for query in queries:
        baseline = planner.plan_baseline(query)
        shape = plan_shape_stats(baseline.plan)
        result = executor.execute(baseline.plan)
        metrics["passes"].append(result.cost.effective_passes)
        metrics["total_over_first_pass"].append(result.cost.total_over_first_pass())
        metrics["aggregation_ops"].append(shape["aggregation_ops"])
        metrics["joins"].append(shape["joins"])
        metrics["depth"].append(shape["depth"])
        metrics["operators"].append(shape["operators"])
        metrics["qcs_plus_qvs"].append(shape["qcs_plus_qvs"])
        metrics["qcs"].append(shape["qcs_size"])
        metrics["udfs"].append(shape["udfs"])
    return metrics


#: Paper Table 3 (TPC-DS characteristics) for the measured-vs-paper diff.
PAPER_TABLE3 = {
    "passes": {10: 1.12, 25: 1.18, 50: 1.3, 75: 1.53, 90: 1.92, 95: 2.61},
    "total_over_first_pass": {10: 1.26, 25: 1.44, 50: 1.67, 75: 2.0, 90: 2.63, 95: 3.42},
    "aggregation_ops": {10: 1, 25: 1, 50: 3, 75: 4, 90: 8, 95: 16},
    "joins": {10: 2, 25: 3, 50: 4, 75: 7, 90: 9, 95: 10},
    "depth": {10: 17, 25: 18, 50: 20, 75: 23, 90: 26, 95: 27},
    "operators": {10: 20, 25: 23, 50: 32, 75: 44, 90: 52, 95: 86},
    "qcs_plus_qvs": {10: 2, 25: 4, 50: 5, 75: 7, 90: 12, 95: 17},
    "qcs": {10: 0, 25: 1, 50: 3, 75: 5, 90: 9, 95: 11},
    "udfs": {10: 1, 25: 2, 50: 4, 75: 9, 90: 14, 95: 24},
}


def table3_shape_stats(database: Database, queries: Sequence[Query]) -> dict:
    """Table 3: TPC-DS query characteristics (measured vs paper)."""
    return {"measured": _shape_rows(database, queries), "paper": PAPER_TABLE3}


def table9_workload_comparison(scale: float = 0.2, seed: int = 5) -> dict:
    """Table 9: shape statistics across TPC-DS, TPC-H and 'Other'."""
    from repro.workloads import other as other_wl
    from repro.workloads import tpcds, tpch

    tpcds_db = tpcds.generate_tpcds(scale=scale, seed=seed)
    tpch_db = tpch.generate_tpch(scale=scale, seed=seed)
    other_db = other_wl.generate_other(scale=scale, seed=seed)
    return {
        "TPC-DS": _shape_rows(tpcds_db, tpcds.queries(tpcds_db)),
        "TPC-H": _shape_rows(tpch_db, tpch.queries(tpch_db)),
        "Other": _shape_rows(other_db, other_wl.queries(other_db)),
    }


# -- Tables 4, 5, 7 and Figure 8: the main evaluation ----------------------------

def table4_qo_times(outcomes: Sequence[QueryOutcome]) -> dict:
    """Table 4: query-optimization time percentiles, Baseline vs Quickr."""
    return {
        "baseline_qo_seconds": percentile_row([o.qo_time_baseline for o in outcomes]),
        "quickr_qo_seconds": percentile_row([o.qo_time_quickr for o in outcomes]),
        "median_overhead_seconds": float(
            np.median([o.qo_time_quickr - o.qo_time_baseline for o in outcomes])
        ),
    }


def table5_sampler_placement(outcomes: Sequence[QueryOutcome]) -> dict:
    """Table 5: samplers per query and sampler-source distances."""
    counts = [o.sampler_count for o in outcomes]
    count_hist: Dict[int, float] = {}
    for value in counts:
        count_hist[value] = count_hist.get(value, 0) + 1
    count_hist = {k: v / len(counts) for k, v in sorted(count_hist.items())}

    distances = [d for o in outcomes for d in o.sampler_source_distances]
    dist_hist: Dict[int, float] = {}
    for value in distances:
        dist_hist[value] = dist_hist.get(value, 0) + 1
    total = max(1, len(distances))
    dist_hist = {k: v / total for k, v in sorted(dist_hist.items())}
    return {
        "samplers_per_query": count_hist,
        "sampler_source_distance": dist_hist,
        "unapproximable_fraction": float(np.mean([not o.approximable for o in outcomes])),
        "first_pass_sampler_fraction": dist_hist.get(0, 0.0),
    }


def table7_sampler_frequency(outcomes: Sequence[QueryOutcome]) -> dict:
    """Table 7: frequency of use of each sampler type."""
    all_samplers = [kind for o in outcomes for kind in o.sampler_kinds]
    total = max(1, len(all_samplers))
    distribution = {
        kind: all_samplers.count(kind) / total for kind in ("uniform", "distinct", "universe")
    }
    per_query = {
        kind: float(np.mean([kind in o.sampler_kinds for o in outcomes]))
        for kind in ("uniform", "distinct", "universe")
    }
    return {"distribution_across_samplers": distribution, "queries_using_type": per_query}


def figure8a_performance(outcomes: Sequence[QueryOutcome]) -> dict:
    """Figure 8a: CDFs of Baseline/Quickr performance ratios."""
    gains = {
        "machine_hours": [o.machine_hours_gain for o in outcomes],
        "runtime": [o.runtime_gain for o in outcomes],
        "intermediate_data": [o.intermediate_gain for o in outcomes],
        "shuffled_data": [o.shuffled_gain for o in outcomes],
    }
    return {
        "cdf": {name: cdf(values) for name, values in gains.items()},
        "median": {name: float(np.median(values)) for name, values in gains.items()},
        "fraction_mh_gain_over_2x": fraction_at_or_above(gains["machine_hours"], 2.0),
        "fraction_mh_gain_over_3x": fraction_at_or_above(gains["machine_hours"], 3.0),
        "fraction_regressed": float(np.mean(np.asarray(gains["machine_hours"]) < 0.99)),
    }


def figure8b_error(outcomes: Sequence[QueryOutcome]) -> dict:
    """Figure 8b: CDFs of error metrics, as-returned and full-answer."""
    agg_error = [o.error.aggregation_error for o in outcomes]
    agg_error_full = [o.error_full.aggregation_error for o in outcomes]
    missed = [o.error.missed_fraction for o in outcomes]
    missed_full = [o.error_full.missed_fraction for o in outcomes]
    return {
        "cdf": {
            "agg_error": cdf(agg_error),
            "agg_error_full": cdf(agg_error_full),
            "missed_groups": cdf(missed),
            "missed_groups_full": cdf(missed_full),
        },
        "fraction_within_10pct": float(np.mean(np.asarray(agg_error) <= 0.10)),
        "fraction_within_20pct": float(np.mean(np.asarray(agg_error) <= 0.20)),
        "fraction_no_missed_groups": float(np.mean(np.asarray(missed) == 0.0)),
        "fraction_no_missed_groups_full": float(np.mean(np.asarray(missed_full) == 0.0)),
    }


def figure8c_correlation(outcomes: Sequence[QueryOutcome], num_buckets: int = 5) -> dict:
    """Figure 8c: average query aspects per machine-hours-gain bucket."""
    gains = np.asarray([o.machine_hours_gain for o in outcomes])
    order = np.argsort(gains)
    buckets = np.array_split(order, num_buckets)
    rows = []
    for bucket in buckets:
        if len(bucket) == 0:
            continue
        chosen = [outcomes[i] for i in bucket]
        distances = [d for o in chosen for d in o.sampler_source_distances]
        rows.append(
            {
                "gain_bucket_mean": float(np.mean([o.machine_hours_gain for o in chosen])),
                "sampler_source_distance": float(np.mean(distances)) if distances else 0.0,
                "total_over_first_pass": float(
                    np.mean([o.total_over_first_pass_baseline for o in chosen])
                ),
                "passes": float(np.mean([o.passes_baseline for o in chosen])),
                "intermediate_reduction": float(np.mean([o.intermediate_gain for o in chosen])),
            }
        )
    return {"buckets": rows}


def figure9_unrolling(database: Database, query: Query) -> dict:
    """Figure 9: the dominance-rule unrolling of a sampled plan."""
    planner = QuickrPlanner(database)
    result = planner.plan(query)
    unrolled = unroll_plan(result.plan)
    return {
        "approximable": result.approximable,
        "samplers": result.sampler_kinds(),
        "unrolled_kind": unrolled.kind if unrolled else None,
        "unrolled_p": unrolled.p if unrolled else None,
        "steps": [(s.rule, s.operator, s.detail) for s in unrolled.steps] if unrolled else [],
    }
