"""Experiment runner: execute a query exactly and approximately, measure
both performance and accuracy — one row of the paper's evaluation.

For every query this produces the measurements behind Figures 8a-8c and
Tables 4, 5 and 7: Baseline/Quickr ratios of machine-hours, runtime,
shuffled data and intermediate data; missed-group and aggregation-error
metrics (both on the answer as returned and on the paper's "full answer"
with ORDER BY/LIMIT stripped); sampler counts, kinds and source distances;
and query-optimization times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.algebra.builder import Query
from repro.core.asalqa import AsalqaOptions
from repro.engine.executor import Executor
from repro.engine.metrics import ClusterConfig
from repro.engine.table import Database
from repro.experiments.metrics import ErrorMetrics, answer_structure, compare_answers, strip_limit
from repro.optimizer.planner import QuickrPlanner

__all__ = ["QueryOutcome", "ExperimentRunner"]


def _ratio(baseline: float, quickr: float) -> float:
    """Baseline/Quickr ratio, stabilized for near-zero denominators."""
    return (baseline + 1.0) / (quickr + 1.0)


@dataclass
class QueryOutcome:
    """Everything measured about one query."""

    name: str
    approximable: bool
    sampler_kinds: List[str]
    sampler_source_distances: List[int]
    machine_hours_gain: float
    runtime_gain: float
    shuffled_gain: float
    intermediate_gain: float
    passes_baseline: float
    passes_quickr: float
    total_over_first_pass_baseline: float
    error: ErrorMetrics
    error_full: ErrorMetrics
    qo_time_baseline: float
    qo_time_quickr: float
    estimated_gain: float
    alternatives_explored: int

    @property
    def sampler_count(self) -> int:
        return len(self.sampler_kinds)

    def summary(self) -> dict:
        return {
            "query": self.name,
            "approximable": self.approximable,
            "samplers": list(self.sampler_kinds),
            "mh_gain": round(self.machine_hours_gain, 2),
            "runtime_gain": round(self.runtime_gain, 2),
            "missed": self.error.groups_missed,
            "missed_full": self.error_full.groups_missed,
            "agg_error": round(self.error.aggregation_error, 4),
        }


class ExperimentRunner:
    """Runs the paper's per-query measurement protocol."""

    def __init__(
        self,
        database: Database,
        options: Optional[AsalqaOptions] = None,
        cluster: Optional[ClusterConfig] = None,
        parallelism: int = 1,
        parallel_options=None,
    ):
        cluster = cluster or (options.cluster if options else ClusterConfig())
        if options is None:
            options = AsalqaOptions(cluster=cluster)
        self.planner = QuickrPlanner(database, options)
        self.executor = Executor(
            database, cluster, parallelism=parallelism, parallel_options=parallel_options
        )

    def run_query(self, query: Query) -> QueryOutcome:
        baseline = self.planner.plan_baseline(query)
        quickr = self.planner.plan(query)

        exact = self.executor.execute(baseline.plan)
        approx = self.executor.execute(quickr.plan)

        group_cols, agg_cols = answer_structure(baseline.plan)
        error = compare_answers(exact.table, approx.table, group_cols, agg_cols)

        # Full answer: strip top-of-plan ORDER BY / LIMIT and re-compare.
        full_base = strip_limit(baseline.plan)
        full_quickr = strip_limit(quickr.plan)
        if full_base is not baseline.plan or full_quickr is not quickr.plan:
            exact_full = self.executor.execute(full_base)
            approx_full = self.executor.execute(full_quickr)
            error_full = compare_answers(exact_full.table, approx_full.table, group_cols, agg_cols)
        else:
            error_full = error

        return QueryOutcome(
            name=query.name,
            approximable=quickr.approximable,
            sampler_kinds=quickr.sampler_kinds(),
            sampler_source_distances=approx.cost.sampler_source_distances(),
            machine_hours_gain=_ratio(exact.cost.machine_hours, approx.cost.machine_hours),
            runtime_gain=_ratio(exact.cost.runtime, approx.cost.runtime),
            shuffled_gain=_ratio(exact.cost.shuffled_rows, approx.cost.shuffled_rows),
            intermediate_gain=_ratio(exact.cost.intermediate_rows, approx.cost.intermediate_rows),
            passes_baseline=exact.cost.effective_passes,
            passes_quickr=approx.cost.effective_passes,
            total_over_first_pass_baseline=exact.cost.total_over_first_pass(),
            error=error,
            error_full=error_full,
            qo_time_baseline=baseline.qo_time_seconds,
            qo_time_quickr=quickr.qo_time_seconds,
            estimated_gain=quickr.estimated_gain(),
            alternatives_explored=quickr.alternatives_explored,
        )

    def run_suite(self, queries: Sequence[Query]) -> List[QueryOutcome]:
        return [self.run_query(q) for q in queries]
