"""Evaluation harness: runners, error metrics, per-figure generators."""

from repro.experiments.figures import (
    figure2,
    figure8a_performance,
    figure8b_error,
    figure8c_correlation,
    figure9_unrolling,
    table3_shape_stats,
    table4_qo_times,
    table5_sampler_placement,
    table7_sampler_frequency,
    table9_workload_comparison,
)
from repro.experiments.metrics import ErrorMetrics, answer_structure, compare_answers, strip_limit
from repro.experiments.report import (
    cdf,
    format_percentile_table,
    format_table,
    fraction_at_or_above,
    percentile_row,
)
from repro.experiments.runner import ExperimentRunner, QueryOutcome

__all__ = [
    "figure2",
    "figure8a_performance",
    "figure8b_error",
    "figure8c_correlation",
    "figure9_unrolling",
    "table3_shape_stats",
    "table4_qo_times",
    "table5_sampler_placement",
    "table7_sampler_frequency",
    "table9_workload_comparison",
    "ErrorMetrics",
    "answer_structure",
    "compare_answers",
    "strip_limit",
    "cdf",
    "format_percentile_table",
    "format_table",
    "fraction_at_or_above",
    "percentile_row",
    "ExperimentRunner",
    "QueryOutcome",
]
