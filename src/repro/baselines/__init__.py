"""Comparison systems: the no-sampler Baseline is the planner itself
(:meth:`repro.optimizer.QuickrPlanner.plan_baseline`); BlinkDB-style
apriori stratified sampling lives here."""

from repro.baselines.blinkdb import (
    BlinkDB,
    BlinkDBReport,
    SampleSelection,
    StratifiedSample,
    build_stratified_sample,
    sample_size_for,
    select_samples,
)

__all__ = [
    "BlinkDB",
    "BlinkDBReport",
    "SampleSelection",
    "StratifiedSample",
    "build_stratified_sample",
    "sample_size_for",
    "select_samples",
]
