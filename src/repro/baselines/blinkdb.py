"""BlinkDB-style apriori stratified sampling (the paper's Section 5.5 rival).

BlinkDB stores, ahead of time, a set of stratified samples of a popular
input table — each stratified on some Query Column Set (QCS) and capped at
``cap_per_stratum`` rows per distinct value — chosen to maximize query
coverage under a storage budget (an MILP). At query time the best matching
sample answers the query.

Following the paper's methodology exactly:

* samples are built only for ``store_sales`` — the largest table, used by
  most queries, with the highest potential to help;
* the sample-selection MILP (solved with ``scipy.optimize.milp``, with a
  greedy fallback) maximizes the number of queries whose QCS is covered by
  some chosen sample, subject to total sample rows <= budget x input rows;
* at evaluation, every query runs on *every* stored sample and gets the
  benefit of perfect matching: the best-performing sample that still meets
  the error constraint (no missed groups, aggregates within +-10%) is
  picked post-hoc.

The structural reasons BlinkDB fails on this workload (paper Table 6) all
re-appear: large QCSes make stratified samples nearly as large as the
input; diverse QCSes don't share samples; and fact-fact joins are not
helped by a sample of one side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.algebra.addressing import plan_fingerprint
from repro.algebra.analysis import query_column_set
from repro.algebra.builder import Query
from repro.algebra.logical import LogicalNode, Scan
from repro.engine.executor import Executor
from repro.engine.table import WEIGHT_COLUMN, Database, Table
from repro.errors import WorkloadError
from repro.experiments.metrics import answer_structure, compare_answers
from repro.samplers.distinct import stratum_codes

__all__ = ["StratifiedSample", "SampleSelection", "BlinkDB", "BlinkDBReport"]


@dataclass
class StratifiedSample:
    """One stored sample: the source table stratified on ``columns``."""

    source: str
    columns: Tuple[str, ...]
    cap_per_stratum: int
    table: Table

    @property
    def rows(self) -> int:
        return self.table.num_rows

    def registered_name(self) -> str:
        return f"{self.source}__sample_on_{'_'.join(self.columns)}"


def build_stratified_sample(
    table: Table, columns: Sequence[str], cap_per_stratum: int, seed: int = 0
) -> StratifiedSample:
    """Cap each stratum at ``cap_per_stratum`` rows, weighting kept rows by
    stratum_frequency / kept so aggregates stay unbiased."""
    if table.num_rows == 0:
        raise WorkloadError(f"cannot sample empty table {table.name!r}")
    rng = np.random.default_rng(seed)
    codes = stratum_codes(table, list(columns))
    order = rng.permutation(table.num_rows)
    shuffled_codes = codes[order]
    # Rank within stratum after a random shuffle => uniform cap selection.
    sort_idx = np.argsort(shuffled_codes, kind="stable")
    sorted_codes = shuffled_codes[sort_idx]
    boundary = np.empty(len(sort_idx), dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_codes[1:] != sorted_codes[:-1]
    start = np.maximum.accumulate(np.where(boundary, np.arange(len(sort_idx)), 0))
    rank_sorted = np.arange(len(sort_idx)) - start
    keep_sorted = rank_sorted < cap_per_stratum
    kept_original = order[sort_idx[keep_sorted]]

    freq = np.bincount(codes, minlength=codes.max() + 1)
    kept_per = np.minimum(freq, cap_per_stratum)
    weights = freq[codes[kept_original]] / kept_per[codes[kept_original]]

    sampled = table.take(kept_original).with_columns({WEIGHT_COLUMN: weights.astype(np.float64)})
    return StratifiedSample(table.name, tuple(columns), cap_per_stratum, sampled)


def sample_size_for(table: Table, columns: Sequence[str], cap_per_stratum: int) -> int:
    """Exact row count a stratified sample on ``columns`` would occupy."""
    codes = stratum_codes(table, list(columns))
    freq = np.bincount(codes)
    return int(np.minimum(freq, cap_per_stratum).sum())


@dataclass
class SampleSelection:
    """Outcome of the storage-constrained sample-selection problem."""

    chosen: List[Tuple[str, ...]]
    total_rows: int
    budget_rows: int
    covered_queries: List[str]
    method: str


def _query_qcs_on_table(query: Query, table: Table) -> Optional[FrozenSet[str]]:
    """The query's QCS restricted to the target table's columns, or None if
    the query does not read the table."""
    reads = any(isinstance(n, Scan) and n.table == table.name for n in query.plan.walk())
    if not reads:
        return None
    table_cols = set(table.data_column_names())
    return frozenset(c for c in query_column_set(query.plan) if c in table_cols)


def select_samples(
    table: Table,
    queries: Sequence[Query],
    budget_rows: int,
    cap_per_stratum: int,
) -> SampleSelection:
    """Choose which QCSes to stratify on: coverage-maximizing MILP.

    Decision variables: x_s per candidate sample, y_q per query.
    Maximize sum(y_q) s.t. y_q <= sum of x_s over samples covering q and
    sum(x_s * size_s) <= budget. Solved exactly with scipy's MILP when
    available, else by greedy value-density.
    """
    qcs_by_query: Dict[str, FrozenSet[str]] = {}
    for query in queries:
        qcs = _query_qcs_on_table(query, table)
        if qcs is not None and qcs:
            qcs_by_query[query.name] = qcs

    candidates = sorted({qcs for qcs in qcs_by_query.values()}, key=sorted)
    sizes = [sample_size_for(table, sorted(qcs), cap_per_stratum) for qcs in candidates]
    covers: List[List[int]] = []  # per candidate, indices of queries covered
    names = list(qcs_by_query.keys())
    for qcs in candidates:
        covers.append([i for i, name in enumerate(names) if qcs_by_query[name] <= qcs])

    chosen_idx = _solve_milp(sizes, covers, len(names), budget_rows)
    method = "milp"
    if chosen_idx is None:
        chosen_idx = _solve_greedy(sizes, covers, budget_rows)
        method = "greedy"

    covered = set()
    for i in chosen_idx:
        covered.update(covers[i])
    return SampleSelection(
        chosen=[tuple(sorted(candidates[i])) for i in chosen_idx],
        total_rows=sum(sizes[i] for i in chosen_idx),
        budget_rows=budget_rows,
        covered_queries=sorted(names[i] for i in covered),
        method=method,
    )


def _solve_milp(sizes, covers, num_queries, budget) -> Optional[List[int]]:
    try:
        from scipy.optimize import LinearConstraint, milp
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return None
    n_s = len(sizes)
    if n_s == 0:
        return []
    n = n_s + num_queries  # x variables then y variables
    c = np.zeros(n)
    c[n_s:] = -1.0  # maximize covered queries
    constraints = []
    size_row = np.zeros(n)
    size_row[:n_s] = sizes
    constraints.append(LinearConstraint(size_row, -np.inf, budget))
    for q in range(num_queries):
        row = np.zeros(n)
        row[n_s + q] = 1.0
        for s in range(n_s):
            if q in covers[s]:
                row[s] = -1.0
        constraints.append(LinearConstraint(row, -np.inf, 0.0))
    integrality = np.ones(n)
    from scipy.optimize import Bounds

    result = milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(0, 1),
    )
    if not result.success:
        return None
    x = result.x[: len(sizes)]
    return [i for i, v in enumerate(x) if v > 0.5]


def _solve_greedy(sizes, covers, budget) -> List[int]:
    chosen: List[int] = []
    covered: set = set()
    used = 0
    while True:
        best, best_value = None, 0.0
        for i, size in enumerate(sizes):
            if i in chosen or used + size > budget:
                continue
            gain = len(set(covers[i]) - covered)
            if gain == 0:
                continue
            value = gain / max(1, size)
            if value > best_value:
                best, best_value = i, value
        if best is None:
            return chosen
        chosen.append(best)
        covered.update(covers[best])
        used += sizes[best]


@dataclass
class BlinkDBReport:
    """One row of the paper's Table 6."""

    budget_multiplier: float
    coverage: int
    total_queries: int
    median_gain_all: float
    median_gain_covered: float
    median_error_covered: float
    selection: SampleSelection

    def as_row(self) -> dict:
        return {
            "budget": f"{self.budget_multiplier:g}x",
            "coverage": f"{self.coverage}/{self.total_queries}",
            "median_gain_all": f"{(self.median_gain_all - 1) * 100:.0f}%",
            "median_gain_covered": (
                f"{(self.median_gain_covered - 1) * 100:.0f}%" if self.coverage else "-"
            ),
            "median_error": f"{self.median_error_covered * 100:.0f}%" if self.coverage else "-",
        }


class BlinkDB:
    """The apriori-sampling system under the paper's evaluation protocol."""

    def __init__(
        self,
        database: Database,
        target_table: str = "store_sales",
        cap_per_stratum: int = 100_000,
        error_target: float = 0.10,
        seed: int = 99,
    ):
        self.database = database
        self.target_table = target_table
        self.cap_per_stratum = cap_per_stratum
        self.error_target = error_target
        self.seed = seed
        self.executor = Executor(database)
        # Exact answers are budget-independent; cache them across evaluate()
        # calls (the paper's protocol sweeps budgets over the same queries),
        # keyed by canonical plan fingerprint so a resubmitted or renamed
        # query with the same plan reuses the answer.
        self._exact_cache: Dict[str, object] = {}

    def evaluate(self, queries: Sequence[Query], budget_multiplier: float) -> BlinkDBReport:
        """Build samples under the budget and measure coverage and gains."""
        table = self.database.table(self.target_table)
        budget_rows = int(budget_multiplier * table.num_rows)
        selection = select_samples(table, queries, budget_rows, self.cap_per_stratum)

        samples = [
            build_stratified_sample(table, columns, self.cap_per_stratum, seed=self.seed + i)
            for i, columns in enumerate(selection.chosen)
        ]
        for sample in samples:
            self.database.register(Table(sample.registered_name(), sample.table.to_dict()))

        gains_all: List[float] = []
        gains_covered: List[float] = []
        errors_covered: List[float] = []
        coverage = 0
        for query in queries:
            if self._joins_two_large_tables(query.plan):
                # Sampling one side of a fact-fact join cannot meet the
                # error constraint (Section 3: "sampling only one of the
                # join inputs does not speed up queries where both input
                # relations require a lot of work", and sample-then-join has
                # quadratically worse variance). Structurally uncovered.
                gains_all.append(1.0)
                continue
            fingerprint = plan_fingerprint(query.plan)
            exact = self._exact_cache.get(fingerprint)
            if exact is None:
                exact = self.executor.execute(query.plan)
                self._exact_cache[fingerprint] = exact
            best_gain, best_error = None, None
            for sample in samples:
                rewritten = self._substitute_scan(query.plan, sample)
                if rewritten is None:
                    continue
                approx = self.executor.execute(rewritten)
                group_cols, agg_cols = answer_structure(query.plan)
                err = compare_answers(exact.table, approx.table, group_cols, agg_cols)
                if err.groups_missed > 0 or err.aggregation_error > self.error_target:
                    continue
                gain = (exact.cost.machine_hours + 1.0) / (approx.cost.machine_hours + 1.0)
                if best_gain is None or gain > best_gain:
                    best_gain, best_error = gain, err.aggregation_error
            if best_gain is not None and best_gain > 1.0:
                coverage += 1
                gains_all.append(best_gain)
                gains_covered.append(best_gain)
                errors_covered.append(best_error)
            else:
                gains_all.append(1.0)

        return BlinkDBReport(
            budget_multiplier=budget_multiplier,
            coverage=coverage,
            total_queries=len(queries),
            median_gain_all=float(np.median(gains_all)) if gains_all else 1.0,
            median_gain_covered=float(np.median(gains_covered)) if gains_covered else 1.0,
            median_error_covered=float(np.median(errors_covered)) if errors_covered else 0.0,
            selection=selection,
        )

    #: Tables at or above this row count are "large" for the fact-fact test.
    LARGE_TABLE_ROWS = 10_000

    def _joins_two_large_tables(self, plan: LogicalNode) -> bool:
        """True when some join has a large table on each side — the query
        shape apriori single-table samples structurally cannot cover."""
        from repro.algebra.analysis import base_tables
        from repro.algebra.logical import Join

        def is_large(subtree: LogicalNode) -> bool:
            for table in base_tables(subtree):
                if self.database.table(table).num_rows >= self.LARGE_TABLE_ROWS:
                    return True
            return False

        for node in plan.walk():
            if isinstance(node, Join) and is_large(node.left) and is_large(node.right):
                return True
        return False

    def _substitute_scan(self, plan: LogicalNode, sample: StratifiedSample) -> Optional[LogicalNode]:
        """Replace the target table's scan with the stored sample's scan."""
        found = {"hit": False}

        def visit(node: LogicalNode) -> LogicalNode:
            if isinstance(node, Scan) and node.table == sample.source:
                found["hit"] = True
                return Scan(sample.registered_name(), node.output_columns())
            if not node.children:
                return node
            return node.with_children([visit(c) for c in node.children])

        rewritten = visit(plan)
        return rewritten if found["hit"] else None
