"""Input statistics and derivation through plans (paper Table 2, §4.2.6)."""

from repro.stats.catalog import (
    Catalog,
    ColumnStats,
    ColumnSummary,
    PartitionCatalog,
    PartitionLayout,
    PartitionSummary,
    TableStats,
)
from repro.stats.derivation import NodeStats, StatsDeriver, estimate_selectivity

__all__ = [
    "Catalog",
    "ColumnStats",
    "ColumnSummary",
    "PartitionCatalog",
    "PartitionLayout",
    "PartitionSummary",
    "TableStats",
    "NodeStats",
    "StatsDeriver",
    "estimate_selectivity",
]
