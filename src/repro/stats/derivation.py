"""Deriving statistics for every plan sub-expression.

ASALQA costs sampled plans using "cardinality estimates per relational
expression (how many rows) and the number of distinct values in each column
subset" (Section 4.2.6), derived from the base-table statistics in the
catalog. This module implements that derivation: selectivity estimation for
predicates (refined by heavy-hitter frequencies), join cardinality under the
containment assumption, distinct-value propagation via column lineage, and
sampler cardinality from the sampler's expected pass fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.algebra.expressions import And, Cmp, Col, Expr, IsIn, Lit, Not, Or
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.errors import PlanError
from repro.stats.catalog import Catalog

__all__ = [
    "NodeStats",
    "StatsDeriver",
    "estimate_selectivity",
    "reweight_surviving_partitions",
]

#: Selectivity assumed for predicates we cannot analyze (UDFs etc.).
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Distinct-value guess for computed columns with no lineage.
UNKNOWN_DISTINCT = 1000.0

Lineage = Dict[str, Optional[Tuple[str, FrozenSet[str]]]]


def reweight_surviving_partitions(
    weights: np.ndarray, num_partitions: int, num_lost: int
) -> Tuple[np.ndarray, float]:
    """Horvitz-Thompson re-weighting after permanent partition loss.

    When a round-robin partition of a uniform/universe-sampled plan is
    permanently lost, the surviving partitions are themselves a valid
    sample of the data (Rong et al., "Approximate Partition Selection using
    Summary Statistics"): a row's inclusion probability gains an extra
    ``survivors / num_partitions`` factor, so every surviving weight is
    multiplied by the reciprocal. Estimates stay unbiased; the inflated
    weights flow through the existing variance algebra, so confidence
    intervals widen by exactly the coverage the query lost. Returns the
    re-scaled weights and the applied factor.
    """
    if num_lost < 0 or num_partitions < 1:
        raise PlanError(
            f"invalid partition loss: {num_lost} lost of {num_partitions}"
        )
    if num_lost == 0:
        return weights, 1.0
    survivors = num_partitions - num_lost
    if survivors <= 0:
        raise PlanError("cannot re-weight: every partition was lost")
    factor = num_partitions / survivors
    return np.asarray(weights, dtype=np.float64) * factor, factor


@dataclass
class NodeStats:
    """Derived statistics of one plan node's output relation."""

    rows: float
    lineage: Lineage
    catalog: Catalog

    def distinct(self, columns) -> float:
        """Estimated distinct count of a column set in this relation.

        Pure-lineage columns are grouped per source table and resolved with
        exact base-table set-distinct counts; computed columns contribute a
        bounded fallback; cross-table sets multiply under independence.

        The product is deliberately *not* capped by the relation's row
        count: the sampler support algebra (support = rows / NumDV(S), with
        sfm corrections that are themselves distinct-count ratios) only
        cancels correctly when NumDV composes multiplicatively. Callers that
        need a cardinality (e.g. aggregate output rows) cap at their site.
        """
        colset = [c for c in columns]
        if not colset:
            return 1.0
        if self.rows <= 0:
            return 0.0
        per_table: Dict[str, set] = {}
        unknown = 0
        for name in colset:
            source = self.lineage.get(name)
            if source is None:
                unknown += 1
            else:
                table, base_cols = source
                per_table.setdefault(table, set()).update(base_cols)
        product = 1.0
        for table, base_cols in per_table.items():
            product *= max(1, self.catalog.distinct(table, base_cols))
        product *= UNKNOWN_DISTINCT**unknown
        return max(1.0, product)

    def distinct_independent(self, columns) -> float:
        """Distinct count under full column independence: the product of
        per-column distinct counts.

        This is the estimate the sampler-support algebra needs: the ``sfm``
        corrections are built from per-column(-set) distinct ratios, so they
        cancel exactly against a multiplicative strata count. The exact
        (sparse) set count from :meth:`distinct` can be far smaller on a
        small relation, which would silently inflate support and make the
        optimizer pick samplers that miss groups.
        """
        product = 1.0
        for name in columns:
            product *= max(1.0, self.distinct([name]))
        return max(1.0, product)

    def heavy_hitters(self, column: str) -> Dict:
        """Heavy-hitter frequencies for a pure-lineage single column,
        scaled to this relation's cardinality."""
        source = self.lineage.get(column)
        if source is None:
            return {}
        table, base_cols = source
        if len(base_cols) != 1:
            return {}
        (base_col,) = base_cols
        stats = self.catalog.stats(table)
        base_rows = max(1, stats.rows)
        scale = self.rows / base_rows
        return {value: freq * scale for value, freq in stats.column(base_col).heavy_hitters.items()}

    def with_rows(self, rows: float) -> "NodeStats":
        return NodeStats(rows=rows, lineage=dict(self.lineage), catalog=self.catalog)


def estimate_selectivity(predicate: Expr, stats: NodeStats) -> float:
    """Fraction of rows expected to pass ``predicate``."""
    if isinstance(predicate, And):
        return max(
            1e-6,
            estimate_selectivity(predicate.left, stats) * estimate_selectivity(predicate.right, stats),
        )
    if isinstance(predicate, Or):
        s1 = estimate_selectivity(predicate.left, stats)
        s2 = estimate_selectivity(predicate.right, stats)
        return min(1.0, s1 + s2 - s1 * s2)
    if isinstance(predicate, Not):
        return min(1.0, max(0.0, 1.0 - estimate_selectivity(predicate.child, stats)))
    if isinstance(predicate, IsIn) and isinstance(predicate.child, Col):
        dv = stats.distinct([predicate.child.name])
        return min(1.0, len(predicate.values) / max(1.0, dv))
    if isinstance(predicate, Cmp):
        return _comparison_selectivity(predicate, stats)
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(cmp: Cmp, stats: NodeStats) -> float:
    column, literal = None, None
    flipped = False
    if isinstance(cmp.left, Col) and isinstance(cmp.right, Lit):
        column, literal = cmp.left, cmp.right
    elif isinstance(cmp.right, Col) and isinstance(cmp.left, Lit):
        column, literal = cmp.right, cmp.left
        flipped = True
    if column is None:
        return DEFAULT_SELECTIVITY

    dv = max(1.0, stats.distinct([column.name]))
    if cmp.op == "==":
        hh = stats.heavy_hitters(column.name)
        if literal.value in hh and stats.rows > 0:
            return min(1.0, hh[literal.value] / stats.rows)
        return min(1.0, 1.0 / dv)
    if cmp.op == "!=":
        return max(0.0, 1.0 - 1.0 / dv)

    # Range predicate: uniform-range assumption over [min, max] if known.
    source = stats.lineage.get(column.name)
    if source is not None and len(source[1]) == 1 and isinstance(literal.value, (int, float)):
        table, base_cols = source
        (base_col,) = base_cols
        col_stats = stats.catalog.stats(table).column(base_col)
        lo, hi = col_stats.min_value, col_stats.max_value
        if lo is not None and hi is not None and hi > lo:
            frac_below = (float(literal.value) - lo) / (hi - lo)
            frac_below = min(1.0, max(0.0, frac_below))
            op = cmp.op
            if flipped:
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            if op in ("<", "<="):
                return max(1e-6, frac_below)
            return max(1e-6, 1.0 - frac_below)
    return DEFAULT_SELECTIVITY


class StatsDeriver:
    """Memoized derivation of :class:`NodeStats` for every plan node."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._memo: Dict[tuple, NodeStats] = {}

    def stats_for(self, node: LogicalNode) -> NodeStats:
        key = node.key()
        cached = self._memo.get(key)
        if cached is None:
            cached = self._derive(node)
            self._memo[key] = cached
        return cached

    # -- per-node derivation ----------------------------------------------------
    def _derive(self, node: LogicalNode) -> NodeStats:
        if isinstance(node, Scan):
            lineage: Lineage = {c: (node.table, frozenset({c})) for c in node.output_columns()}
            return NodeStats(rows=float(self.catalog.row_count(node.table)), lineage=lineage, catalog=self.catalog)

        if isinstance(node, Select):
            child = self.stats_for(node.child)
            selectivity = estimate_selectivity(node.predicate, child)
            return child.with_rows(child.rows * selectivity)

        if isinstance(node, Project):
            child = self.stats_for(node.child)
            lineage = {}
            for name, expr in node.mapping.items():
                if isinstance(expr, Col):
                    lineage[name] = child.lineage.get(expr.name)
                else:
                    lineage[name] = self._merged_lineage(expr, child)
            return NodeStats(rows=child.rows, lineage=lineage, catalog=self.catalog)

        if isinstance(node, Join):
            left = self.stats_for(node.left)
            right = self.stats_for(node.right)
            dv_left = left.distinct(node.left_keys)
            dv_right = right.distinct(node.right_keys)
            denom = max(dv_left, dv_right, 1.0)
            rows = left.rows * right.rows / denom
            if node.how == "left":
                rows = max(rows, left.rows)
            elif node.how == "right":
                rows = max(rows, right.rows)
            lineage = dict(left.lineage)
            lineage.update(right.lineage)
            return NodeStats(rows=rows, lineage=lineage, catalog=self.catalog)

        if isinstance(node, Aggregate):
            child = self.stats_for(node.child)
            groups = min(child.rows, child.distinct(node.group_by)) if node.group_by else 1.0
            lineage = {k: child.lineage.get(k) for k in node.group_by}
            for agg in node.aggs:
                lineage[agg.alias] = None
            return NodeStats(rows=groups, lineage=lineage, catalog=self.catalog)

        if isinstance(node, SamplerNode):
            child = self.stats_for(node.child)
            return child.with_rows(child.rows * self._sampler_fraction(node, child))

        if isinstance(node, OrderBy):
            return self.stats_for(node.child)

        if isinstance(node, Limit):
            child = self.stats_for(node.child)
            return child.with_rows(min(child.rows, float(node.n)))

        if isinstance(node, UnionAll):
            children = [self.stats_for(c) for c in node.children]
            merged = dict(children[0].lineage)
            return NodeStats(
                rows=sum(c.rows for c in children), lineage=merged, catalog=self.catalog
            )

        raise PlanError(f"cannot derive statistics for {type(node).__name__}")

    def _merged_lineage(self, expr: Expr, child: NodeStats) -> Optional[Tuple[str, FrozenSet[str]]]:
        """Lineage of a computed column: defined when every input column
        traces to the same base table."""
        tables = set()
        base_cols: set = set()
        for name in expr.columns():
            source = child.lineage.get(name)
            if source is None:
                return None
            tables.add(source[0])
            base_cols.update(source[1])
        if len(tables) == 1 and base_cols:
            return (next(iter(tables)), frozenset(base_cols))
        return None

    def _sampler_fraction(self, node: SamplerNode, child: NodeStats) -> float:
        spec = node.spec
        fraction = getattr(spec, "expected_fraction", lambda: 1.0)()
        # The distinct sampler leaks delta rows per stratum on top of p.
        columns = getattr(spec, "columns", None)
        delta = getattr(spec, "delta", None)
        if columns is not None and delta is not None and child.rows > 0:
            names = []
            for entry in columns:
                if isinstance(entry, str):
                    names.append(entry)
                else:
                    names.extend(sorted(entry.columns()))
            strata = child.distinct(names)
            leak = min(child.rows, delta * strata)
            fraction = min(1.0, fraction + leak / child.rows)
        return fraction
