"""Input-table statistics (paper Table 2).

For each input table Quickr records: row count; per interesting column the
number of distinct values, average/variance (numerical columns), and heavy
hitter values with frequencies. "If not already available, the statistics
are computed by the first query that reads the table" — we mirror that by
collecting lazily on first access and caching.

Distinct counts over *column sets* (needed by the C1 support check and the
join push-down rules' NumDV calls) are computed exactly on demand and
cached per set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.engine.table import Database, Table
from repro.errors import CatalogError
from repro.sketches.distinct_count import exact_distinct, exact_distinct_multi

__all__ = ["ColumnStats", "TableStats", "Catalog"]

#: A value is a heavy hitter if it covers at least this fraction of rows
#: (paper Section 4.1.2 uses s = 1e-2 for the sketch; the catalog keeps the
#: same threshold for its exact top values).
HEAVY_HITTER_FRACTION = 0.01

#: Keep at most this many heavy hitters per column.
MAX_HEAVY_HITTERS = 64


@dataclass
class ColumnStats:
    """Statistics of one column."""

    distinct: int
    mean: Optional[float] = None
    variance: Optional[float] = None
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    heavy_hitters: Dict = field(default_factory=dict)

    def heavy_hitter_mass(self) -> float:
        return float(sum(self.heavy_hitters.values()))


@dataclass
class TableStats:
    """Statistics of one base table."""

    name: str
    rows: int
    columns: Dict[str, ColumnStats]
    _set_distinct_cache: Dict[FrozenSet[str], int] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(f"no statistics for column {name!r} of {self.name!r}") from None


class Catalog:
    """Lazy statistics store over a :class:`Database`."""

    def __init__(self, database: Database):
        self.database = database
        self._stats: Dict[str, TableStats] = {}

    # -- collection --------------------------------------------------------------
    def stats(self, table_name: str) -> TableStats:
        """Statistics for a table, collecting them on first access."""
        if table_name not in self._stats:
            self._stats[table_name] = self._collect(self.database.table(table_name))
        return self._stats[table_name]

    def _collect(self, table: Table) -> TableStats:
        columns: Dict[str, ColumnStats] = {}
        n = table.num_rows
        threshold = max(1, int(HEAVY_HITTER_FRACTION * n))
        for name in table.data_column_names():
            values = table.column(name)
            stats = ColumnStats(distinct=exact_distinct(values))
            if values.dtype.kind in ("i", "u", "f") and n > 0:
                as_float = values.astype(np.float64)
                stats.mean = float(np.mean(as_float))
                stats.variance = float(np.var(as_float))
                stats.min_value = float(np.min(as_float))
                stats.max_value = float(np.max(as_float))
            if n > 0:
                uniques, counts = np.unique(values, return_counts=True)
                heavy = counts >= threshold
                if heavy.any():
                    order = np.argsort(counts[heavy])[::-1][:MAX_HEAVY_HITTERS]
                    hh_values = uniques[heavy][order]
                    hh_counts = counts[heavy][order]
                    stats.heavy_hitters = {
                        value.item() if hasattr(value, "item") else value: int(cnt)
                        for value, cnt in zip(hh_values, hh_counts)
                    }
            columns[name] = stats
        return TableStats(name=table.name, rows=n, columns=columns)

    # -- queries -------------------------------------------------------------------
    def row_count(self, table_name: str) -> int:
        return self.stats(table_name).rows

    def distinct(self, table_name: str, columns) -> int:
        """Exact distinct count of a column set, cached per set."""
        colset = frozenset(columns)
        if not colset:
            return 1
        stats = self.stats(table_name)
        if len(colset) == 1:
            (only,) = colset
            return stats.column(only).distinct
        cached = stats._set_distinct_cache.get(colset)
        if cached is not None:
            return cached
        table = self.database.table(table_name)
        value = exact_distinct_multi([table.column(c) for c in sorted(colset)])
        stats._set_distinct_cache[colset] = value
        return value

    def value_skew(self, table_name: str, column: str) -> float:
        """Coefficient-of-variation proxy for aggregate-value skew, used to
        decide whether a SUM needs stratification on the value column."""
        col = self.stats(table_name).column(column)
        if col.mean is None or col.variance is None or col.mean == 0:
            return 0.0
        return float(np.sqrt(col.variance) / abs(col.mean))

    def collected_tables(self) -> Tuple[str, ...]:
        return tuple(self._stats.keys())
