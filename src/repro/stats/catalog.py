"""Input-table statistics (paper Table 2) and the partition-level catalog.

For each input table Quickr records: row count; per interesting column the
number of distinct values, average/variance (numerical columns), and heavy
hitter values with frequencies. "If not already available, the statistics
are computed by the first query that reads the table" — we mirror that by
collecting lazily on first access and caching.

Distinct counts over *column sets* (needed by the C1 support check and the
join push-down rules' NumDV calls) are computed exactly on demand and
cached per set.

The second half of this module is the **partition catalog** (Rong et al.,
"Approximate Partition Selection for Big-Data Workloads using Summary
Statistics"): per-(table, partition), per-column summaries — min/max, null
count, exact distinct plus a KMV sketch, lossy-counting heavy hitters, row
and byte counts — over a declared :class:`PartitionLayout`. Summaries are
mergeable (sketch merges compose), so catalogs roll up across
repartitioning, and JSON-serializable so a built catalog can be inspected
and validated offline (``repro stats-catalog``). The prune/select pass
(:mod:`repro.optimizer.pruning`) consumes these summaries to skip
partitions that provably cannot satisfy a query's predicates and to pick
weighted partition subsets under an error budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from repro.engine.table import Database, Table
from repro.errors import CatalogError
from repro.sketches.distinct_count import KMVCounter, exact_distinct, exact_distinct_multi
from repro.sketches.heavy_hitters import LossyCounter

__all__ = [
    "ColumnStats",
    "TableStats",
    "Catalog",
    "ColumnSummary",
    "PartitionSummary",
    "PartitionLayout",
    "PartitionCatalog",
]

#: A value is a heavy hitter if it covers at least this fraction of rows
#: (paper Section 4.1.2 uses s = 1e-2 for the sketch; the catalog keeps the
#: same threshold for its exact top values).
HEAVY_HITTER_FRACTION = 0.01

#: Keep at most this many heavy hitters per column.
MAX_HEAVY_HITTERS = 64


@dataclass
class ColumnStats:
    """Statistics of one column."""

    distinct: int
    mean: Optional[float] = None
    variance: Optional[float] = None
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    heavy_hitters: Dict = field(default_factory=dict)

    def heavy_hitter_mass(self) -> float:
        return float(sum(self.heavy_hitters.values()))


@dataclass
class TableStats:
    """Statistics of one base table."""

    name: str
    rows: int
    columns: Dict[str, ColumnStats]
    _set_distinct_cache: Dict[FrozenSet[str], int] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(f"no statistics for column {name!r} of {self.name!r}") from None


class Catalog:
    """Lazy statistics store over a :class:`Database`."""

    def __init__(self, database: Database):
        self.database = database
        self._stats: Dict[str, TableStats] = {}

    # -- collection --------------------------------------------------------------
    def stats(self, table_name: str) -> TableStats:
        """Statistics for a table, collecting them on first access."""
        if table_name not in self._stats:
            self._stats[table_name] = self._collect(self.database.table(table_name))
        return self._stats[table_name]

    def _collect(self, table: Table) -> TableStats:
        columns: Dict[str, ColumnStats] = {}
        n = table.num_rows
        threshold = max(1, int(HEAVY_HITTER_FRACTION * n))
        for name in table.data_column_names():
            values = table.column(name)
            stats = ColumnStats(distinct=exact_distinct(values))
            if values.dtype.kind in ("i", "u", "f") and n > 0:
                as_float = values.astype(np.float64)
                stats.mean = float(np.mean(as_float))
                stats.variance = float(np.var(as_float))
                stats.min_value = float(np.min(as_float))
                stats.max_value = float(np.max(as_float))
            if n > 0:
                uniques, counts = np.unique(values, return_counts=True)
                heavy = counts >= threshold
                if heavy.any():
                    order = np.argsort(counts[heavy])[::-1][:MAX_HEAVY_HITTERS]
                    hh_values = uniques[heavy][order]
                    hh_counts = counts[heavy][order]
                    stats.heavy_hitters = {
                        value.item() if hasattr(value, "item") else value: int(cnt)
                        for value, cnt in zip(hh_values, hh_counts)
                    }
            columns[name] = stats
        return TableStats(name=table.name, rows=n, columns=columns)

    # -- queries -------------------------------------------------------------------
    def row_count(self, table_name: str) -> int:
        return self.stats(table_name).rows

    def distinct(self, table_name: str, columns) -> int:
        """Exact distinct count of a column set, cached per set."""
        colset = frozenset(columns)
        if not colset:
            return 1
        stats = self.stats(table_name)
        if len(colset) == 1:
            (only,) = colset
            return stats.column(only).distinct
        cached = stats._set_distinct_cache.get(colset)
        if cached is not None:
            return cached
        table = self.database.table(table_name)
        value = exact_distinct_multi([table.column(c) for c in sorted(colset)])
        stats._set_distinct_cache[colset] = value
        return value

    def value_skew(self, table_name: str, column: str) -> float:
        """Coefficient-of-variation proxy for aggregate-value skew, used to
        decide whether a SUM needs stratification on the value column."""
        col = self.stats(table_name).column(column)
        if col.mean is None or col.variance is None or col.mean == 0:
            return 0.0
        return float(np.sqrt(col.variance) / abs(col.mean))

    def collected_tables(self) -> Tuple[str, ...]:
        return tuple(self._stats.keys())


# ---------------------------------------------------------------------------
# Partition-level catalog
# ---------------------------------------------------------------------------

#: KMV sketch size for per-partition distinct counts (small partitions need
#: fewer minima than the table-level default).
PARTITION_KMV_K = 256

#: Lossy-counting parameters for per-partition heavy hitters. tau is larger
#: than the paper's streaming 1e-4 because partition builds feed *exact*
#: counts (one ``np.unique`` pass), so tau only bounds which entries are
#: worth keeping.
PARTITION_HH_TAU = 1e-3
PARTITION_HH_SUPPORT = 1e-2

#: Keep the exact value set of a partition column when it has at most this
#: many distinct values — membership tests then prune exactly.
MAX_EXACT_VALUES = 64


def _scalar(value: Any) -> Any:
    return value.item() if hasattr(value, "item") else value


@dataclass
class ColumnSummary:
    """Summary statistics of one column within one partition."""

    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    null_count: int = 0
    distinct: int = 0
    kmv: Optional[KMVCounter] = None
    heavy: Optional[LossyCounter] = None
    #: Exact distinct values when there are at most MAX_EXACT_VALUES of
    #: them; None means "too many to enumerate", never "empty".
    values: Optional[Tuple[Any, ...]] = None

    @classmethod
    def from_array(cls, column: np.ndarray) -> "ColumnSummary":
        n = len(column)
        if n == 0:
            return cls(values=())
        if column.dtype.kind == "f":
            nulls = np.isnan(column)
            null_count = int(nulls.sum())
            nonnull = column[~nulls] if null_count else column
        else:
            null_count = 0
            nonnull = column
        summary = cls(null_count=null_count)
        if len(nonnull) == 0:
            summary.values = ()
            return summary
        uniques, counts = np.unique(nonnull, return_counts=True)
        summary.min_value = _scalar(uniques[0])
        summary.max_value = _scalar(uniques[-1])
        summary.distinct = int(len(uniques))
        summary.kmv = KMVCounter.from_values(uniques, k=PARTITION_KMV_K)
        summary.heavy = LossyCounter.from_exact_counts(
            uniques, counts, tau=PARTITION_HH_TAU, support=PARTITION_HH_SUPPORT
        )
        if summary.distinct <= MAX_EXACT_VALUES:
            summary.values = tuple(_scalar(u) for u in uniques)
        return summary

    def merge(self, other: "ColumnSummary") -> "ColumnSummary":
        merged = ColumnSummary(null_count=self.null_count + other.null_count)
        mins = [v for v in (self.min_value, other.min_value) if v is not None]
        maxs = [v for v in (self.max_value, other.max_value) if v is not None]
        merged.min_value = min(mins) if mins else None
        merged.max_value = max(maxs) if maxs else None
        if self.kmv is not None and other.kmv is not None:
            merged.kmv = self.kmv.merge(other.kmv)
        else:
            merged.kmv = self.kmv or other.kmv
        if self.heavy is not None and other.heavy is not None:
            merged.heavy = self.heavy.merge(other.heavy)
        else:
            merged.heavy = self.heavy or other.heavy
        if self.values is not None and other.values is not None:
            union = sorted(set(self.values) | set(other.values))
            merged.values = tuple(union) if len(union) <= MAX_EXACT_VALUES else None
        if merged.values is not None:
            merged.distinct = len(merged.values)
        elif merged.kmv is not None:
            # Rolled-up distinct is estimated from the merged KMV sketch;
            # exact counts do not compose across partitions.
            merged.distinct = merged.kmv.estimate()
        else:
            merged.distinct = max(self.distinct, other.distinct)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "min": self.min_value,
            "max": self.max_value,
            "nulls": self.null_count,
            "distinct": self.distinct,
            "kmv": self.kmv.to_dict() if self.kmv is not None else None,
            "heavy": self.heavy.to_dict() if self.heavy is not None else None,
            "values": list(self.values) if self.values is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ColumnSummary":
        return cls(
            min_value=payload["min"],
            max_value=payload["max"],
            null_count=int(payload["nulls"]),
            distinct=int(payload["distinct"]),
            kmv=KMVCounter.from_dict(payload["kmv"]) if payload["kmv"] else None,
            heavy=LossyCounter.from_dict(payload["heavy"]) if payload["heavy"] else None,
            values=tuple(payload["values"]) if payload["values"] is not None else None,
        )


@dataclass
class PartitionSummary:
    """Summary of one partition of one table."""

    table: str
    partition: int
    rows: int
    bytes: int
    columns: Dict[str, ColumnSummary] = field(default_factory=dict)

    def column(self, name: str) -> ColumnSummary:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"no partition statistics for column {name!r} of "
                f"{self.table!r}[{self.partition}]"
            ) from None

    def merge(self, other: "PartitionSummary") -> "PartitionSummary":
        """Roll two partition summaries up into one (the merged partition
        keeps the smaller ordinal); composes across repartitioning."""
        if other.table != self.table:
            raise CatalogError(
                f"cannot merge partition summaries of {self.table!r} and {other.table!r}"
            )
        names = set(self.columns) | set(other.columns)
        merged_columns = {}
        for name in names:
            mine = self.columns.get(name)
            theirs = other.columns.get(name)
            if mine is not None and theirs is not None:
                merged_columns[name] = mine.merge(theirs)
            else:
                merged_columns[name] = mine or theirs
        return PartitionSummary(
            table=self.table,
            partition=min(self.partition, other.partition),
            rows=self.rows + other.rows,
            bytes=self.bytes + other.bytes,
            columns=merged_columns,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "partition": self.partition,
            "rows": self.rows,
            "bytes": self.bytes,
            "columns": {name: col.to_dict() for name, col in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, table: str, payload: Dict[str, Any]) -> "PartitionSummary":
        return cls(
            table=table,
            partition=int(payload["partition"]),
            rows=int(payload["rows"]),
            bytes=int(payload["bytes"]),
            columns={
                name: ColumnSummary.from_dict(col)
                for name, col in payload["columns"].items()
            },
        )


@dataclass(frozen=True)
class PartitionLayout:
    """How a table's rows map to partitions.

    ``range-cluster`` layouts assign each row by binary search of its
    cluster-column value against ``boundaries`` (equal-frequency quantile
    cut points) — physically this models data clustered on ingest time or
    date, the layout that makes min/max pruning effective. ``round-robin``
    is the unclustered fallback: positions modulo the partition count,
    matching :class:`repro.parallel.partitioner.Partitioner`'s default, so
    summaries stay valid for the executor's default split.
    """

    table: str
    num_partitions: int
    kind: str = "round-robin"
    cluster_column: Optional[str] = None
    boundaries: Tuple[float, ...] = ()

    @classmethod
    def range_cluster(
        cls, table: Table, column: str, num_partitions: int
    ) -> "PartitionLayout":
        values = table.column(column)
        if values.dtype.kind not in ("i", "u", "f") or table.num_rows == 0:
            return cls(table=table.name, num_partitions=num_partitions)
        quantiles = np.linspace(0.0, 1.0, num_partitions + 1)[1:-1]
        boundaries = np.quantile(values.astype(np.float64), quantiles)
        return cls(
            table=table.name,
            num_partitions=num_partitions,
            kind="range-cluster",
            cluster_column=column,
            boundaries=tuple(float(b) for b in boundaries),
        )

    def assignments(self, table: Table) -> np.ndarray:
        """Per-row partition ordinal in ``[0, num_partitions)``."""
        if self.kind == "range-cluster":
            values = table.column(self.cluster_column).astype(np.float64)
            return np.searchsorted(
                np.asarray(self.boundaries, dtype=np.float64), values, side="right"
            ).astype(np.int64)
        return np.arange(table.num_rows, dtype=np.int64) % self.num_partitions

    def split_indices(self, table: Table) -> List[np.ndarray]:
        """Row-index arrays per partition, in ascending row order."""
        if self.kind == "round-robin":
            idx = np.arange(table.num_rows)
            return [idx[p :: self.num_partitions] for p in range(self.num_partitions)]
        assigned = self.assignments(table)
        idx = np.arange(table.num_rows)
        return [idx[assigned == p] for p in range(self.num_partitions)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "table": self.table,
            "num_partitions": self.num_partitions,
            "kind": self.kind,
            "cluster_column": self.cluster_column,
            "boundaries": list(self.boundaries),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PartitionLayout":
        return cls(
            table=payload["table"],
            num_partitions=int(payload["num_partitions"]),
            kind=payload["kind"],
            cluster_column=payload["cluster_column"],
            boundaries=tuple(float(b) for b in payload["boundaries"]),
        )


class PartitionCatalog:
    """Lazy per-(table, partition) statistics over a :class:`Database`.

    Built at datagen/load time (cheaply: the object is just a recipe; the
    summaries of each (table, partition-count) pair are computed on first
    access and cached). ``cluster_columns`` names the column a table is
    physically clustered on — those tables get ``range-cluster`` layouts,
    everything else round-robin.
    """

    def __init__(
        self,
        database: Database,
        cluster_columns: Optional[Mapping[str, str]] = None,
    ):
        self.database = database
        self.cluster_columns: Dict[str, str] = dict(cluster_columns or {})
        self._layouts: Dict[Tuple[str, int], PartitionLayout] = {}
        self._summaries: Dict[Tuple[str, int], List[PartitionSummary]] = {}

    # -- layouts -----------------------------------------------------------------
    def layout(self, table_name: str, num_partitions: int) -> PartitionLayout:
        key = (table_name, int(num_partitions))
        if key not in self._layouts:
            table = self.database.table(table_name)
            cluster = self.cluster_columns.get(table_name)
            if cluster is not None and table.has_column(cluster):
                self._layouts[key] = PartitionLayout.range_cluster(
                    table, cluster, num_partitions
                )
            else:
                self._layouts[key] = PartitionLayout(
                    table=table_name, num_partitions=num_partitions
                )
        return self._layouts[key]

    # -- summaries ---------------------------------------------------------------
    def summaries(self, table_name: str, num_partitions: int) -> List[PartitionSummary]:
        """Per-partition summaries under :meth:`layout`, built on first use."""
        key = (table_name, int(num_partitions))
        if key not in self._summaries:
            table = self.database.table(table_name)
            layout = self.layout(table_name, num_partitions)
            self._summaries[key] = [
                self._summarize(table, pid, idx)
                for pid, idx in enumerate(layout.split_indices(table))
            ]
        return self._summaries[key]

    @staticmethod
    def _summarize(table: Table, partition: int, idx: np.ndarray) -> PartitionSummary:
        columns: Dict[str, ColumnSummary] = {}
        nbytes = 0
        for name in table.data_column_names():
            values = table.column(name)[idx]
            nbytes += int(values.nbytes)
            columns[name] = ColumnSummary.from_array(values)
        return PartitionSummary(
            table=table.name,
            partition=partition,
            rows=int(len(idx)),
            bytes=nbytes,
            columns=columns,
        )

    def table_rollup(self, table_name: str, num_partitions: int) -> PartitionSummary:
        """All partition summaries merged back to table level."""
        summaries = self.summaries(table_name, num_partitions)
        merged = summaries[0]
        for other in summaries[1:]:
            merged = merged.merge(other)
        return merged

    def built(self) -> Tuple[Tuple[str, int], ...]:
        """(table, partition-count) pairs with summaries materialized."""
        return tuple(sorted(self._summaries.keys()))

    # -- validation --------------------------------------------------------------
    def validate(self, table_name: Optional[str] = None) -> List[str]:
        """Cross-check built summaries against the current data.

        Returns a list of human-readable problems (empty = consistent).
        The same row-count cross-check guards the executor's prune pass:
        a partition whose live row count disagrees with its summary is
        conservatively retained, never pruned.
        """
        problems: List[str] = []
        for (name, parts), summaries in sorted(self._summaries.items()):
            if table_name is not None and name != table_name:
                continue
            table = self.database.table(name)
            layout = self.layout(name, parts)
            for pid, idx in enumerate(layout.split_indices(table)):
                summary = summaries[pid]
                if summary.rows != len(idx):
                    problems.append(
                        f"{name}[{pid}] of {parts}: summary says {summary.rows} "
                        f"rows, data has {len(idx)}"
                    )
            total = sum(s.rows for s in summaries)
            if total != table.num_rows:
                problems.append(
                    f"{name} ({parts} partitions): summaries cover {total} rows, "
                    f"table has {table.num_rows}"
                )
        return problems

    # -- serialization -----------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of everything built so far."""
        entries = []
        for (name, parts), summaries in sorted(self._summaries.items()):
            entries.append(
                {
                    "layout": self.layout(name, parts).to_dict(),
                    "partitions": [s.to_dict() for s in summaries],
                }
            )
        return {"cluster_columns": dict(self.cluster_columns), "tables": entries}

    @classmethod
    def from_payload(
        cls, database: Database, payload: Dict[str, Any]
    ) -> "PartitionCatalog":
        catalog = cls(database, cluster_columns=payload.get("cluster_columns"))
        for entry in payload["tables"]:
            layout = PartitionLayout.from_dict(entry["layout"])
            key = (layout.table, layout.num_partitions)
            catalog._layouts[key] = layout
            catalog._summaries[key] = [
                PartitionSummary.from_dict(layout.table, s)
                for s in entry["partitions"]
            ]
        return catalog
