"""Worker pools for partition-parallel execution.

Three interchangeable backends behind one ``map``:

* ``process`` — a fork-based process pool, the real-parallelism mode. The
  work function and its inputs are published through a module global
  *before* the pool is created, so forked children inherit them by memory
  image and only a partition index crosses the pipe per task. That keeps
  plans picklable-free (plans may close over arbitrary predicates) while
  results (tables, partial aggregates) still return via pickle.
* ``thread`` — a thread pool; real concurrency only where NumPy releases
  the GIL, but portable and cheap. The fallback where fork is unavailable.
* ``inline`` — sequential in-process execution; the debugging/CI mode and
  the degenerate single-worker case.

``auto`` picks ``process`` when the platform supports fork, else ``thread``.

The fork-published global is a process-wide singleton, so process-mode use
is serialized behind :data:`_PAYLOAD_LOCK`: a second concurrent (or
re-entrant) process-mode run raises a clear :class:`PlanError` instead of
silently corrupting the other run's payload. The task scheduler
(:mod:`repro.parallel.tasks`) shares the same guard through
:func:`fork_payload`.

Worker exceptions never escape raw: ``map`` wraps them in
:class:`~repro.errors.TaskError` carrying the failing item's index, with
the original exception chained as ``__cause__``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import PlanError, ReproError, TaskError
from repro.obs import log as obs_log

__all__ = [
    "WorkerPool",
    "available_parallelism",
    "fork_payload",
    "scrub_shared_segments",
]

#: Fork-inherited payload for process workers:
#: (work function, items, parent log level). ``items`` is None when
#: callers ship the argument over the pipe instead (the task scheduler's
#: mode — arguments are small TaskSpecs, the work function still travels
#: by fork image). The log level rides along so ``repro.*`` loggers agree
#: across processes: a worker whose logging state diverged from the
#: parent's ``--log-level`` re-configures itself before running the task.
_PAYLOAD: Optional[tuple] = None

#: Serializes process-mode use of the fork payload. Held for the lifetime
#: of the pool, not just the publish, because forked children may be
#: created lazily on first submit.
_PAYLOAD_LOCK = threading.Lock()


def _run_index(index: int):
    fn, items, log_level = _PAYLOAD
    obs_log.apply_level(log_level)
    return fn(items[index])


def _run_argument(argument):
    fn, _, log_level = _PAYLOAD
    obs_log.apply_level(log_level)
    return fn(argument)


@contextmanager
def fork_payload(fn: Callable, items: Optional[Sequence] = None):
    """Publish the fork-inherited payload for one process-pool lifetime.

    Raises :class:`PlanError` if another process-mode run (a concurrent
    ``map`` from another thread, or a nested one from inside a worker
    callback) already holds the payload — the fork hand-off is a process
    singleton and cannot serve two pools at once.
    """
    if not _PAYLOAD_LOCK.acquire(blocking=False):
        raise PlanError(
            "re-entrant process-mode execution: the fork payload is already "
            "in use by another process-pool run in this process; use "
            "pool mode 'thread' or 'inline' for nested/concurrent maps"
        )
    global _PAYLOAD
    _PAYLOAD = (fn, items, obs_log.configured_level())
    try:
        yield
    finally:
        _PAYLOAD = None
        _PAYLOAD_LOCK.release()


def scrub_shared_segments(names: Sequence[str]) -> int:
    """Reclaim shared-memory segments leaked by dead pool workers.

    A worker that dies holding a segment (fork payload mid-result, a
    ``BrokenProcessPool`` recycle) cannot release it; whoever rebuilds the
    pool calls this with the deterministic names those attempts would have
    used. Missing names are free; returns how many segments were actually
    removed.
    """
    from repro.memory import reap

    return sum(1 for name in names if reap(name))


def available_parallelism() -> int:
    """Usable CPU count (honors the scheduler affinity mask when exposed)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def _fork_available() -> bool:
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods()


class WorkerPool:
    """Maps a function over partition inputs with a chosen backend."""

    MODES = ("auto", "process", "thread", "inline")

    def __init__(self, mode: str = "auto", max_workers: Optional[int] = None):
        if mode not in self.MODES:
            raise PlanError(f"unknown pool mode {mode!r}; expected one of {self.MODES}")
        if max_workers is not None and max_workers < 1:
            raise PlanError(f"max_workers must be positive, got {max_workers}")
        self.mode = mode
        self.max_workers = max_workers

    def resolve_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return "process" if _fork_available() else "thread"

    def workers_for(self, num_items: int) -> int:
        """Worker count for a run over ``num_items`` inputs."""
        return max(1, min(self.max_workers or available_parallelism(), num_items))

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in item order.

        Worker exceptions surface as :class:`TaskError` (item index attached,
        original exception chained); library errors raised by ``fn`` itself
        pass through unchanged.
        """
        items = list(items)
        if not items:
            return []
        mode = self.resolve_mode()
        workers = self.workers_for(len(items))
        # A one-worker pool cannot overlap anything: run inline and save the
        # fork/thread overhead (the process path previously still forked,
        # which on 1-core CI made D-way runs strictly slower than serial).
        if mode == "inline" or workers == 1:
            return [self._guarded(fn, item, index) for index, item in enumerate(items)]
        if mode == "process":
            if not _fork_available():
                raise PlanError("process pool requires the fork start method; use thread/inline")
            import multiprocessing as mp

            with fork_payload(fn, items):
                ctx = mp.get_context("fork")
                with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                    futures = [pool.submit(_run_index, i) for i in range(len(items))]
                    return [self._harvest(f, i) for i, f in enumerate(futures)]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [self._harvest(f, i) for i, f in enumerate(futures)]

    @staticmethod
    def _guarded(fn: Callable, item, index: int):
        try:
            return fn(item)
        except ReproError:
            raise
        except Exception as exc:
            raise TaskError(
                f"worker raised {type(exc).__name__}: {exc}", partition=index
            ) from exc

    @staticmethod
    def _harvest(future, index: int):
        try:
            return future.result()
        except ReproError:
            raise
        except Exception as exc:
            raise TaskError(
                f"worker raised {type(exc).__name__}: {exc}", partition=index
            ) from exc
