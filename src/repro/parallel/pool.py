"""Worker pools for partition-parallel execution.

Three interchangeable backends behind one ``map``:

* ``process`` — a fork-based process pool, the real-parallelism mode. The
  work function and its inputs are published through a module global
  *before* the pool is created, so forked children inherit them by memory
  image and only a partition index crosses the pipe per task. That keeps
  plans picklable-free (plans may close over arbitrary predicates) while
  results (tables, partial aggregates) still return via pickle.
* ``thread`` — a thread pool; real concurrency only where NumPy releases
  the GIL, but portable and cheap. The fallback where fork is unavailable.
* ``inline`` — sequential in-process execution; the debugging/CI mode and
  the degenerate single-worker case.

``auto`` picks ``process`` when the platform supports fork, else ``thread``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import PlanError

__all__ = ["WorkerPool", "available_parallelism"]

#: Fork-inherited payload for process workers: (work function, items).
_PAYLOAD: Optional[tuple] = None


def _run_index(index: int):
    fn, items = _PAYLOAD
    return fn(items[index])


def available_parallelism() -> int:
    """Usable CPU count (honors the scheduler affinity mask when exposed)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def _fork_available() -> bool:
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods()


class WorkerPool:
    """Maps a function over partition inputs with a chosen backend."""

    MODES = ("auto", "process", "thread", "inline")

    def __init__(self, mode: str = "auto", max_workers: Optional[int] = None):
        if mode not in self.MODES:
            raise PlanError(f"unknown pool mode {mode!r}; expected one of {self.MODES}")
        if max_workers is not None and max_workers < 1:
            raise PlanError(f"max_workers must be positive, got {max_workers}")
        self.mode = mode
        self.max_workers = max_workers

    def resolve_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return "process" if _fork_available() else "thread"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in item order."""
        items = list(items)
        if not items:
            return []
        mode = self.resolve_mode()
        workers = min(self.max_workers or available_parallelism(), len(items))
        if mode == "inline" or (mode == "thread" and workers == 1):
            return [fn(item) for item in items]
        if mode == "process":
            if not _fork_available():
                raise PlanError("process pool requires the fork start method; use thread/inline")
            import multiprocessing as mp

            global _PAYLOAD
            previous = _PAYLOAD
            _PAYLOAD = (fn, items)
            try:
                ctx = mp.get_context("fork")
                with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                    return list(pool.map(_run_index, range(len(items))))
            finally:
                _PAYLOAD = previous
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
