"""Partition-parallel plan execution (the paper's deployment mode).

Quickr's samplers are built to the operating requirements of Section 4.1 —
one pass, bounded memory, partitionable — precisely so that a sampled plan
can run as ordinary partition-parallel vertices in a cluster. This module
reproduces that execution mode in-process:

1. :func:`repro.parallel.plan.analyze_plan` picks the precursor subtree and
   a partitioning strategy (or explains why the plan must run serially);
2. each base table behind a precursor scan is partitioned (or broadcast)
   with its global lineage attached, and every partition becomes a task of
   the fault-tolerant :class:`~repro.parallel.tasks.TaskRuntime` — worker
   failures are retried with exponential backoff, stragglers get
   speculative duplicates, and results are validated before acceptance
   (see :mod:`repro.parallel.tasks`; faults can be injected deliberately
   through a :class:`~repro.parallel.faults.FaultPlan`);
3. the partition outputs are merged — by exact row order (bit-identical to
   serial) or by partial-aggregate states — and the serial executor runs
   the remainder of the plan over the merged result.

When a partition exhausts its retry budget, the query *degrades* rather
than fails whenever the sample algebra allows it: for round-robin
partitioned plans rooted in uniform/universe samplers the surviving
partitions are themselves a valid sample (Rong et al.), so their
Horvitz-Thompson weights are re-scaled by ``D / survivors`` and the query
returns a :class:`~repro.engine.executor.PartialResult` with the achieved
coverage and correspondingly widened confidence intervals. Exact and
distinct-sampled plans fall back to one serial re-execution; only if that
also fails does the query raise :class:`~repro.errors.DegradedResultError`.

Per-operator cardinalities are stitched back together keyed by stable
structural addresses (worker sums below the split, the serial run above
it) — addresses survive pickling across process boundaries, where object
identities would not — so the cluster cost model sees the same plan
profile a serial run would produce, and
:class:`~repro.engine.metrics.ParallelMetrics` reports both the modeled
and, when a serial reference run is requested, the measured speedup, plus
the fault-tolerance ledger (retries, speculation, degradation).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algebra.addressing import NodeAddress
from repro.algebra.builder import Query
from repro.algebra.logical import Project, SamplerNode
from repro.engine.costmodel import cost_plan, prune_cost_credit
from repro.engine.executor import ExecutionResult, Executor, PartialResult
from repro.engine.metrics import (
    ClusterConfig,
    FaultToleranceStats,
    ParallelMetrics,
    modeled_speedup,
)
from repro.engine.physical import plan_fingerprint
from repro.engine.table import WEIGHT_COLUMN, Database, Table, rowid_column_name
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    DegradedResultError,
    PlanError,
    SchemaError,
    TaskError,
)
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.obs.registry import MetricsRegistry
from repro.parallel.faults import FaultPlan, corrupt_table
from repro.parallel.merge import (
    PartialAggregate,
    finalize_partial,
    inflate_selection_cis,
    merge_partials,
    merge_rows,
    partial_aggregate,
)
from repro.parallel.partitioner import HASH, Partitioner
from repro.parallel.plan import (
    DEFAULT_MIN_PARTITION_ROWS,
    PARTITION_HASH_SEED,
    analyze_plan,
    build_worker_plan,
    worker_table_name,
)
from repro.parallel.pool import WorkerPool, scrub_shared_segments
from repro.parallel.tasks import RetryPolicy, TaskRuntime, TaskSpec
from repro.parallel import transport as shm_transport
from repro.memory import TableRef
from repro.stats.derivation import reweight_surviving_partitions

__all__ = ["ParallelOptions", "ParallelExecutor"]

_LOG = obs_log.logger("parallel.executor")

_MERGE_MODES = ("rows", "partial")

#: Sampler kinds whose surviving partitions remain a valid sample under
#: round-robin partition loss (weights re-scale; estimates stay unbiased).
_DEGRADABLE_KINDS = frozenset({"uniform", "universe"})

#: Sampler kinds that neither enable nor forbid degradation (no weights,
#: no per-value state to lose).
_NEUTRAL_KINDS = frozenset({"passthrough"})


@dataclass
class ParallelOptions:
    """Knobs of the parallel executor.

    ``merge="rows"`` ships sampled rows and reproduces the serial answer
    bit-for-bit; ``merge="partial"`` runs classic two-phase aggregation
    (identical estimates up to floating-point reassociation, group order by
    first appearance across partitions). ``measure_serial_baseline`` also
    times a serial reference run so ``ParallelMetrics.measured_speedup`` is
    populated — it doubles the work, so it is off by default.

    ``retry`` configures the fault-tolerant task runtime (attempts,
    backoff, speculation); ``fault_plan`` injects deliberate faults (chaos
    testing); ``allow_degraded`` gates sample-aware graceful degradation —
    when False a permanently lost partition always falls back to serial
    re-execution, matching BlinkDB-style apriori-sample behavior.

    ``transport`` picks how partition tables move between parent and
    workers: ``"auto"`` uses shared-memory :class:`~repro.memory.TableRef`
    descriptors whenever the run actually forks processes (and falls back
    to pickle otherwise), ``"shm"`` insists on it where possible, and
    ``"pickle"`` forces whole payloads over the pipe everywhere.
    ``measure_transport_bytes`` additionally measures the pickled payload
    sizes on the pickle path (an extra serialization pass per result, so it
    is off outside benchmarks); the shm path always accounts its bytes.

    ``prune`` consults the database's partition catalog (when one is
    attached) to skip partitions that provably cannot affect the answer;
    it is a pure optimization — databases without a catalog are untouched.
    ``selection_fraction`` additionally enables *weighted partition
    selection* on sampled aggregate plans: roughly that fraction of the
    surviving partitions run, and every executed row's weight is scaled by
    its partition's inverse inclusion probability (Horvitz-Thompson), so
    estimates stay unbiased while CIs widen. Per-query governance
    (``GovernanceContext.selection_fraction``) overrides this knob.
    """

    pool: str = "auto"
    merge: str = "rows"
    min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS
    max_workers: Optional[int] = None
    measure_serial_baseline: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: Optional[FaultPlan] = None
    allow_degraded: bool = True
    task_seed: int = 0
    transport: str = "auto"
    measure_transport_bytes: bool = False
    prune: bool = True
    selection_fraction: Optional[float] = None

    def __post_init__(self):
        if self.merge not in _MERGE_MODES:
            raise PlanError(f"unknown merge mode {self.merge!r}; expected one of {_MERGE_MODES}")
        if self.transport not in shm_transport.TRANSPORT_MODES:
            raise PlanError(
                f"unknown transport {self.transport!r}; expected one of "
                f"{shm_transport.TRANSPORT_MODES}"
            )
        if self.selection_fraction is not None and not (
            0.0 < self.selection_fraction < 1.0
        ):
            raise PlanError(
                f"selection_fraction must be in (0, 1), got {self.selection_fraction}"
            )


class ParallelExecutor:
    """Runs plans partition-parallel over a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        config: Optional[ClusterConfig] = None,
        parallelism: int = 2,
        options: Optional[ParallelOptions] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if parallelism < 1:
            raise PlanError(f"parallelism must be positive, got {parallelism}")
        self.database = database
        self.config = config or ClusterConfig()
        self.parallelism = int(parallelism)
        self.options = options or ParallelOptions()
        #: Shared metrics registry — the serial executor records into the
        #: same one, so compile/execute splits and fault counters line up.
        self.registry = registry if registry is not None else MetricsRegistry()
        # One long-lived serial executor for upper-plan runs and fallbacks:
        # its plan cache warms across repeated queries.
        self.serial_executor = Executor(database, self.config, registry=self.registry)
        #: Cumulative fault-tolerance ledger across every query this
        #: executor ran (printed by ``evaluate`` and ``chaos``).
        self.stats = FaultToleranceStats()

    def execute(self, query, governance=None) -> ExecutionResult:
        plan = query.plan if isinstance(query, Query) else query
        tracer = obs_trace.current_tracer()
        if tracer is None:
            result = self._execute(plan, governance)
        else:
            with tracer.span(
                "parallel.query",
                parallelism=self.parallelism,
                fingerprint=plan_fingerprint(plan)[:12],
            ) as span:
                result = self._execute(plan, governance)
                if result.parallel is not None:
                    span.attributes.update(
                        strategy=result.parallel.strategy,
                        pool=result.parallel.pool_mode,
                        tasks=result.parallel.tasks,
                        retries=result.parallel.task_retries,
                        degraded=result.parallel.degraded,
                    )
                    if result.parallel.pruning:
                        span.attributes.update(
                            pruned=result.parallel.pruning["partitions_pruned"],
                            prune_token=result.parallel.pruning["token"],
                        )
        self._fold_registry(result.parallel)
        return result

    def _plan_pruning(self, analysis, degree: int, merge_mode: str, governance):
        """Run the catalog prune/select pass; None when it does not apply.

        Any failure inside the pass is demoted to "no pruning" — the
        catalog is an accelerant, never a correctness dependency.
        """
        if not self.options.prune or merge_mode != "rows":
            return None
        fraction = None
        if governance is not None and getattr(governance, "selection_fraction", None):
            fraction = governance.selection_fraction
        elif self.options.selection_fraction is not None:
            fraction = self.options.selection_fraction
        from repro.optimizer.pruning import plan_partition_pruning

        try:
            prune = plan_partition_pruning(
                analysis,
                self.database,
                degree,
                selection_fraction=fraction,
                run_subtree=lambda node: self.serial_executor.run_plan(
                    node, governance=governance
                )[0],
                task_seed=self.options.task_seed,
            )
        except Exception:  # noqa: BLE001 - run unpruned rather than fail
            _LOG.exception("partition pruning failed; executing all partitions")
            self.registry.counter("prune.planning_failures").inc()
            return None
        if prune is None:
            return None
        if not prune.pruned and not prune.selection_active:
            # Nothing skipped: keep the plain round-robin path (it stays
            # degradable, and the split needs no catalog layout).
            return None
        return prune

    def _fold_registry(self, metrics: Optional[ParallelMetrics]) -> None:
        """Mirror one query's parallel ledger into the shared registry."""
        if metrics is None:
            return
        registry = self.registry
        registry.counter("parallel.queries").inc()
        if metrics.strategy == "serial-fallback":
            registry.counter("parallel.serial_fallbacks").inc()
        if metrics.tasks:
            registry.counter("parallel.tasks").inc(metrics.tasks)
        if metrics.task_retries:
            registry.counter("parallel.retries").inc(metrics.task_retries)
        if metrics.speculative_launches:
            registry.counter("parallel.speculative_launches").inc(metrics.speculative_launches)
        if metrics.speculative_wins:
            registry.counter("parallel.speculative_wins").inc(metrics.speculative_wins)
        if metrics.faults_injected:
            registry.counter("parallel.faults_injected").inc(metrics.faults_injected)
        if metrics.failed_partitions:
            registry.counter("parallel.failed_tasks").inc(len(metrics.failed_partitions))
        if metrics.degraded:
            registry.counter("parallel.degraded_queries").inc()
        if metrics.transport == "shm":
            registry.counter("transport.shm_queries").inc()
        if metrics.result_bytes_on_pipe:
            registry.counter("transport.result_bytes_on_pipe").inc(metrics.result_bytes_on_pipe)
        if metrics.result_bytes_shared:
            registry.counter("transport.result_bytes_shared").inc(metrics.result_bytes_shared)
        if metrics.pruning:
            registry.counter("prune.partitions_scanned").inc(
                metrics.pruning["partitions_executed"]
            )
            registry.counter("prune.partitions_pruned").inc(
                metrics.pruning["partitions_pruned"]
            )
            registry.counter("prune.partitions_selected").inc(
                metrics.pruning["partitions_selected"]
            )
            if metrics.pruning["partitions_stale_retained"]:
                registry.counter("prune.stale_retained").inc(
                    metrics.pruning["partitions_stale_retained"]
                )
            skipped_rows = (
                metrics.pruning["rows_pruned_actual"]
                + metrics.pruning["rows_unselected"]
            )
            if skipped_rows:
                registry.counter("prune.rows_skipped").inc(skipped_rows)
        for seconds in metrics.worker_seconds:
            registry.histogram("parallel.task_seconds").observe(seconds)
        from repro.memory import memory_stats

        stats = memory_stats()
        registry.gauge("memory.live_segments").set(stats["segments"])
        registry.gauge("memory.bytes_mapped").set(stats["bytes_mapped"])

    def _execute(self, plan, governance=None) -> ExecutionResult:
        start = perf_counter()
        if self.parallelism == 1:
            return self._serial_fallback(plan, "parallelism=1", start, governance=governance)

        analysis = analyze_plan(
            plan, self.database, min_partition_rows=self.options.min_partition_rows
        )
        if not analysis.ok:
            return self._serial_fallback(plan, analysis.reason, start, governance=governance)

        degree = self.parallelism
        split = analysis.split
        split_address = analysis.split_address
        aggregate = analysis.aggregate
        merge_mode = self.options.merge
        if merge_mode == "partial" and aggregate is None:
            merge_mode = "rows"  # nothing to two-phase; ship rows instead

        prune = self._plan_pruning(analysis, degree, merge_mode, governance)
        n_tasks = degree if prune is None else prune.executed
        if prune is not None:
            # The split now follows the catalog's layout and (possibly) a
            # selected subset: a lost partition is no longer an exchangeable
            # 1/degree slice, so the strategy string — which gates the
            # degradation rules — says so.
            if prune.selection_active:
                analysis.strategy = f"selected[{prune.table}]"
            elif prune.layout_kind == "range-cluster":
                analysis.strategy = f"clustered[{prune.table}]"
            _LOG.info(
                "partition pruning: %s %d/%d partition(s) executed "
                "(%d pruned exactly, %d skipped by selection, %d stale retained)",
                prune.table,
                prune.executed,
                degree,
                len(prune.pruned),
                len(prune.unselected),
                len(prune.stale),
            )

        # Partition (or broadcast) each scan occurrence's base table, with
        # the occurrence's global lineage attached *before* the split so
        # workers see absolute base-row positions.
        partitions: Dict[str, List[Table]] = {}
        for entry in analysis.scans:
            base = self.database.table(entry.table)
            wname = worker_table_name(entry.scan_index)
            lineaged = base.with_columns(
                {rowid_column_name(entry.scan_index): np.arange(base.num_rows, dtype=np.int64)},
                name=wname,
            )
            if entry.mode == "broadcast":
                parts = [lineaged] * n_tasks
            elif entry.mode == "partition-hash":
                parts = Partitioner(
                    degree, HASH, entry.hash_columns, seed=PARTITION_HASH_SEED
                ).split(lineaged)
            elif prune is not None and entry.address == prune.scan_address:
                # Split along the catalog's layout (so the summaries that
                # justified each prune describe exactly these rows), then
                # keep only the partitions the prune plan executes.
                parts = [lineaged.take(idx) for idx in prune.split_indices]
                parts = [parts[pid] for pid in prune.keep]
            else:
                parts = Partitioner(degree).split(lineaged)
            partitions[wname] = parts

        worker_plans = [
            build_worker_plan(
                split,
                analysis.split_scan_ordinals,
                pid,
                degree,
                analysis.aligned_sampler_addresses,
            )
            for pid in (range(degree) if prune is None else prune.keep)
        ]
        config = self.config
        do_partial = merge_mode == "partial"
        compute_ci = getattr(aggregate, "compute_ci", False)
        universe_rescale = getattr(aggregate, "universe_rescale", None)
        universe_variance = getattr(aggregate, "universe_variance", None)
        fault_plan = self.options.fault_plan
        # Rows-mode payloads must carry the logical output columns *and* the
        # lineage columns that survive the split — merge_rows needs both to
        # restore the serial row order. A corrupt result that silently
        # dropped one has to be rejected here (and retried), not crash the
        # merge with a cross-partition schema mismatch.
        expected_columns = frozenset(split.output_columns()) | _surviving_lineage(
            split, analysis.split_scan_ordinals
        )

        runtime = TaskRuntime(
            WorkerPool(self.options.pool, self.options.max_workers),
            policy=self.options.retry,
            base_seed=self.options.task_seed,
        )

        # Zero-copy transport: only worth it when the run actually crosses a
        # process boundary (thread/inline workers share the address space and
        # pass tables by reference already).
        use_shm = (
            self.options.transport in ("auto", "shm")
            and runtime.pool.resolve_mode() == "process"
            and runtime.pool.workers_for(degree) > 1
            and shm_transport.shm_available()
        )
        if self.options.transport == "shm" and not use_shm:
            _LOG.warning(
                "transport='shm' requested but not usable here (pool mode %s, "
                "%d worker(s)); using the pickle transport",
                runtime.pool.resolve_mode(),
                runtime.pool.workers_for(degree),
            )
        token = shm_transport.new_run_token() if use_shm else ""
        input_segments: List[str] = []
        partition_sources: Dict[str, list] = partitions
        if use_shm:
            try:
                partition_sources, input_segments = shm_transport.ship_partitions(
                    partitions, token
                )
            except (SchemaError, OSError) as exc:
                # SchemaError: columns the arena cannot encode. OSError: the
                # arena itself failed (shm_open refused, /dev/shm full).
                # Either way the run survives on the pickle transport.
                _LOG.warning(
                    "input partitions cannot use shared memory (%s); "
                    "falling back to the pickle transport",
                    exc,
                )
                self.registry.counter("transport.shm_fallbacks").inc()
                use_shm = False
                partition_sources = partitions
            else:
                # Drop the parent's materialized partition copies before the
                # pool forks: the fork image (and each worker) carries refs,
                # not partition data. The base tables stay in self.database.
                partitions = {}

        def run_partition(task: TaskSpec):
            t0 = perf_counter()
            if fault_plan is not None:
                fault_plan.before_work(task.partition, task.attempt)
            worker_db = Database()
            for sources in partition_sources.values():
                worker_db.register(shm_transport.open_partition(sources[task.partition]))
            key = (task.partition, task.attempt)
            # Workers poll the abandoned set (live for thread/inline, a
            # fork-time copy for processes) *and* the governance contract —
            # whose token flag and monotonic deadline stay meaningful after
            # fork — so a cancel/deadline stops every backend at the next
            # operator/morsel boundary. The context also caps each worker's
            # partition-local live bytes.
            table, cards = Executor(worker_db, config).run_plan(
                worker_plans[task.partition],
                should_abort=lambda: key in runtime.abandoned,
                governance=governance,
            )
            if do_partial:
                payload = partial_aggregate(
                    table, aggregate, compute_ci=compute_ci, universe_variance=universe_variance
                )
            else:
                payload = table
            result = (perf_counter() - t0, cards, payload)
            if fault_plan is not None:
                result = fault_plan.after_work(
                    task.partition, task.attempt, result, corrupter=_corrupt_result
                )
            # Ship the (possibly fault-corrupted) table through shared memory
            # so validation still sees exactly what the worker produced.
            # Non-table payloads (partial states, injected junk) take the
            # pickle pipe as before.
            if (
                use_shm
                and isinstance(result, tuple)
                and len(result) == 3
                and isinstance(result[2], Table)
            ):
                simulate = fault_plan is not None and fault_plan.shm_fault_for(
                    task.partition, task.attempt
                )
                result = (
                    result[0],
                    result[1],
                    shm_transport.ship_result(
                        result[2], token, task.partition, task.attempt,
                        simulate_exhaustion=simulate,
                    ),
                )
            return result

        def validate(result, task: TaskSpec) -> None:
            if not (isinstance(result, tuple) and len(result) == 3):
                raise TaskError(
                    f"worker returned {type(result).__name__}, expected "
                    "(seconds, cardinalities, payload)",
                    partition=task.partition,
                    attempt=task.attempt,
                    kind="validation",
                )
            _, cards, payload = result
            if not isinstance(cards, dict):
                raise TaskError(
                    "worker cardinality map is corrupt",
                    partition=task.partition,
                    attempt=task.attempt,
                    kind="validation",
                )
            if do_partial:
                if not isinstance(payload, PartialAggregate):
                    raise TaskError(
                        f"expected a PartialAggregate, got {type(payload).__name__}",
                        partition=task.partition,
                        attempt=task.attempt,
                        kind="validation",
                    )
                return
            if not isinstance(payload, Table):
                raise TaskError(
                    f"expected a Table, got {type(payload).__name__}",
                    partition=task.partition,
                    attempt=task.attempt,
                    kind="validation",
                )
            missing = expected_columns - set(payload.column_names)
            if missing:
                raise TaskError(
                    f"partition output is missing columns {sorted(missing)}",
                    partition=task.partition,
                    attempt=task.attempt,
                    kind="validation",
                )
            if payload.has_weights() and not np.isfinite(payload.weights()).all():
                raise TaskError(
                    "partition output carries non-finite sample weights",
                    partition=task.partition,
                    attempt=task.attempt,
                    kind="validation",
                )

        # Parent-side transport hooks: map refs back into tables on receipt
        # (accounting pipe vs shared bytes), release segments behind any
        # result the runtime discards, and reap by deterministic name when a
        # worker dies before delivering its ref.
        transport_tally = {"pipe": 0, "shared": 0}

        def receive(result, spec: TaskSpec):
            if not (isinstance(result, tuple) and len(result) == 3):
                return result  # malformed shape; validation rejects it below
            if isinstance(result[2], TableRef):
                ref = result[2]
                transport_tally["pipe"] += ref.schema_bytes()
                transport_tally["shared"] += ref.nbytes
                return (result[0], result[1], Table.from_ref(ref))
            if isinstance(result[2], Table):
                # A whole table on a run that shipped refs means the worker's
                # shm shipping fell back to pickle (unencodable columns or an
                # exhausted arena) — the attempt survived on the slow path.
                self.registry.counter("transport.shm_fallbacks").inc()
            return result

        def reap_attempt(spec: TaskSpec):
            scrub_shared_segments(
                [shm_transport.result_segment_name(token, spec.partition, spec.attempt)]
            )

        report = None
        try:
            if use_shm:
                report = runtime.run(
                    run_partition,
                    n_tasks,
                    validate=validate,
                    receive=receive,
                    dispose=shm_transport.dispose_result,
                    reap=reap_attempt,
                    governance=governance,
                )
            else:
                report = runtime.run(
                    run_partition, n_tasks, validate=validate, governance=governance
                )
            lost = report.failed_partitions

            if report.aborted is not None:
                # Governance stopped the run mid-flight. For a blown
                # deadline/budget, salvage when the sample algebra allows
                # it: completed partitions of a degradable plan are
                # themselves a valid sample, so they flow into the standard
                # survivors-reweighting path below (aborted partitions are
                # simply "lost"). A *cancelled* query has no one waiting —
                # it always propagates. Never a serial re-execution, which
                # would double down on a contract already violated.
                survivors_so_far = n_tasks - len(lost)
                salvageable = (
                    isinstance(report.aborted, (DeadlineExceeded, BudgetExceeded))
                    and self._degradable(analysis, merge_mode)
                    and survivors_so_far > 0
                )
                if not salvageable:
                    raise report.aborted
                self.registry.counter(
                    "parallel.governed_salvages", reason=report.aborted.reason_code
                ).inc()
                _LOG.warning(
                    "governance abort (%s): salvaging %d/%d completed partition(s) "
                    "as a survivors-only sample",
                    report.aborted.reason_code,
                    survivors_so_far,
                    n_tasks,
                )

            if lost and not self._degradable(analysis, merge_mode):
                reason = (
                    f"partition(s) {list(lost)} permanently lost after "
                    f"{self.options.retry.max_attempts} attempt(s); "
                    + self._why_not_degradable(analysis, merge_mode)
                    + " — re-executing serially"
                )
                _LOG.warning("%s", reason)
                self.stats.serial_reexecutions += 1
                self.registry.counter("parallel.serial_reexecutions").inc()
                try:
                    result = self._serial_fallback(
                        plan, reason, start, record=False, governance=governance
                    )
                except Exception as exc:
                    raise DegradedResultError(
                        f"query failed: {reason}, and the serial re-execution "
                        f"also failed ({type(exc).__name__}: {exc})"
                    ) from exc
                self._fold_report(result.parallel, report, fault_plan)
                self.stats.record(result.parallel)
                return result

            survivors = [
                (pid, payload)
                for pid, payload in enumerate(report.payloads)
                if payload is not None
            ]
            if not survivors:
                raise DegradedResultError(
                    f"every partition of the parallel run failed "
                    f"(first error: {report.errors[0] if report.errors else 'unknown'})"
                )
            worker_seconds = report.latencies
            card_maps = [payload[1] for _, payload in survivors]
            payloads = [payload[2] for _, payload in survivors]
            if not use_shm and self.options.measure_transport_bytes:
                transport_tally["pipe"] = sum(
                    len(pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL)) for p in payloads
                )

            # Precursor cardinalities: worker plans mirror the split subtree
            # node-for-node, so worker addresses are precursor-relative and sum
            # directly under the split's absolute prefix.
            cardinalities: Dict[NodeAddress, int] = {}
            for cards in card_maps:
                for rel_address, count in cards.items():
                    absolute = split_address + rel_address
                    cardinalities[absolute] = cardinalities.get(absolute, 0) + count

            reweight_factor = 1.0
            if do_partial:
                merged_state = merge_partials(payloads)
                finalized = finalize_partial(
                    merged_state,
                    aggregate,
                    compute_ci=compute_ci,
                    universe_rescale=universe_rescale,
                    universe_variance=universe_variance,
                )
                overrides = {analysis.aggregate_address: finalized}
            else:
                selection_pis: List[float] = []
                if prune is not None and prune.selection_active:
                    # Horvitz-Thompson fold: a row that ran in a partition
                    # drawn with inclusion probability pi represents 1/pi
                    # partitions' worth of its stratum.
                    folded = []
                    for (tid, _), payload in zip(survivors, payloads):
                        pi = prune.inclusion[prune.keep[tid]]
                        selection_pis.append(pi)
                        if pi < 1.0:
                            payload = payload.with_columns(
                                {WEIGHT_COLUMN: payload.weights() * (1.0 / pi)}
                            )
                        folded.append(payload)
                    payloads = folded
                merged = merge_rows(payloads)
                if lost:
                    # Sample-aware degradation: surviving partitions are a
                    # valid sample; re-weight and let the variance algebra
                    # widen the CIs downstream. Pruned partitions held no
                    # qualifying rows, so the executed set is the population
                    # the loss is measured against.
                    reweighted, reweight_factor = reweight_surviving_partitions(
                        merged.weights(), n_tasks, len(lost)
                    )
                    merged = merged.with_columns({WEIGHT_COLUMN: reweighted})
                overrides = {split_address: merged}

            # After a salvage the contract is already blown; finishing the
            # (cheap, post-merge) upper plan ungoverned is the availability
            # promise — otherwise the expired deadline would instantly
            # re-trip and void the survivors we just salvaged.
            upper_governance = None if report.aborted is not None else governance
            table, upper_cards = self.serial_executor.run_plan(
                plan, overrides, governance=upper_governance
            )
            cardinalities.update(upper_cards)
            if (
                not do_partial
                and compute_ci
                and prune is not None
                and prune.selection_active
                and aggregate is not None
            ):
                # The row-level HT variance misses the between-partition
                # (cluster-sampling) component of weighted selection; fold
                # it into the CI columns now that the answer exists.
                table = inflate_selection_cis(table, aggregate, payloads, selection_pis)
            cost = cost_plan(plan, lambda node, address: cardinalities[address], config)
            elapsed = perf_counter() - start

            serial_seconds = None
            if self.options.measure_serial_baseline:
                t0 = perf_counter()
                self.serial_executor.execute(plan)
                serial_seconds = perf_counter() - t0

            coverage = (n_tasks - len(lost)) / n_tasks
            metrics = ParallelMetrics(
                parallelism=degree,
                strategy=analysis.strategy,
                pool_mode=runtime.pool.resolve_mode(),
                merge_mode=merge_mode,
                partitioned_tables=analysis.partitioned_tables,
                wall_clock_seconds=elapsed,
                serial_wall_clock_seconds=serial_seconds,
                modeled_speedup=modeled_speedup(cost, degree, config),
                worker_seconds=worker_seconds,
                tasks=n_tasks,
                task_retries=report.total_retries,
                speculative_launches=report.speculative_launches,
                speculative_wins=report.speculative_wins,
                faults_injected=fault_plan.num_faults if fault_plan is not None else 0,
                failed_partitions=lost,
                degraded=bool(lost),
                coverage=coverage,
                transport="shm" if use_shm else "pickle",
                result_bytes_on_pipe=transport_tally["pipe"],
                result_bytes_shared=transport_tally["shared"],
                pruning=prune.summary() if prune is not None else None,
            )
            if metrics.pruning is not None:
                metrics.pruning["machine_hours_credit"] = prune_cost_credit(
                    prune.rows_pruned_actual + prune.rows_unselected, config
                )
            self.stats.record(metrics)
            if lost:
                _LOG.warning(
                    "degraded result: partition(s) %s permanently lost; "
                    "coverage %.2f, surviving weights rescaled by %.3f",
                    list(lost),
                    coverage,
                    reweight_factor,
                )
                return PartialResult(
                    table=table.drop_lineage(),
                    cost=cost,
                    cardinalities=cardinalities,
                    wall_clock_seconds=elapsed,
                    parallel=metrics,
                    lost_partitions=lost,
                    coverage=coverage,
                    reweight_factor=reweight_factor,
                    abort_reason=(
                        report.aborted.reason_code
                        if report.aborted is not None else None
                    ),
                )
            return ExecutionResult(
                table=table.drop_lineage(),
                cost=cost,
                cardinalities=cardinalities,
                wall_clock_seconds=elapsed,
                parallel=metrics,
            )
        finally:
            if use_shm:
                if report is not None:
                    # Winning payloads were mapped into parent-side tables;
                    # by now the merge has copied their rows, so the segments
                    # can go (release tolerates still-live views). The sweep
                    # then reaps orphans of workers that died holding their
                    # result — every name the attempt ledger could have used.
                    for outcome in report.outcomes:
                        shm_transport.dispose_result(outcome.payload)
                    shm_transport.sweep_results(
                        token,
                        [outcome.attempts for outcome in report.outcomes],
                        keep=set(),
                    )
                shm_transport.release_refs(input_segments)

    # -- degradation rules ----------------------------------------------------
    @staticmethod
    def _sampler_kinds(analysis) -> frozenset:
        return frozenset(
            node.spec.kind
            for node in analysis.split.walk()
            if isinstance(node, SamplerNode)
        )

    def _degradable(self, analysis, merge_mode: str) -> bool:
        """Whether a permanently lost partition can be absorbed by
        re-weighting the survivors.

        Requires *all* of: degradation enabled; row merge (partial states
        fold weights in ways a scalar factor cannot undo); a round-robin
        strategy (hash strategies lose a deterministic key range — the
        survivors are a biased subset); and a plan rooted in uniform or
        universe samplers only (distinct samplers guarantee per-stratum
        minima the lost partition may have held; exact plans have no
        weights to re-scale).
        """
        if not self.options.allow_degraded or merge_mode != "rows":
            return False
        if not analysis.strategy.startswith("round-robin"):
            return False
        kinds = self._sampler_kinds(analysis)
        return bool(kinds & _DEGRADABLE_KINDS) and kinds <= (_DEGRADABLE_KINDS | _NEUTRAL_KINDS)

    def _why_not_degradable(self, analysis, merge_mode: str) -> str:
        if not self.options.allow_degraded:
            return "degradation disabled"
        if merge_mode != "rows":
            return "partial-aggregate states cannot be re-weighted after merge"
        if not analysis.strategy.startswith("round-robin"):
            return (
                f"strategy {analysis.strategy} loses a deterministic key range, "
                "not a random subset"
            )
        kinds = self._sampler_kinds(analysis)
        if not kinds & _DEGRADABLE_KINDS:
            return "plan has no uniform/universe sampler (exact answers cannot drop data)"
        return (
            f"sampler kinds {sorted(kinds - _DEGRADABLE_KINDS - _NEUTRAL_KINDS)} "
            "pin per-stratum guarantees to specific partitions"
        )

    def _fold_report(self, metrics: Optional[ParallelMetrics], report, fault_plan) -> None:
        """Attach the task report of a failed parallel phase to the metrics
        of its serial re-execution."""
        if metrics is None:
            return
        metrics.tasks = len(report.outcomes)
        metrics.task_retries = report.total_retries
        metrics.speculative_launches = report.speculative_launches
        metrics.speculative_wins = report.speculative_wins
        metrics.faults_injected = fault_plan.num_faults if fault_plan is not None else 0
        metrics.failed_partitions = report.failed_partitions

    def _serial_fallback(
        self, plan, reason: str, start: float, record: bool = True, governance=None
    ) -> ExecutionResult:
        """Run serially, reporting why parallel execution was declined.

        ``record=False`` defers the cumulative-stats entry to the caller
        (the re-execution path folds the failed parallel phase's task
        report into the metrics first)."""
        _LOG.info("falling back to serial execution: %s", reason)
        result = self.serial_executor.execute(plan, governance=governance)
        elapsed = perf_counter() - start
        result.wall_clock_seconds = elapsed
        result.parallel = ParallelMetrics(
            parallelism=self.parallelism,
            strategy="serial-fallback",
            pool_mode="inline",
            merge_mode=self.options.merge,
            reason=reason,
            wall_clock_seconds=elapsed,
        )
        if record:
            self.stats.record(result.parallel)
        return result


def _surviving_lineage(split, split_scan_ordinals: Dict[NodeAddress, int]) -> frozenset:
    """Lineage columns a correct worker payload must carry.

    A scan's lineage column flows up with its rows until a :class:`Project`
    rebuilds the schema (no implicit pass-through), so it survives the split
    iff no Project sits on the path from the split root to the scan.
    ``split_scan_ordinals`` is keyed by split-relative child-index paths.
    """
    surviving = set()
    for address, ordinal in split_scan_ordinals.items():
        node = split
        dropped = isinstance(node, Project)
        for step in address:
            node = node.children[step]
            dropped = dropped or isinstance(node, Project)
        if not dropped:
            surviving.add(rowid_column_name(ordinal))
    return frozenset(surviving)


def _corrupt_result(result):
    """Corrupter for injected ``corrupt`` faults: damage the payload member
    of the worker's (seconds, cardinalities, payload) result."""
    seconds, cards, payload = result
    if isinstance(payload, Table):
        return (seconds, cards, corrupt_table(payload))
    return (seconds, cards, None)  # partial state: replaced by junk
