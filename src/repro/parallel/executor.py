"""Partition-parallel plan execution (the paper's deployment mode).

Quickr's samplers are built to the operating requirements of Section 4.1 —
one pass, bounded memory, partitionable — precisely so that a sampled plan
can run as ordinary partition-parallel vertices in a cluster. This module
reproduces that execution mode in-process:

1. :func:`repro.parallel.plan.analyze_plan` picks the precursor subtree and
   a partitioning strategy (or explains why the plan must run serially);
2. each base table behind a precursor scan is partitioned (or broadcast)
   with its global lineage attached, and a :class:`WorkerPool` runs the
   rewritten precursor once per partition;
3. the partition outputs are merged — by exact row order (bit-identical to
   serial) or by partial-aggregate states — and the serial executor runs
   the remainder of the plan over the merged result.

Per-operator cardinalities are stitched back together keyed by stable
structural addresses (worker sums below the split, the serial run above
it) — addresses survive pickling across process boundaries, where object
identities would not — so the cluster cost model sees the same plan
profile a serial run would produce, and
:class:`~repro.engine.metrics.ParallelMetrics` reports both the modeled
and, when a serial reference run is requested, the measured speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from repro.algebra.addressing import NodeAddress
from repro.algebra.builder import Query
from repro.engine.costmodel import cost_plan
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.metrics import ClusterConfig, ParallelMetrics, modeled_speedup
from repro.engine.table import Database, Table, rowid_column_name
from repro.errors import PlanError
from repro.parallel.merge import (
    finalize_partial,
    merge_partials,
    merge_rows,
    partial_aggregate,
)
from repro.parallel.partitioner import HASH, Partitioner
from repro.parallel.plan import (
    DEFAULT_MIN_PARTITION_ROWS,
    PARTITION_HASH_SEED,
    analyze_plan,
    build_worker_plan,
    worker_table_name,
)
from repro.parallel.pool import WorkerPool

__all__ = ["ParallelOptions", "ParallelExecutor"]

_MERGE_MODES = ("rows", "partial")


@dataclass
class ParallelOptions:
    """Knobs of the parallel executor.

    ``merge="rows"`` ships sampled rows and reproduces the serial answer
    bit-for-bit; ``merge="partial"`` runs classic two-phase aggregation
    (identical estimates up to floating-point reassociation, group order by
    first appearance across partitions). ``measure_serial_baseline`` also
    times a serial reference run so ``ParallelMetrics.measured_speedup`` is
    populated — it doubles the work, so it is off by default.
    """

    pool: str = "auto"
    merge: str = "rows"
    min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS
    max_workers: Optional[int] = None
    measure_serial_baseline: bool = False

    def __post_init__(self):
        if self.merge not in _MERGE_MODES:
            raise PlanError(f"unknown merge mode {self.merge!r}; expected one of {_MERGE_MODES}")


class ParallelExecutor:
    """Runs plans partition-parallel over a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        config: Optional[ClusterConfig] = None,
        parallelism: int = 2,
        options: Optional[ParallelOptions] = None,
    ):
        if parallelism < 1:
            raise PlanError(f"parallelism must be positive, got {parallelism}")
        self.database = database
        self.config = config or ClusterConfig()
        self.parallelism = int(parallelism)
        self.options = options or ParallelOptions()
        # One long-lived serial executor for upper-plan runs and fallbacks:
        # its plan cache warms across repeated queries.
        self.serial_executor = Executor(database, self.config)

    def execute(self, query) -> ExecutionResult:
        plan = query.plan if isinstance(query, Query) else query
        start = perf_counter()
        if self.parallelism == 1:
            return self._serial_fallback(plan, "parallelism=1", start)

        analysis = analyze_plan(
            plan, self.database, min_partition_rows=self.options.min_partition_rows
        )
        if not analysis.ok:
            return self._serial_fallback(plan, analysis.reason, start)

        degree = self.parallelism
        split = analysis.split
        split_address = analysis.split_address
        aggregate = analysis.aggregate
        merge_mode = self.options.merge
        if merge_mode == "partial" and aggregate is None:
            merge_mode = "rows"  # nothing to two-phase; ship rows instead

        # Partition (or broadcast) each scan occurrence's base table, with
        # the occurrence's global lineage attached *before* the split so
        # workers see absolute base-row positions.
        partitions: Dict[str, List[Table]] = {}
        for entry in analysis.scans:
            base = self.database.table(entry.table)
            wname = worker_table_name(entry.scan_index)
            lineaged = base.with_columns(
                {rowid_column_name(entry.scan_index): np.arange(base.num_rows, dtype=np.int64)},
                name=wname,
            )
            if entry.mode == "broadcast":
                parts = [lineaged] * degree
            elif entry.mode == "partition-hash":
                parts = Partitioner(
                    degree, HASH, entry.hash_columns, seed=PARTITION_HASH_SEED
                ).split(lineaged)
            else:
                parts = Partitioner(degree).split(lineaged)
            partitions[wname] = parts

        worker_plans = [
            build_worker_plan(
                split,
                analysis.split_scan_ordinals,
                pid,
                degree,
                analysis.aligned_sampler_addresses,
            )
            for pid in range(degree)
        ]
        config = self.config
        do_partial = merge_mode == "partial"
        compute_ci = getattr(aggregate, "compute_ci", False)
        universe_rescale = getattr(aggregate, "universe_rescale", None)
        universe_variance = getattr(aggregate, "universe_variance", None)

        def run_partition(pid: int):
            t0 = perf_counter()
            worker_db = Database()
            for parts in partitions.values():
                worker_db.register(parts[pid])
            table, cards = Executor(worker_db, config).run_plan(worker_plans[pid])
            if do_partial:
                payload = partial_aggregate(
                    table, aggregate, compute_ci=compute_ci, universe_variance=universe_variance
                )
            else:
                payload = table
            return perf_counter() - t0, cards, payload

        pool = WorkerPool(self.options.pool, self.options.max_workers)
        results = pool.map(run_partition, range(degree))
        worker_seconds = tuple(r[0] for r in results)
        card_maps = [r[1] for r in results]
        payloads = [r[2] for r in results]

        # Precursor cardinalities: worker plans mirror the split subtree
        # node-for-node, so worker addresses are precursor-relative and sum
        # directly under the split's absolute prefix.
        cardinalities: Dict[NodeAddress, int] = {}
        for cards in card_maps:
            for rel_address, count in cards.items():
                absolute = split_address + rel_address
                cardinalities[absolute] = cardinalities.get(absolute, 0) + count

        if do_partial:
            merged_state = merge_partials(payloads)
            finalized = finalize_partial(
                merged_state,
                aggregate,
                compute_ci=compute_ci,
                universe_rescale=universe_rescale,
                universe_variance=universe_variance,
            )
            overrides = {analysis.aggregate_address: finalized}
        else:
            overrides = {split_address: merge_rows(payloads)}

        table, upper_cards = self.serial_executor.run_plan(plan, overrides)
        cardinalities.update(upper_cards)
        cost = cost_plan(plan, lambda node, address: cardinalities[address], config)
        elapsed = perf_counter() - start

        serial_seconds = None
        if self.options.measure_serial_baseline:
            t0 = perf_counter()
            self.serial_executor.execute(plan)
            serial_seconds = perf_counter() - t0

        metrics = ParallelMetrics(
            parallelism=degree,
            strategy=analysis.strategy,
            pool_mode=pool.resolve_mode(),
            merge_mode=merge_mode,
            partitioned_tables=analysis.partitioned_tables,
            wall_clock_seconds=elapsed,
            serial_wall_clock_seconds=serial_seconds,
            modeled_speedup=modeled_speedup(cost, degree, config),
            worker_seconds=worker_seconds,
        )
        return ExecutionResult(
            table=table.drop_lineage(),
            cost=cost,
            cardinalities=cardinalities,
            wall_clock_seconds=elapsed,
            parallel=metrics,
        )

    def _serial_fallback(self, plan, reason: str, start: float) -> ExecutionResult:
        """Run serially, reporting why parallel execution was declined."""
        result = self.serial_executor.execute(plan)
        elapsed = perf_counter() - start
        result.wall_clock_seconds = elapsed
        result.parallel = ParallelMetrics(
            parallelism=self.parallelism,
            strategy="serial-fallback",
            pool_mode="inline",
            merge_mode=self.options.merge,
            reason=reason,
            wall_clock_seconds=elapsed,
        )
        return result
