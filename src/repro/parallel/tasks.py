"""Fault-tolerant task scheduling over the worker pools.

Each partition of a parallel run becomes a :class:`TaskSpec` — id, attempt
counter, deterministic seed and a straggler deadline — executed through the
:class:`TaskRuntime`, which layers the failure handling a Cosmos-style
cluster scheduler would provide (the paper's samplers are single-pass and
partitionable *precisely so that* tasks can be retried and speculated
independently, Section 4.1):

* **structured failures** — a worker exception becomes a
  :class:`~repro.errors.TaskError` with partition/attempt context instead
  of a raw traceback; results are optionally validated, so corrupt payloads
  are failures too;
* **bounded retries with exponential backoff** — a failed attempt is
  re-launched after ``base * factor^attempt`` seconds (deterministically
  jittered by the task seed), up to ``max_attempts``. Because sampler
  decisions are counter-based on row lineage, a retried attempt is
  bit-identical to the attempt it replaces;
* **straggler speculation** — once enough attempts have completed, a task
  running longer than ``speculation_multiplier *`` the median attempt
  duration gets a speculative duplicate; the first attempt to finish wins,
  and losers are cancelled (unstarted ones immediately; running ones are
  flagged in :attr:`TaskRuntime.abandoned` so cooperative workers abort at
  the next operator boundary, and their late results are discarded);
* **pool-failure recovery** — a broken process pool (a worker died
  mid-result) is rebuilt and its in-flight attempts are charged one failed
  attempt each, not the whole query.

Tasks that exhaust every attempt are reported as failed in the
:class:`TaskReport`, never raised from here: the caller decides whether the
query can gracefully degrade (see :mod:`repro.parallel.executor`).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import GovernanceError, PlanError, TaskCancelled, TaskError
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.parallel.pool import WorkerPool, fork_payload, _fork_available, _run_argument

__all__ = ["TaskSpec", "RetryPolicy", "TaskOutcome", "TaskReport", "TaskRuntime", "task_seed"]

_LOG = obs_log.logger("parallel.tasks")

#: Multiplier/offsets of the deterministic per-attempt seed mix (splitmix-ish
#: odd constants; any fixed values work — determinism is the point).
_SEED_MIX = (0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB)


def task_seed(base_seed: int, partition: int, attempt: int) -> int:
    """Deterministic 63-bit seed for one (partition, attempt) execution."""
    mixed = (base_seed * _SEED_MIX[0] + partition * _SEED_MIX[1] + attempt * _SEED_MIX[2]) & (
        2**64 - 1
    )
    mixed ^= mixed >> 31
    return mixed & (2**63 - 1)


@dataclass(frozen=True)
class TaskSpec:
    """One attempt of one partition task, as shipped to a worker.

    Picklable and tiny: in process mode the work function travels by fork
    image while the spec crosses the pipe, so retries and speculative
    attempts can be launched against an already-running pool.
    """

    #: Partition id — the task's identity across attempts.
    partition: int
    #: 0-based attempt counter (retries and speculative duplicates increment).
    attempt: int
    #: Deterministic seed for this execution (see :func:`task_seed`).
    seed: int
    #: Straggler budget in seconds granted at launch (None before the
    #: scheduler has a latency estimate). Advisory: exceeding it triggers a
    #: speculative duplicate, not a kill.
    deadline: Optional[float] = None


@dataclass(frozen=True)
class RetryPolicy:
    """Retry / backoff / speculation knobs of the task runtime."""

    #: Maximum executions of one task via the retry path (>= 1).
    max_attempts: int = 3
    #: First retry waits this long (seconds)...
    backoff_base: float = 0.05
    #: ...growing by this factor per subsequent retry...
    backoff_factor: float = 2.0
    #: ...capped here.
    backoff_max: float = 2.0
    #: Launch speculative duplicates for stragglers.
    speculate: bool = True
    #: A task is a straggler when its running attempt exceeds
    #: ``speculation_multiplier * median completed-attempt duration``.
    speculation_multiplier: float = 3.0
    #: ...but never before this many seconds (guards tiny-task noise).
    speculation_min_seconds: float = 0.25
    #: Speculative duplicates per task (on top of retry attempts).
    max_speculative: int = 1
    #: Completed attempts needed before the median is trusted.
    speculation_quorum: int = 2
    #: Scheduler poll interval (seconds).
    poll_interval: float = 0.01

    def __post_init__(self):
        if self.max_attempts < 1:
            raise PlanError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_factor < 1.0:
            raise PlanError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def backoff_seconds(self, failures: int, seed: int) -> float:
        """Deterministically jittered exponential backoff before retry
        number ``failures`` (1-based)."""
        raw = self.backoff_base * self.backoff_factor ** max(0, failures - 1)
        capped = min(self.backoff_max, raw)
        jitter = 0.75 + 0.5 * ((seed >> 7) % 1024) / 1024.0  # [0.75, 1.25)
        return capped * jitter


@dataclass
class TaskOutcome:
    """Everything that happened to one partition task."""

    partition: int
    payload: Any = None
    succeeded: bool = False
    #: Total executions launched (initial + retries + speculative).
    attempts: int = 0
    #: Failed executions that triggered a re-launch.
    retries: int = 0
    #: Speculative duplicates launched.
    speculative: int = 0
    #: Whether a speculative duplicate (not the original lineage of
    #: retries) produced the winning result.
    won_by_speculation: bool = False
    #: Duration of the winning attempt (seconds); None if the task failed.
    seconds: Optional[float] = None
    errors: List[TaskError] = field(default_factory=list)


@dataclass
class TaskReport:
    """Aggregate result of one :meth:`TaskRuntime.run`."""

    outcomes: List[TaskOutcome]
    #: The :class:`~repro.errors.GovernanceError` that stopped the run
    #: early (cancellation/deadline/budget), or None. The runtime *returns*
    #: it instead of raising so the caller's transport cleanup still sees
    #: the full attempt ledger in :attr:`outcomes`; unfinished tasks are
    #: marked failed with kind ``governed``. The caller re-raises or
    #: degrades to a survivors-only answer.
    aborted: Optional[GovernanceError] = None

    @property
    def payloads(self) -> List[Any]:
        """Per-partition payloads (None where the task permanently failed)."""
        return [o.payload if o.succeeded else None for o in self.outcomes]

    @property
    def failed_partitions(self) -> Tuple[int, ...]:
        return tuple(o.partition for o in self.outcomes if not o.succeeded)

    @property
    def all_succeeded(self) -> bool:
        return not self.failed_partitions

    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    @property
    def speculative_launches(self) -> int:
        return sum(o.speculative for o in self.outcomes)

    @property
    def speculative_wins(self) -> int:
        return sum(1 for o in self.outcomes if o.won_by_speculation)

    @property
    def latencies(self) -> Tuple[float, ...]:
        """Winning-attempt durations of the successful tasks, by partition."""
        return tuple(o.seconds for o in self.outcomes if o.seconds is not None)

    @property
    def errors(self) -> List[TaskError]:
        return [e for o in self.outcomes for e in o.errors]


@dataclass
class _Attempt:
    """Parent-side bookkeeping of one in-flight execution."""

    spec: TaskSpec
    future: Any
    started: float
    speculative: bool
    #: Parent-side trace span of this attempt (None when tracing is off).
    span: Any = None


@dataclass
class _TracedPayload:
    """A worker's payload plus its serialized span buffer.

    Plain data (the buffer is a list of dicts), so it pickles across the
    process-pool result pipe; the parent adopts the spans under the
    attempt span and unwraps the payload before validation.
    """

    payload: Any
    spans: List[dict]


def _traced_fn(fn: Callable[["TaskSpec"], Any]) -> Callable[["TaskSpec"], Any]:
    """Wrap a work function to record its spans into a private buffer.

    The wrapper installs a fresh :class:`~repro.obs.trace.Tracer` as the
    worker's thread-local override, so instrumentation inside ``fn`` (the
    physical executor's per-operator spans) lands in the buffer regardless
    of pool backend — inline, thread, or fork — and is shipped back with
    the payload. The closure travels to process workers by fork image, so
    it does not need to pickle.
    """

    def traced(spec: "TaskSpec") -> _TracedPayload:
        worker = obs_trace.Tracer()
        previous = obs_trace.push_override(worker)
        try:
            with worker.span(
                "task.work", partition=spec.partition, attempt=spec.attempt
            ):
                payload = fn(spec)
        finally:
            obs_trace.pop_override(previous)
        return _TracedPayload(payload=payload, spans=worker.buffer())

    return traced


class TaskRuntime:
    """Runs partition tasks over a :class:`WorkerPool` with fault handling.

    ``validate(payload, spec)`` — optional; raise (anything) to reject a
    result, turning e.g. corrupt rows into a retryable failure.

    :attr:`abandoned` is the live set of ``(partition, attempt)`` pairs
    whose results are no longer wanted. It is shared by reference with
    thread/inline workers, so a work function may poll it (directly or via
    a ``should_abort`` callback into the physical executor) to stop wasting
    CPU; process workers hold a fork-time copy and simply run to completion,
    their results dropped on arrival.
    """

    def __init__(
        self,
        pool: WorkerPool,
        policy: Optional[RetryPolicy] = None,
        base_seed: int = 0,
    ):
        self.pool = pool
        self.policy = policy or RetryPolicy()
        self.base_seed = int(base_seed)
        self.abandoned: Set[Tuple[int, int]] = set()
        #: Active tracer of the current :meth:`run` (None when tracing is off).
        self._tracer: Optional[obs_trace.Tracer] = None
        # Transport hooks of the current run (see :meth:`run`).
        self._receive: Optional[Callable[[Any, TaskSpec], Any]] = None
        self._dispose: Optional[Callable[[Any], None]] = None
        self._reap: Optional[Callable[[TaskSpec], None]] = None

    # -- public entry ---------------------------------------------------------
    def run(
        self,
        fn: Callable[[TaskSpec], Any],
        num_tasks: int,
        validate: Optional[Callable[[Any, TaskSpec], None]] = None,
        receive: Optional[Callable[[Any, TaskSpec], Any]] = None,
        dispose: Optional[Callable[[Any], None]] = None,
        reap: Optional[Callable[[TaskSpec], None]] = None,
        governance=None,
    ) -> TaskReport:
        """Run ``fn`` over ``num_tasks`` partition tasks.

        ``receive(payload, spec)`` transforms a candidate result before
        validation — the shm transport maps a :class:`TableRef` back into a
        table here; raising makes the attempt a retryable failure.
        ``dispose(payload)`` is called on every result the runtime discards
        (late speculative losers, post-success arrivals, validation
        failures) so transports can release resources the payload owns.
        ``reap(spec)`` is called for each in-flight attempt lost to a
        broken process pool — the attempt may have died while holding a
        shared segment it never got to hand over.
        ``governance`` (a :class:`~repro.engine.governance.GovernanceContext`)
        is checked every scheduler tick and before every inline attempt.
        When it fires, the run stops *salvaging*: live attempts are
        cancelled/abandoned, unfinished tasks are marked failed with kind
        ``governed``, and the typed error is returned on
        :attr:`TaskReport.aborted` rather than raised — completed payloads
        stay in the outcomes for survivors-only degradation.
        """
        if num_tasks < 1:
            raise PlanError(f"num_tasks must be >= 1, got {num_tasks}")
        self.abandoned.clear()
        self._tracer = obs_trace.current_tracer()
        if self._tracer is not None:
            fn = _traced_fn(fn)
        self._receive = receive
        self._dispose = dispose
        self._reap = reap
        mode = self.pool.resolve_mode()
        workers = self.pool.workers_for(num_tasks)
        outcomes = [TaskOutcome(partition=i) for i in range(num_tasks)]
        aborted: Optional[GovernanceError] = None
        if mode == "inline" or workers == 1:
            aborted = self._run_inline(fn, outcomes, validate, governance)
        elif mode == "process":
            if not _fork_available():
                raise PlanError("process pool requires the fork start method; use thread/inline")
            import multiprocessing as mp

            ctx = mp.get_context("fork")
            with fork_payload(fn):
                make = lambda: ProcessPoolExecutor(max_workers=workers, mp_context=ctx)  # noqa: E731
                aborted = self._run_concurrent(
                    _run_argument, make, outcomes, validate, can_recycle=True,
                    governance=governance,
                )
        elif mode == "thread":
            make = lambda: ThreadPoolExecutor(max_workers=workers)  # noqa: E731
            aborted = self._run_concurrent(
                fn, make, outcomes, validate, can_recycle=False, governance=governance
            )
        else:
            raise PlanError(f"unknown pool mode {mode!r}")
        return TaskReport(outcomes=outcomes, aborted=aborted)

    # -- shared helpers -------------------------------------------------------
    def _spec(self, partition: int, attempt: int, deadline: Optional[float]) -> TaskSpec:
        return TaskSpec(
            partition=partition,
            attempt=attempt,
            seed=task_seed(self.base_seed, partition, attempt),
            deadline=deadline,
        )

    def _check(self, payload, spec: TaskSpec, validate) -> Optional[TaskError]:
        if validate is None:
            return None
        try:
            validate(payload, spec)
            return None
        except Exception as exc:
            error = TaskError(
                f"result failed validation: {exc}",
                partition=spec.partition,
                attempt=spec.attempt,
                kind="validation",
            )
            error.__cause__ = exc
            return error

    def _begin_span(self, spec: TaskSpec, speculative: bool):
        if self._tracer is None:
            return None
        return self._tracer.begin(
            "task.attempt",
            partition=spec.partition,
            attempt=spec.attempt,
            speculative=speculative,
        )

    def _end_span(self, span, status: str = "ok", **attributes) -> None:
        if self._tracer is None or span is None or span.closed:
            return
        self._tracer.end(span, status=status, **attributes)

    def _unwrap(self, payload, span):
        """Adopt a worker's span buffer under the attempt span; return the
        bare payload."""
        if isinstance(payload, _TracedPayload):
            if self._tracer is not None:
                self._tracer.adopt(
                    payload.spans, parent_id=span.span_id if span is not None else None
                )
            return payload.payload
        return payload

    def _discard(self, payload) -> None:
        """Hand a dropped result to the dispose hook (never raises)."""
        if self._dispose is None:
            return
        try:
            self._dispose(payload)
        except Exception:  # cleanup must not mask the scheduling path
            _LOG.exception("dispose hook failed; continuing")

    def _reap_attempt(self, spec: TaskSpec) -> None:
        """Hand a pool-lost attempt to the reap hook (never raises)."""
        if self._reap is None:
            return
        try:
            self._reap(spec)
        except Exception:
            _LOG.exception("reap hook failed; continuing")

    @staticmethod
    def _wrap(exc: BaseException, spec: TaskSpec, kind: str = "exception") -> TaskError:
        if isinstance(exc, TaskError):
            return exc
        if isinstance(exc, GovernanceError):
            kind = "governed"
        error = TaskError(
            f"{type(exc).__name__}: {exc}",
            partition=spec.partition,
            attempt=spec.attempt,
            kind=kind,
        )
        error.__cause__ = exc  # keep the chain without re-raising
        return error

    @staticmethod
    def _mark_governed(outcomes: List[TaskOutcome], exc: GovernanceError) -> None:
        """Mark every unfinished task failed with kind ``governed`` — not
        retried (the contract that stopped them holds for any retry) and
        counted as lost for survivors-only degradation."""
        for outcome in outcomes:
            if outcome.succeeded:
                continue
            error = TaskError(
                f"{type(exc).__name__}: {exc}",
                partition=outcome.partition,
                kind="governed",
            )
            error.__cause__ = exc
            outcome.errors.append(error)

    # -- inline (sequential) path ---------------------------------------------
    def _run_inline(
        self, fn, outcomes: List[TaskOutcome], validate, governance=None
    ) -> Optional[GovernanceError]:
        policy = self.policy
        for outcome in outcomes:
            failures = 0
            while failures < policy.max_attempts:
                if governance is not None:
                    try:
                        governance.check()
                    except GovernanceError as exc:
                        self._mark_governed(outcomes, exc)
                        return exc
                spec = self._spec(outcome.partition, outcome.attempts, deadline=None)
                outcome.attempts += 1
                if failures:
                    backoff = policy.backoff_seconds(failures, spec.seed)
                    _LOG.warning(
                        "partition %d retry %d/%d after %.3fs backoff",
                        outcome.partition,
                        failures,
                        policy.max_attempts - 1,
                        backoff,
                    )
                    time.sleep(backoff)
                started = time.perf_counter()
                span = self._begin_span(spec, speculative=False)
                try:
                    payload = fn(spec)
                except TaskCancelled:
                    self._end_span(span, status="cancelled")
                    continue  # not charged as a failure; relaunch
                except GovernanceError as exc:
                    # The worker saw the contract violation first (e.g. a
                    # partition-local budget blow); same as a scheduler-side
                    # trip — never retried, the run stops salvaging.
                    self._end_span(span, status="cancelled")
                    self._mark_governed(outcomes, exc)
                    return exc
                except Exception as exc:
                    self._end_span(span, status="error", error=f"{type(exc).__name__}: {exc}")
                    outcome.errors.append(self._wrap(exc, spec))
                    failures += 1
                    if failures < policy.max_attempts:
                        outcome.retries += 1
                    continue
                payload = self._unwrap(payload, span)
                if self._receive is not None:
                    try:
                        payload = self._receive(payload, spec)
                    except Exception as exc:
                        self._end_span(span, status="error", error=f"receive: {exc}")
                        outcome.errors.append(self._wrap(exc, spec, kind="transport"))
                        failures += 1
                        if failures < policy.max_attempts:
                            outcome.retries += 1
                        continue
                error = self._check(payload, spec, validate)
                if error is not None:
                    self._end_span(span, status="error", error=str(error))
                    self._discard(payload)
                    outcome.errors.append(error)
                    failures += 1
                    if failures < policy.max_attempts:
                        outcome.retries += 1
                    continue
                outcome.succeeded = True
                outcome.payload = payload
                outcome.seconds = time.perf_counter() - started
                self._end_span(span, won=True)
                break
            if not outcome.succeeded:
                _LOG.error(
                    "partition %d permanently failed after %d attempt(s): %s",
                    outcome.partition,
                    outcome.attempts,
                    outcome.errors[-1] if outcome.errors else "unknown error",
                )
        return None

    # -- concurrent (thread/process) path -------------------------------------
    def _run_concurrent(
        self,
        submit_fn,
        make_executor,
        outcomes: List[TaskOutcome],
        validate,
        can_recycle: bool,
        governance=None,
    ) -> Optional[GovernanceError]:
        policy = self.policy
        executor = make_executor()
        live: Dict[Any, _Attempt] = {}  # future -> attempt
        #: (eligible_time, partition) retries waiting out their backoff.
        retry_queue: List[Tuple[float, int]] = []
        failures: Dict[int, int] = {o.partition: 0 for o in outcomes}
        done: Set[int] = set()
        durations: List[float] = []

        def launch(partition: int, speculative: bool) -> None:
            outcome = outcomes[partition]
            deadline = self._straggler_threshold(durations)
            spec = self._spec(partition, outcome.attempts, deadline)
            outcome.attempts += 1
            if speculative:
                outcome.speculative += 1
                _LOG.info(
                    "launching speculative duplicate for straggler partition %d "
                    "(attempt %d, threshold %.3fs)",
                    partition,
                    spec.attempt,
                    deadline if deadline is not None else float("nan"),
                )
            span = self._begin_span(spec, speculative=speculative)
            attempt = _Attempt(
                spec=spec,
                future=executor.submit(submit_fn, spec),
                started=time.perf_counter(),
                speculative=speculative,
                span=span,
            )
            live[attempt.future] = attempt

        def record_failure(attempt: _Attempt, error: TaskError) -> None:
            partition = attempt.spec.partition
            outcome = outcomes[partition]
            outcome.errors.append(error)
            failures[partition] += 1
            if failures[partition] < policy.max_attempts:
                outcome.retries += 1
                backoff = policy.backoff_seconds(failures[partition], attempt.spec.seed)
                _LOG.warning(
                    "partition %d attempt %d failed (%s); retry %d/%d in %.3fs",
                    partition,
                    attempt.spec.attempt,
                    error.kind,
                    failures[partition],
                    policy.max_attempts - 1,
                    backoff,
                )
                retry_queue.append((time.perf_counter() + backoff, partition))
            else:
                # Exhausted — the task fails when its last live attempt dies.
                _LOG.error(
                    "partition %d permanently failed after %d attempt(s): %s",
                    partition,
                    failures[partition],
                    error,
                )

        abort_exc: Optional[GovernanceError] = None
        try:
            for outcome in outcomes:
                launch(outcome.partition, speculative=False)

            while len(done) < len(outcomes) and (live or retry_queue):
                if governance is not None and abort_exc is None:
                    try:
                        governance.check()
                    except GovernanceError as exc:
                        abort_exc = exc
                if abort_exc is not None:
                    break
                now = time.perf_counter()
                # Launch retries whose backoff has elapsed.
                due = [p for t, p in retry_queue if t <= now and p not in done]
                retry_queue = [(t, p) for t, p in retry_queue if t > now and p not in done]
                for partition in due:
                    launch(partition, speculative=False)

                # Straggler speculation.
                if policy.speculate:
                    threshold = self._straggler_threshold(durations)
                    if threshold is not None:
                        by_partition: Dict[int, List[_Attempt]] = {}
                        for attempt in live.values():
                            by_partition.setdefault(attempt.spec.partition, []).append(attempt)
                        for partition, attempts in by_partition.items():
                            outcome = outcomes[partition]
                            if (
                                partition in done
                                or len(attempts) != 1
                                or outcome.speculative >= policy.max_speculative
                            ):
                                continue
                            if now - attempts[0].started > threshold:
                                launch(partition, speculative=True)

                if not live:
                    # Only backed-off retries remain; sleep until the next
                    # one (in poll-sized slices when governed, so a cancel
                    # or deadline is still noticed within one tick).
                    if retry_queue:
                        pause = max(0.0, min(t for t, _ in retry_queue) - now)
                        if governance is not None:
                            pause = min(pause, policy.poll_interval)
                        time.sleep(pause)
                    continue

                finished, _ = wait(
                    set(live), timeout=policy.poll_interval, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    attempt = live.pop(future, None)
                    if attempt is None:
                        continue  # pool was recycled under this batch
                    spec = attempt.spec
                    partition = spec.partition
                    outcome = outcomes[partition]
                    key = (partition, spec.attempt)
                    try:
                        payload = future.result()
                    except TaskCancelled:
                        self._end_span(attempt.span, status="cancelled")
                        self.abandoned.discard(key)
                        continue  # cooperative abort; never a failure
                    except GovernanceError as exc:
                        # A worker tripped the contract before the scheduler
                        # tick did; stop the whole run salvaging.
                        self._end_span(attempt.span, status="cancelled")
                        self.abandoned.discard(key)
                        if abort_exc is None:
                            abort_exc = exc
                        continue
                    except BrokenProcessPool as exc:
                        self._end_span(attempt.span, status="error", error="pool broke")
                        # The dead worker may have created its result segment
                        # before dying; reap it by name — the ref never arrived.
                        self._reap_attempt(spec)
                        if can_recycle:
                            executor, live = self._recycle(
                                make_executor, live, outcomes, failures, retry_queue, done
                            )
                        if partition not in done:
                            record_failure(attempt, self._wrap(exc, spec, kind="pool-broken"))
                        continue
                    except Exception as exc:
                        self._end_span(
                            attempt.span, status="error", error=f"{type(exc).__name__}: {exc}"
                        )
                        self.abandoned.discard(key)
                        if partition in done:
                            continue  # a loser failing changes nothing
                        record_failure(attempt, self._wrap(exc, spec))
                        continue

                    payload = self._unwrap(payload, attempt.span)
                    if key in self.abandoned or partition in done:
                        self._end_span(attempt.span, status="cancelled")
                        self.abandoned.discard(key)
                        self._discard(payload)
                        continue  # late loser; result discarded
                    if self._receive is not None:
                        try:
                            payload = self._receive(payload, spec)
                        except Exception as exc:
                            self._end_span(
                                attempt.span, status="error", error=f"receive: {exc}"
                            )
                            record_failure(
                                attempt, self._wrap(exc, spec, kind="transport")
                            )
                            continue
                    error = self._check(payload, spec, validate)
                    if error is not None:
                        self._end_span(attempt.span, status="error", error=str(error))
                        self._discard(payload)
                        record_failure(attempt, error)
                        continue

                    # First finished attempt wins the task.
                    done.add(partition)
                    outcome.succeeded = True
                    outcome.payload = payload
                    outcome.seconds = time.perf_counter() - attempt.started
                    outcome.won_by_speculation = attempt.speculative
                    durations.append(outcome.seconds)
                    self._end_span(
                        attempt.span,
                        won=True,
                        seconds=outcome.seconds,
                        won_by_speculation=attempt.speculative,
                    )
                    # Cancel the losers: unstarted futures die now, running
                    # ones are flagged for cooperative abort and otherwise
                    # ignored on arrival. Their spans close *now*, at the
                    # cancellation decision — late completions of abandoned
                    # attempts are dropped without further observation.
                    for other_future, other in list(live.items()):
                        if other.spec.partition != partition:
                            continue
                        other_future.cancel()
                        self.abandoned.add((partition, other.spec.attempt))
                        self._end_span(other.span, status="cancelled")
                        del live[other_future]

            if abort_exc is not None:
                # Governance abort: cancel everything still in flight.
                # Unstarted futures die now; running thread workers see the
                # abandoned set, and fork workers see the token's shared
                # mmap byte / the absolute monotonic deadline — all abort at
                # their next morsel boundary, so the straggler wait in the
                # finally block below stays short. Completed payloads remain
                # in the outcomes for survivors-only degradation.
                for future, attempt in list(live.items()):
                    future.cancel()
                    self.abandoned.add((attempt.spec.partition, attempt.spec.attempt))
                    self._end_span(attempt.span, status="cancelled")
                live.clear()
                self._mark_governed(outcomes, abort_exc)
                _LOG.warning(
                    "run aborted by governance (%s); %d/%d task(s) salvaged",
                    abort_exc.reason_code,
                    len(done),
                    len(outcomes),
                )
        finally:
            # When a transport hook owns out-of-process resources (shared
            # segments named per attempt), wait for straggler workers to
            # exit: an abandoned attempt may still write its result segment
            # after losing, and the caller's post-run sweep can only see
            # segments that exist by the time workers are gone. Without
            # hooks, keep the old fire-and-forget shutdown.
            wait_for_stragglers = self._dispose is not None or self._reap is not None
            executor.shutdown(wait=wait_for_stragglers, cancel_futures=True)
        return abort_exc

    def _straggler_threshold(self, durations: List[float]) -> Optional[float]:
        policy = self.policy
        if not policy.speculate or len(durations) < policy.speculation_quorum:
            return None
        ordered = sorted(durations)
        median = ordered[len(ordered) // 2]
        return max(policy.speculation_min_seconds, policy.speculation_multiplier * median)

    def _recycle(self, make_executor, live, outcomes, failures, retry_queue, done):
        """Replace a broken process pool, charging each in-flight attempt
        one failure (their futures are dead with it)."""
        policy = self.policy
        now = time.perf_counter()
        _LOG.warning(
            "process pool broke; recycling (%d in-flight attempt(s) each charged one failure)",
            len(live),
        )
        for attempt in live.values():
            self._end_span(attempt.span, status="error", error="pool broke")
            self._reap_attempt(attempt.spec)
            partition = attempt.spec.partition
            if partition in done:
                continue
            outcome = outcomes[partition]
            outcome.errors.append(
                TaskError(
                    "worker pool broke while the attempt was in flight",
                    partition=partition,
                    attempt=attempt.spec.attempt,
                    kind="pool-broken",
                )
            )
            failures[partition] += 1
            if failures[partition] < policy.max_attempts:
                outcome.retries += 1
                retry_queue.append((now, partition))
        return make_executor(), {}
