"""Partition-parallel execution of sampled plans.

The paper's samplers are single-pass, bounded-memory and partitionable
(Section 4.1) so sampled plans parallelize like any other first-pass
operator. This package supplies the pieces:

- :mod:`repro.parallel.partitioner` — round-robin and hash input splits;
- :mod:`repro.parallel.plan` — precursor/successor split, strategy choice,
  worker plan rewriting;
- :mod:`repro.parallel.pool` — process/thread/inline worker pools;
- :mod:`repro.parallel.tasks` — fault-tolerant task scheduling: bounded
  retries with backoff, straggler speculation, structured failures;
- :mod:`repro.parallel.faults` — seeded fault injection for chaos testing;
- :mod:`repro.parallel.merge` — exact row-order merge and mergeable
  partial-aggregate states (plus sketch folds);
- :mod:`repro.parallel.executor` — the orchestrating
  :class:`ParallelExecutor`, reached from
  :class:`repro.engine.executor.Executor` via ``parallelism=N``; lost
  partitions gracefully degrade sampled queries to
  :class:`~repro.engine.executor.PartialResult` answers.
"""

from repro.parallel.executor import ParallelExecutor, ParallelOptions
from repro.parallel.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    InjectedFault,
    corrupt_table,
)
from repro.parallel.merge import (
    finalize_partial,
    merge_heavy_hitters,
    merge_kmv,
    merge_partials,
    merge_rows,
    partial_aggregate,
)
from repro.parallel.partitioner import HASH, ROUND_ROBIN, Partitioner, co_partitioners
from repro.parallel.plan import PlanAnalysis, analyze_plan, build_worker_plan
from repro.parallel.pool import WorkerPool, available_parallelism, fork_payload
from repro.parallel.tasks import (
    RetryPolicy,
    TaskOutcome,
    TaskReport,
    TaskRuntime,
    TaskSpec,
    task_seed,
)

__all__ = [
    "ParallelExecutor",
    "ParallelOptions",
    "Partitioner",
    "co_partitioners",
    "ROUND_ROBIN",
    "HASH",
    "PlanAnalysis",
    "analyze_plan",
    "build_worker_plan",
    "WorkerPool",
    "available_parallelism",
    "fork_payload",
    "merge_rows",
    "partial_aggregate",
    "merge_partials",
    "finalize_partial",
    "merge_heavy_hitters",
    "merge_kmv",
    "TaskSpec",
    "RetryPolicy",
    "TaskOutcome",
    "TaskReport",
    "TaskRuntime",
    "task_seed",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "corrupt_table",
]
