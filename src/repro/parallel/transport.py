"""Zero-copy shared-memory transport for partition inputs and results.

The pickle transport ships whole partition tables over the process-pool
result pipe — O(data) bytes serialized, copied and deserialized per task.
This module replaces that with :class:`~repro.memory.TableRef` descriptors:
column buffers live in named ``shared_memory`` segments and only O(schema)
bytes cross the pipe.

Two directions, two ownership rules:

* **Inputs** (parent → workers): the parent writes every partition table
  into a segment *before* the pool forks, drops its materialized copies,
  and publishes refs. Workers attach read-only views on demand. The parent
  owns the segments and releases them when the run ends.
* **Results** (worker → parent): the worker writes its output table into a
  segment whose name is a *deterministic function of (run token, partition,
  attempt)* and detaches immediately; only the ref returns over the pipe.
  The parent assumes ownership on receipt. Deterministic naming is the
  crash-safety story: a worker that dies while holding a segment never
  delivers the ref, but the parent can still reap the orphan by
  reconstructing its name from the attempt ledger (:func:`sweep_results`,
  plus the pool-recycle hook in :mod:`repro.parallel.tasks`).

Fallback matrix: thread/inline backends share an address space, so tables
pass by reference and shm would only add copies — they stay on the pickle
path. A table the arena cannot encode (e.g. an object column holding
non-strings) falls back to pickling that one payload; the parent accepts
either form. ``transport="pickle"`` forces the old path everywhere.
"""

from __future__ import annotations

import errno
import secrets
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.engine.table import Table
from repro.errors import SchemaError
from repro.memory import SEGMENT_PREFIX, TableRef, reap, release
from repro.obs import log as obs_log

__all__ = [
    "TRANSPORT_MODES",
    "new_run_token",
    "shm_available",
    "result_segment_name",
    "ship_partitions",
    "open_partition",
    "ship_result",
    "dispose_result",
    "sweep_results",
    "release_refs",
]

_LOG = obs_log.logger("parallel.transport")

#: Valid values of ``ParallelOptions.transport``.
TRANSPORT_MODES = ("auto", "shm", "pickle")


def new_run_token() -> str:
    """Short unique token naming one parallel run's segment family."""
    return secrets.token_hex(4)


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (some sandboxes
    mount no /dev/shm)."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=1)
        probe.close()
        # The stdlib unlink also unregisters the create-time tracker entry,
        # so the probe leaves the tracker balanced.
        probe.unlink()
        return True
    except Exception:
        return False


def _input_segment_name(token: str, partition: int, ordinal: int) -> str:
    return f"{SEGMENT_PREFIX}{token}_i{partition}_{ordinal}"


def result_segment_name(token: str, partition: int, attempt: int) -> str:
    """Deterministic result-segment name for one (partition, attempt)."""
    return f"{SEGMENT_PREFIX}{token}_r{partition}a{attempt}"


def ship_partitions(
    partitions: Dict[str, List[Table]], token: str
) -> Tuple[Dict[str, List[TableRef]], List[str]]:
    """Write every partition table into shared memory.

    Returns ``(refs, segment_names)``: the refs dict mirrors the input's
    shape (worker-table name → per-partition list), and ``segment_names``
    is the parent's cleanup ledger — the parent owns every input segment
    for the whole run. Raises :class:`~repro.errors.SchemaError` (after
    cleaning up segments already written) if any column cannot be encoded;
    callers then fall back to the pickle transport wholesale.
    """
    from repro.memory import arena

    refs: Dict[str, List[TableRef]] = {}
    names: List[str] = []
    seen: Dict[int, TableRef] = {}  # id(table) -> ref, aliases broadcasts
    try:
        for ordinal, (wname, parts) in enumerate(sorted(partitions.items())):
            shipped = []
            for pid, part in enumerate(parts):
                cached = seen.get(id(part))
                if cached is not None:
                    # Broadcast tables repeat one object per partition;
                    # ship the bytes once and alias the ref.
                    shipped.append(cached)
                    continue
                name = _input_segment_name(token, pid, ordinal)
                ref = arena.create_table_segment(name, part.name, part.to_dict(), part.num_rows)
                names.append(name)
                seen[id(part)] = ref
                shipped.append(ref)
            refs[wname] = shipped
    except Exception:
        release_refs(names)
        raise
    return refs, names


def open_partition(source: Union[Table, TableRef]) -> Table:
    """Worker-side input resolution: map a ref, pass a table through."""
    if isinstance(source, TableRef):
        return Table.from_ref(source)
    return source


def ship_result(
    table: Table, token: str, partition: int, attempt: int, simulate_exhaustion: bool = False
):
    """Worker-side result shipping: segment in, ref out.

    Returns the :class:`TableRef` to send over the pipe, or the table
    itself when shared memory is unusable for this payload — columns the
    arena cannot encode, *or* the arena itself failing (``shm_open``
    refused, ``/dev/shm`` full → ``ENOSPC``). Either way the per-payload
    pickle fallback keeps the attempt alive: exhaustion degrades transport
    efficiency, never correctness. ``simulate_exhaustion`` is the
    fault-injection hook (:class:`~repro.parallel.faults.FaultPlan` kind
    ``"shm"``): it raises the same ``ENOSPC`` a full arena would, routed
    through the same fallback path.
    """
    name = result_segment_name(token, partition, attempt)
    try:
        if simulate_exhaustion:
            raise OSError(errno.ENOSPC, "injected shared-memory exhaustion")
        return table.to_ref(segment_name=name, keep_open=False)
    except (SchemaError, OSError) as exc:
        _LOG.warning(
            "partition %d attempt %d result cannot use shared memory (%s); "
            "falling back to pickle for this payload",
            partition,
            attempt,
            exc,
        )
        return table


def dispose_result(result) -> None:
    """Release the segment behind a discarded worker result.

    Discards happen on three paths — late speculative losers, results
    arriving after the task already succeeded, and validation failures —
    and on each the parent is the last owner standing. Accepts the raw
    ``(seconds, cards, payload)`` tuple in either transported form:
    a not-yet-mapped :class:`TableRef` or an already-mapped table.
    """
    if not (isinstance(result, tuple) and len(result) == 3):
        return
    payload = result[2]
    if isinstance(payload, TableRef):
        release(payload)
    elif isinstance(payload, Table) and payload.backing_ref is not None:
        release(payload.backing_ref)


def sweep_results(token: str, attempts_per_partition: Iterable[int], keep: Set[str]) -> int:
    """Reap every result segment of a finished run except ``keep``.

    ``attempts_per_partition[p]`` is how many attempts partition ``p``
    launched; with deterministic names, that ledger enumerates every
    segment any worker *may* have created — including workers that died
    before delivering their ref. Reaping is idempotent, so segments that
    were already consumed-and-released, or never created, cost one failed
    ``shm_open`` each. Returns the number of orphans actually removed.
    """
    reaped = 0
    for partition, attempts in enumerate(attempts_per_partition):
        for attempt in range(attempts):
            name = result_segment_name(token, partition, attempt)
            if name in keep:
                continue
            if reap(name):
                _LOG.info(
                    "reaped orphaned result segment %s (partition %d attempt %d)",
                    name,
                    partition,
                    attempt,
                )
                reaped += 1
    return reaped


def release_refs(refs_or_names: Iterable) -> None:
    """Release a collection of refs / segment names (parent-side cleanup)."""
    for item in refs_or_names:
        release(item)
