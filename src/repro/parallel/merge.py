"""Merging partition outputs back into one answer.

Two merge modes, trading exactness of *reproduction* against shuffle size:

* **row merge** (:func:`merge_rows`) — concatenate the partition outputs of
  the precursor and restore the exact serial row order by sorting on the
  lineage columns. The serial aggregation then runs over a byte-identical
  input, so estimates match a serial run bit-for-bit (including
  floating-point summation order). This mirrors shipping sampled rows to a
  single downstream vertex, which is cheap precisely because the samplers
  already shrank the data (the paper's argument for why sampled plans keep
  their wins through the shuffle).

* **partial-aggregate merge** (:func:`partial_aggregate` /
  :func:`merge_partials` / :func:`finalize_partial`) — each worker reduces
  its partition to per-group partial states; the parent merges states by
  group value and finalizes. This is the classic two-phase aggregation a
  cluster would run. All Horvitz-Thompson components are additive:

  - SUM/COUNT (and their IF forms): Σ w·y and the variance term
    Σ (w² − w)·y² add across partitions;
  - AVG: numerator, denominator (Σ w) and the delta-method covariance
    terms all add;
  - MIN/MAX: combine by min/max;
  - COUNT DISTINCT: the union of per-partition (group, value) sets
    deduplicates exactly;
  - universe-sampler variance couples rows sharing a key-subspace value
    (Section B.1: Var = (1−p)/p² Σ_v (Σ_{i∈v} y_i)²), so the partial state
    keeps the *inner* sums per (group, universe value) and squares them
    only after merging — partitions may split a universe value.

  Estimates agree with the serial run up to floating-point reassociation;
  group order follows first appearance across partitions (sort downstream
  if order matters).

Sketches keep their own merge laws (error slacks add; the union's k minima
are the k minima of the unions): :func:`merge_heavy_hitters` and
:func:`merge_kmv` fold them across partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algebra.aggregates import AggKind
from repro.algebra.logical import Aggregate
from repro.engine.operators import (
    CI_SUFFIX,
    Z_95,
    _grouped_max,
    _grouped_min,
    _grouped_sum,
    _per_row_contribution,
    group_codes,
)
from repro.engine.table import Table
from repro.errors import PlanError

__all__ = [
    "merge_rows",
    "PartialAggregate",
    "partial_aggregate",
    "merge_partials",
    "finalize_partial",
    "inflate_selection_cis",
    "merge_heavy_hitters",
    "merge_kmv",
]

#: Reserved column for the distinct-value member of a (group, value) pair.
_VALUE = "__value__"


def merge_rows(tables: Sequence[Table], name: Optional[str] = None) -> Table:
    """Union partition outputs, restoring exact serial row order.

    Lineage column names sort into pre-order scan order (significance
    order), and every plan operator below the aggregate emits rows in
    lexicographic lineage order, so one lexsort on the lineage columns of
    the concatenation reproduces the serial stream exactly.
    """
    if not tables:
        raise PlanError("merge_rows needs at least one partition output")
    if len(tables) == 1:
        # Single survivor: its rows are already the whole stream (modulo the
        # lineage sort below) — skip the concat copy. With the shm transport
        # this keeps the answer a zero-copy view until materialization.
        merged = tables[0] if name is None else tables[0].rename_columns({}, name=name)
    else:
        merged = Table.concat(tables, name=name or tables[0].name)
    lineage = merged.lineage_column_names()
    if lineage:
        merged = merged.sort_by(lineage)
    return merged


# -- partial aggregation --------------------------------------------------------


@dataclass
class PartialAggregate:
    """Mergeable per-partition aggregation state (one row per group)."""

    group_by: Tuple[str, ...]
    weighted: bool
    #: Group-key columns, one entry per group (empty dict for scalars).
    keys: Dict[str, np.ndarray] = field(default_factory=dict)
    #: (alias, tag) -> per-group component values. Tags: ``est``, ``var``,
    #: ``num``, ``varnum``, ``cov`` (additive), ``min``/``max`` (combine by
    #: min/max). Alias ``""`` holds shared components: ``n`` (row count),
    #: ``wsum`` (Σ w), ``wvar`` (Σ w² − w).
    comps: Dict[Tuple[str, str], np.ndarray] = field(default_factory=dict)
    #: COUNT DISTINCT state: alias -> columns of unique (group, value) pairs
    #: (group-key columns plus ``__value__``).
    distinct: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    #: Universe-variance state: one row per (group, universe value) pair.
    universe_pairs: Optional[Dict[str, np.ndarray]] = None
    #: alias -> per-pair Σ y (aligned with ``universe_pairs`` rows).
    universe_ysums: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_groups(self) -> int:
        for arr in self.comps.values():
            return len(arr)
        return 0


def _first_appearance_codes(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray, int]:
    """Group codes renumbered in order of first appearance (the serial
    aggregate's group emission order)."""
    codes, first_index, num_groups = group_codes(arrays)
    order = np.argsort(first_index)
    remap = np.empty(num_groups, dtype=np.int64)
    remap[order] = np.arange(num_groups)
    return remap[codes], first_index[order], num_groups


_SUM_LIKE = (AggKind.SUM, AggKind.COUNT, AggKind.SUM_IF, AggKind.COUNT_IF)


def partial_aggregate(
    table: Table,
    aggregate: Aggregate,
    compute_ci: bool = False,
    universe_variance: Optional[Tuple[Tuple[str, ...], float]] = None,
) -> PartialAggregate:
    """Reduce one partition's precursor output to mergeable state."""
    weighted = table.has_weights()
    weights = table.weights()
    n = table.num_rows

    if aggregate.group_by:
        key_arrays = [table.column(k) for k in aggregate.group_by]
        if n:
            codes, first_index, num_groups = _first_appearance_codes(key_arrays)
            keys = {k: arr[first_index] for k, arr in zip(aggregate.group_by, key_arrays)}
        else:
            codes = np.zeros(0, dtype=np.int64)
            num_groups = 0
            keys = {k: arr for k, arr in zip(aggregate.group_by, key_arrays)}
    else:
        codes = np.zeros(n, dtype=np.int64)
        num_groups = 1  # scalar aggregates always emit one group
        keys = {}

    state = PartialAggregate(group_by=tuple(aggregate.group_by), weighted=weighted, keys=keys)
    comps = state.comps
    comps[("", "n")] = np.bincount(codes, minlength=num_groups).astype(np.float64)
    comps[("", "wsum")] = _grouped_sum(codes, num_groups, weights)
    if compute_ci and weighted:
        comps[("", "wvar")] = _grouped_sum(codes, num_groups, weights * weights - weights)

    universe_values = None
    if universe_variance is not None and compute_ci and weighted:
        ucols, _ = universe_variance
        present = [c for c in ucols if table.has_column(c)]
        if present:
            universe_values = present
            pair_codes, pair_first, pair_groups = _first_appearance_codes(
                [codes] + [table.column(c) for c in present]
            )
            state.universe_pairs = {}
            if aggregate.group_by:
                state.universe_pairs = {
                    k: arr[pair_first] for k, arr in zip(aggregate.group_by, key_arrays)
                }
            for c in present:
                state.universe_pairs[c] = table.column(c)[pair_first]

    for agg in aggregate.aggs:
        alias = agg.alias
        if agg.kind in _SUM_LIKE:
            y = _per_row_contribution(agg, table)
            comps[(alias, "est")] = _grouped_sum(codes, num_groups, weights * y)
            if compute_ci and weighted:
                if universe_values is not None:
                    state.universe_ysums[alias] = _grouped_sum(pair_codes, pair_groups, y)
                else:
                    comps[(alias, "var")] = _grouped_sum(
                        codes, num_groups, (weights * weights - weights) * y * y
                    )
        elif agg.kind is AggKind.AVG:
            y = np.asarray(agg.expr.evaluate(table), dtype=np.float64)
            comps[(alias, "num")] = _grouped_sum(codes, num_groups, weights * y)
            if compute_ci and weighted:
                comps[(alias, "varnum")] = _grouped_sum(
                    codes, num_groups, (weights * weights - weights) * y * y
                )
                comps[(alias, "cov")] = _grouped_sum(
                    codes, num_groups, (weights * weights - weights) * y
                )
        elif agg.kind is AggKind.MIN:
            values = np.asarray(agg.expr.evaluate(table), dtype=np.float64)
            comps[(alias, "min")] = _grouped_min(codes, num_groups, values)
        elif agg.kind is AggKind.MAX:
            values = np.asarray(agg.expr.evaluate(table), dtype=np.float64)
            comps[(alias, "max")] = _grouped_max(codes, num_groups, values)
        elif agg.kind is AggKind.COUNT_DISTINCT:
            values = np.asarray(agg.expr.evaluate(table))
            pair_arrays = ([table.column(k) for k in aggregate.group_by]
                           if aggregate.group_by else []) + [values]
            if n:
                _, pfirst, _ = group_codes(pair_arrays)
                pfirst = np.sort(pfirst)
            else:
                pfirst = np.zeros(0, dtype=np.int64)
            pairs = {k: arr[pfirst] for k, arr in zip(aggregate.group_by, pair_arrays)}
            pairs[_VALUE] = values[pfirst]
            state.distinct[alias] = pairs
        else:
            raise PlanError(f"unknown aggregate kind {agg.kind}")
    return state


def _merge_keyed(
    parts: List[Dict[str, np.ndarray]], key_names: Sequence[str]
) -> Tuple[Dict[str, np.ndarray], List[np.ndarray], int]:
    """Concatenate keyed dicts; return merged keys, per-part group codes and
    the merged group count (first-appearance order across parts)."""
    arrays = [np.concatenate([p[k] for p in parts]) for k in key_names]
    codes, first_index, num_groups = _first_appearance_codes(arrays)
    keys = {k: arr[first_index] for k, arr in zip(key_names, arrays)}
    lengths = [len(next(iter(p.values()))) if p else 0 for p in parts]
    splits = np.cumsum(lengths)[:-1]
    return keys, list(np.split(codes, splits)), num_groups


def merge_partials(partials: Sequence[PartialAggregate]) -> PartialAggregate:
    """Fold per-partition states into one global state."""
    partials = [p for p in partials if p is not None]
    if not partials:
        raise PlanError("merge_partials needs at least one partial state")
    first = partials[0]
    merged = PartialAggregate(
        group_by=first.group_by, weighted=any(p.weighted for p in partials)
    )

    if first.group_by:
        merged.keys, codes_per_part, num_groups = _merge_keyed(
            [p.keys for p in partials], first.group_by
        )
    else:
        codes_per_part = [np.zeros(p.num_groups, dtype=np.int64) for p in partials]
        num_groups = 1

    for comp in first.comps:
        _, tag = comp
        stacked = np.concatenate([p.comps[comp] for p in partials])
        codes = np.concatenate(codes_per_part)
        if tag == "min":
            merged.comps[comp] = _grouped_min(codes, num_groups, stacked)
        elif tag == "max":
            merged.comps[comp] = _grouped_max(codes, num_groups, stacked)
        else:
            merged.comps[comp] = _grouped_sum(codes, num_groups, stacked)

    for alias in first.distinct:
        key_names = list(first.group_by) + [_VALUE]
        pair_keys, _, _ = _merge_keyed([p.distinct[alias] for p in partials], key_names)
        merged.distinct[alias] = pair_keys

    if first.universe_pairs is not None:
        key_names = list(first.universe_pairs.keys())
        pair_keys, pair_codes, pair_groups = _merge_keyed(
            [p.universe_pairs for p in partials], key_names
        )
        merged.universe_pairs = pair_keys
        codes = np.concatenate(pair_codes)
        for alias in first.universe_ysums:
            stacked = np.concatenate([p.universe_ysums[alias] for p in partials])
            merged.universe_ysums[alias] = _grouped_sum(codes, pair_groups, stacked)
    return merged


def _codes_against(
    ref: Dict[str, np.ndarray], other: Dict[str, np.ndarray], key_names: Sequence[str]
) -> np.ndarray:
    """Dense codes of ``other`` rows in terms of ``ref``'s row order."""
    if not key_names:
        return np.zeros(len(next(iter(other.values()), np.zeros(0))), dtype=np.int64)
    n_ref = len(ref[key_names[0]])
    combined = []
    for k in key_names:
        common = np.result_type(ref[k].dtype, other[k].dtype)
        combined.append(np.concatenate([ref[k].astype(common), other[k].astype(common)]))
    codes, _, num = group_codes(combined)
    mapping = np.full(num, -1, dtype=np.int64)
    mapping[codes[:n_ref]] = np.arange(n_ref)
    out = mapping[codes[n_ref:]]
    if (out < 0).any():
        raise PlanError("partial state references a group absent from the merged keys")
    return out


def finalize_partial(
    state: PartialAggregate,
    aggregate: Aggregate,
    compute_ci: bool = False,
    universe_rescale: Optional[Dict[str, float]] = None,
    universe_variance: Optional[Tuple[Tuple[str, ...], float]] = None,
    name: str = "merged_agg",
) -> Table:
    """Turn a (merged) partial state into the aggregate's output table."""
    universe_rescale = universe_rescale or {}
    comps = state.comps
    num_groups = state.num_groups
    n_rows = comps[("", "n")]
    weight_sum = comps[("", "wsum")]
    empty_scalar = not state.group_by and float(n_rows.sum()) == 0.0

    out: Dict[str, np.ndarray] = {k: v for k, v in state.keys.items()}
    universe_p = universe_variance[1] if universe_variance is not None else None

    for agg in aggregate.aggs:
        alias = agg.alias
        variance: Optional[np.ndarray] = None
        if agg.kind in _SUM_LIKE:
            estimate = comps[(alias, "est")]
            if alias in state.universe_ysums and universe_p is not None:
                pair_codes = _codes_against(state.keys, state.universe_pairs, state.group_by)
                sums = state.universe_ysums[alias]
                variance = np.zeros(num_groups)
                np.add.at(
                    variance,
                    pair_codes,
                    (1.0 - universe_p) / (universe_p * universe_p) * sums * sums,
                )
            elif (alias, "var") in comps:
                variance = comps[(alias, "var")]
        elif agg.kind is AggKind.AVG:
            numerator = comps[(alias, "num")]
            with np.errstate(invalid="ignore", divide="ignore"):
                estimate = np.where(weight_sum > 0, numerator / weight_sum, np.nan)
            if (alias, "varnum") in comps:
                var_num = comps[(alias, "varnum")]
                var_den = comps[("", "wvar")]
                cov = comps[(alias, "cov")]
                with np.errstate(invalid="ignore", divide="ignore"):
                    ratio = estimate
                    variance = np.where(
                        weight_sum > 0,
                        (var_num - 2 * ratio * cov + ratio * ratio * var_den)
                        / (weight_sum * weight_sum),
                        np.nan,
                    )
                variance = np.maximum(variance, 0.0)
            if empty_scalar:
                estimate = np.asarray([np.nan])
        elif agg.kind in (AggKind.MIN, AggKind.MAX):
            tag = "min" if agg.kind is AggKind.MIN else "max"
            estimate = comps[(alias, tag)]
            if empty_scalar:
                estimate = np.asarray([np.nan])
        elif agg.kind is AggKind.COUNT_DISTINCT:
            pairs = state.distinct[alias]
            pair_codes = _codes_against(state.keys, pairs, state.group_by)
            raw = np.bincount(pair_codes, minlength=num_groups).astype(np.float64)
            factor = universe_rescale.get(alias, 1.0)
            estimate = raw * factor
            if compute_ci and state.weighted and factor > 1.0:
                p = 1.0 / factor
                variance = raw * (1.0 - p) / (p * p)
        else:
            raise PlanError(f"unknown aggregate kind {agg.kind}")
        out[alias] = np.asarray(estimate, dtype=np.float64)
        if compute_ci:
            if variance is None or empty_scalar:
                variance = np.zeros(num_groups)
            out[alias + CI_SUFFIX] = Z_95 * np.sqrt(np.maximum(variance, 0.0))

    return Table(name, out)


# -- weighted-selection CI inflation --------------------------------------------


def inflate_selection_cis(
    table: Table,
    aggregate: Aggregate,
    payloads: Sequence[Table],
    inclusions: Sequence[float],
) -> Table:
    """Widen CI columns by the between-partition selection variance.

    The row-level HT variance Σ (w² − w)·y² assumes independent per-row
    inclusion, but weighted partition selection includes or excludes whole
    partitions at once. With folded weights (w₀/π) the unbiased extra term
    for a SUM-like aggregate is Σ_{p∈S, π_p<1} (1 − π_p)·T̂²_{p,g}, where
    T̂_{p,g} is partition p's folded total for group g. CIs widen to
    sqrt(ci² + z²·var_extra).

    Best-effort by design: only SUM/COUNT (and IF forms) have an additive
    per-partition total, and alignment needs the group-by keys to survive
    into the answer — anything else is returned untouched.
    """
    targets = [
        agg
        for agg in aggregate.aggs
        if agg.kind in _SUM_LIKE
        and table.has_column(agg.alias)
        and table.has_column(agg.alias + CI_SUFFIX)
    ]
    group_by = tuple(aggregate.group_by)
    if not targets or any(not table.has_column(k) for k in group_by):
        return table

    extra = {agg.alias: np.zeros(table.num_rows) for agg in targets}
    if group_by:
        answer_keys = [table.column(k) for k in group_by]
        row_of = {
            tuple(arr[i] for arr in answer_keys): i for i in range(table.num_rows)
        }
    for payload, pi in zip(payloads, inclusions):
        if pi >= 1.0 or payload.num_rows == 0:
            continue
        weights = payload.weights()
        if group_by:
            key_cols = [payload.column(k) for k in group_by]
            codes, first_index, num_groups = group_codes(key_cols)
            rows = [
                row_of.get(tuple(arr[j] for arr in key_cols)) for j in first_index
            ]
            for agg in targets:
                totals = _grouped_sum(
                    codes, num_groups, weights * _per_row_contribution(agg, payload)
                )
                slot = extra[agg.alias]
                for g, row in enumerate(rows):
                    if row is not None:
                        slot[row] += (1.0 - pi) * totals[g] * totals[g]
        else:
            for agg in targets:
                total = float(np.sum(weights * _per_row_contribution(agg, payload)))
                extra[agg.alias] += (1.0 - pi) * total * total

    widened = {}
    for agg in targets:
        ci_col = agg.alias + CI_SUFFIX
        old = np.asarray(table.column(ci_col), dtype=np.float64)
        widened[ci_col] = np.sqrt(old * old + Z_95 * Z_95 * extra[agg.alias])
    return table.with_columns(widened)


# -- sketch folds ---------------------------------------------------------------


def merge_heavy_hitters(sketches):
    """Fold per-partition heavy-hitter sketches (error slacks add)."""
    return reduce(lambda a, b: a.merge(b), sketches)


def merge_kmv(counters):
    """Fold per-partition KMV distinct counters (union's k minima)."""
    return reduce(lambda a, b: a.merge(b), counters)
