"""Plan analysis and surgery for partition-parallel execution.

The parallel executor splits a plan into:

* a **precursor** — the largest aggregate-free subtree of scans, selects,
  projects, inner joins and (physical) samplers. This is the data-heavy,
  single-pass part of the plan the paper parallelizes across partitions;
* a **successor** — the aggregation and everything above it, which runs
  once over the merged partition outputs.

``analyze_plan`` finds the split point, decides which scans to partition and
how (see :mod:`repro.parallel.partitioner`), and reports *why* a plan cannot
be parallelized when it can't — the executor then falls back to serial
execution, mirroring the paper's "default option" philosophy (an
inapplicable optimization degrades to the baseline, never to an error).

``build_worker_plan`` rewrites the precursor for one worker: every scan is
pointed at that worker's partition (or broadcast copy) of its input, and
every stateful sampler is replaced by its partition-local spec
(:meth:`SamplerSpec.for_partition`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra.builder import Query
from repro.algebra.logical import (
    Aggregate,
    Join,
    LogicalNode,
    Project,
    SamplerNode,
    Scan,
    Select,
)
from repro.engine.table import Database
from repro.samplers.distinct import DistinctSpec

__all__ = [
    "ScanPartitioning",
    "PlanAnalysis",
    "analyze_plan",
    "build_worker_plan",
    "worker_table_name",
]

#: Scans this small are always broadcast rather than partitioned.
DEFAULT_MIN_PARTITION_ROWS = 4_096

#: Seed for partition-routing hashes (distinct from sampler seeds so the
#: partition layout is independent of sampler decisions).
PARTITION_HASH_SEED = 0x9A77


def worker_table_name(scan_index: int) -> str:
    """Catalog name a worker registers the ``scan_index``-th scan's input
    under. One name per scan occurrence (not per base table), so self-joins
    and repeated dimension scans never collide."""
    return f"__scan{scan_index:03d}__"


@dataclass(frozen=True)
class ScanPartitioning:
    """How one scan's base table is distributed across workers."""

    scan_index: int
    table: str
    mode: str  # "partition-rr" | "partition-hash" | "broadcast"
    hash_columns: Tuple[str, ...] = ()


@dataclass
class PlanAnalysis:
    """Outcome of :func:`analyze_plan`."""

    ok: bool
    reason: str
    strategy: str = "serial-fallback"
    split: Optional[LogicalNode] = None
    aggregate: Optional[Aggregate] = None
    scans: List[ScanPartitioning] = field(default_factory=list)
    #: ids of SamplerNodes whose per-value state is partition-aligned
    #: (the input is hash-partitioned on their own column set).
    aligned_sampler_ids: frozenset = frozenset()

    @property
    def partitioned_tables(self) -> Tuple[str, ...]:
        return tuple(s.table for s in self.scans if s.mode != "broadcast")


_CLEAN_NODES = (Scan, Select, Project, SamplerNode, Join)


def _clean(node: LogicalNode) -> Optional[str]:
    """None if the subtree is partitionable; else the reason it isn't."""
    for sub in node.walk():
        if not isinstance(sub, _CLEAN_NODES):
            return f"operator {type(sub).__name__} is not partition-pure"
        if isinstance(sub, Join) and sub.how != "inner":
            return f"{sub.how}-outer join needs a global view of unmatched rows"
        if isinstance(sub, SamplerNode) and not hasattr(sub.spec, "apply"):
            return "plan still carries logical sampler state (run ASALQA costing first)"
    return None


def _find_split(plan: LogicalNode) -> Tuple[Optional[LogicalNode], Optional[Aggregate], str]:
    """Locate the precursor subtree and the aggregate directly above it."""
    aggregates = [n for n in plan.walk() if isinstance(n, Aggregate)]
    if not aggregates:
        why = _clean(plan)
        if why is None:
            return plan, None, ""
        return None, None, why
    # Bottom-most aggregate: one whose subtree contains no other aggregate.
    for agg in aggregates:
        inner = [n for n in agg.child.walk() if isinstance(n, Aggregate)]
        if inner:
            continue
        why = _clean(agg.child)
        if why is None:
            return agg.child, agg, ""
        return None, None, why
    return None, None, "nested aggregates with no partitionable precursor"


def _trace_to_scan(
    node: LogicalNode, columns: Tuple[str, ...]
) -> Optional[Tuple[Scan, Tuple[str, ...]]]:
    """Follow pass-through columns down to a single scan, if possible.

    Returns the scan and the column names *at the scan* that carry the given
    output columns, or None when the columns are computed, split across
    inputs, or renamed through a non-identity projection.
    """
    if isinstance(node, Scan):
        if set(columns) <= set(node.output_columns()):
            return node, columns
        return None
    if isinstance(node, (Select, SamplerNode)):
        return _trace_to_scan(node.children[0], columns)
    if isinstance(node, Project):
        passthrough = node.identity_passthrough()
        if not all(c in passthrough for c in columns):
            return None
        return _trace_to_scan(node.child, tuple(passthrough[c] for c in columns))
    if isinstance(node, Join):
        left_cols = set(node.left.output_columns())
        if set(columns) <= left_cols:
            return _trace_to_scan(node.left, columns)
        right_cols = set(node.right.output_columns())
        if set(columns) <= right_cols:
            return _trace_to_scan(node.right, columns)
        return None
    return None


def analyze_plan(
    plan,
    database: Database,
    scan_indices: Dict[int, int],
    min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
) -> PlanAnalysis:
    """Decide whether and how to run ``plan`` partition-parallel.

    Strategy preference, mirroring what a cluster optimizer would pick:

    1. **hash on stratification columns** when the precursor carries a
       distinct sampler whose (plain-column) strata trace to one scan — the
       sampler then runs with exact per-stratum state in every worker;
    2. **hash co-partitioning on join keys** when the topmost join's keys
       trace to a scan on both sides and both scans are large (fact-fact);
    3. **round-robin on the largest scan**, broadcasting everything else
       (the fact/dimension star-join layout).
    """
    plan = plan.plan if isinstance(plan, Query) else plan
    if not scan_indices:
        return PlanAnalysis(
            ok=False, reason="a scan appears on both sides of a join (shared node); lineage is ambiguous"
        )

    split, aggregate, why = _find_split(plan)
    if split is None:
        return PlanAnalysis(ok=False, reason=why)

    scans = [n for n in split.walk() if isinstance(n, Scan)]
    if not scans:
        return PlanAnalysis(ok=False, reason="no scans under the aggregate")
    rows = {id(s): database.table(s.table).num_rows for s in scans}
    largest = max(scans, key=lambda s: rows[id(s)])
    if rows[id(largest)] < min_partition_rows:
        return PlanAnalysis(
            ok=False,
            reason=f"largest input ({largest.table}, {rows[id(largest)]} rows) below "
            f"the {min_partition_rows}-row parallel threshold",
        )

    def scan_entry(scan: Scan, mode: str, cols: Tuple[str, ...] = ()) -> ScanPartitioning:
        return ScanPartitioning(scan_indices[id(scan)], scan.table, mode, cols)

    # 1. Stratification-aligned hash partitioning for a distinct sampler.
    for node in split.walk():
        if isinstance(node, SamplerNode) and isinstance(node.spec, DistinctSpec):
            plain = node.spec.plain_column_names()
            if not plain:
                continue
            traced = _trace_to_scan(node.child, plain)
            if traced is None:
                continue
            scan, source_cols = traced
            if rows[id(scan)] < min_partition_rows:
                continue
            entries = [
                scan_entry(s, "partition-hash" if s is scan else "broadcast",
                           source_cols if s is scan else ())
                for s in scans
            ]
            return PlanAnalysis(
                ok=True,
                reason="",
                strategy=f"hash[distinct:{','.join(source_cols)}]",
                split=split,
                aggregate=aggregate,
                scans=entries,
                aligned_sampler_ids=frozenset({id(node)}),
            )

    # 2. Co-partitioned fact-fact join.
    for node in split.walk():
        if not isinstance(node, Join):
            continue
        left_traced = _trace_to_scan(node.left, node.left_keys)
        right_traced = _trace_to_scan(node.right, node.right_keys)
        if left_traced is None or right_traced is None:
            continue
        (lscan, lcols), (rscan, rcols) = left_traced, right_traced
        if lscan is rscan:
            continue
        if min(rows[id(lscan)], rows[id(rscan)]) < min_partition_rows:
            continue
        entries = []
        for s in scans:
            if s is lscan:
                entries.append(scan_entry(s, "partition-hash", lcols))
            elif s is rscan:
                entries.append(scan_entry(s, "partition-hash", rcols))
            else:
                entries.append(scan_entry(s, "broadcast"))
        return PlanAnalysis(
            ok=True,
            reason="",
            strategy=f"hash[join:{','.join(lcols)}={','.join(rcols)}]",
            split=split,
            aggregate=aggregate,
            scans=entries,
        )

    # 3. Round-robin the largest scan, broadcast the rest.
    entries = [
        scan_entry(s, "partition-rr" if s is largest else "broadcast") for s in scans
    ]
    return PlanAnalysis(
        ok=True,
        reason="",
        strategy=f"round-robin[{largest.table}]",
        split=split,
        aggregate=aggregate,
        scans=entries,
    )


def build_worker_plan(
    split: LogicalNode,
    scan_indices: Dict[int, int],
    partition_index: int,
    num_partitions: int,
    aligned_sampler_ids: frozenset,
) -> LogicalNode:
    """The precursor as one worker runs it.

    Scans are retargeted at the worker's catalog (one entry per scan
    occurrence, see :func:`worker_table_name`); samplers are swapped for
    their partition-local specs. Structure is preserved node-for-node so
    pre-order positions still line up with the parent's precursor — that is
    what lets the parent merge per-node cardinalities back in.
    """

    def rebuild(node: LogicalNode) -> LogicalNode:
        if isinstance(node, Scan):
            return Scan(worker_table_name(scan_indices[id(node)]), node.output_columns())
        children = [rebuild(child) for child in node.children]
        if isinstance(node, SamplerNode):
            spec = node.spec.for_partition(
                partition_index, num_partitions, aligned=id(node) in aligned_sampler_ids
            )
            return SamplerNode(children[0], spec)
        return node.with_children(children)

    return rebuild(split)
