"""Plan analysis and surgery for partition-parallel execution.

The parallel executor splits a plan into:

* a **precursor** — the largest aggregate-free subtree of scans, selects,
  projects, inner joins and (physical) samplers. This is the data-heavy,
  single-pass part of the plan the paper parallelizes across partitions;
* a **successor** — the aggregation and everything above it, which runs
  once over the merged partition outputs.

``analyze_plan`` finds the split point, decides which scans to partition and
how (see :mod:`repro.parallel.partitioner`), and reports *why* a plan cannot
be parallelized when it can't — the executor then falls back to serial
execution, mirroring the paper's "default option" philosophy (an
inapplicable optimization degrades to the baseline, never to an error).

Everything is identified by stable structural addresses
(:mod:`repro.algebra.addressing`), never by object identity: a Scan object
shared between both sides of a self-join is two distinct *occurrences* with
two addresses, two lineage columns and two worker catalog entries, and the
analysis stays valid across process boundaries.

``build_worker_plan`` rewrites the precursor for one worker: every scan is
pointed at that worker's partition (or broadcast copy) of its input, and
every stateful sampler is replaced by its partition-local spec
(:meth:`SamplerSpec.for_partition`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra.addressing import NodeAddress, scan_ordinals, walk_with_addresses
from repro.algebra.builder import Query
from repro.algebra.logical import (
    Aggregate,
    Join,
    LogicalNode,
    Project,
    SamplerNode,
    Scan,
    Select,
)
from repro.engine.table import Database
from repro.samplers.distinct import DistinctSpec

__all__ = [
    "ScanPartitioning",
    "PlanAnalysis",
    "analyze_plan",
    "build_worker_plan",
    "worker_table_name",
]

#: Scans this small are always broadcast rather than partitioned.
DEFAULT_MIN_PARTITION_ROWS = 4_096

#: Seed for partition-routing hashes (distinct from sampler seeds so the
#: partition layout is independent of sampler decisions).
PARTITION_HASH_SEED = 0x9A77


def worker_table_name(scan_index: int) -> str:
    """Catalog name a worker registers the ``scan_index``-th scan's input
    under. One name per scan occurrence (not per base table), so self-joins
    and repeated dimension scans never collide."""
    return f"__scan{scan_index:03d}__"


@dataclass(frozen=True)
class ScanPartitioning:
    """How one scan occurrence's base table is distributed across workers."""

    #: Absolute address of this scan occurrence in the submitted plan.
    address: NodeAddress
    #: Pre-order scan ordinal (lineage column / worker catalog slot).
    scan_index: int
    table: str
    mode: str  # "partition-rr" | "partition-hash" | "broadcast"
    hash_columns: Tuple[str, ...] = ()


@dataclass
class PlanAnalysis:
    """Outcome of :func:`analyze_plan`."""

    ok: bool
    reason: str
    strategy: str = "serial-fallback"
    split: Optional[LogicalNode] = None
    #: Absolute address of the precursor root in the submitted plan.
    split_address: NodeAddress = ()
    aggregate: Optional[Aggregate] = None
    #: Absolute address of the aggregate directly above the precursor.
    aggregate_address: Optional[NodeAddress] = None
    scans: List[ScanPartitioning] = field(default_factory=list)
    #: Precursor-relative addresses of SamplerNodes whose per-value state is
    #: partition-aligned (the input is hash-partitioned on their own columns).
    aligned_sampler_addresses: frozenset = frozenset()
    #: Precursor-relative scan address -> pre-order scan ordinal of the
    #: submitted plan (what names lineage columns and worker tables).
    split_scan_ordinals: Dict[NodeAddress, int] = field(default_factory=dict)

    @property
    def partitioned_tables(self) -> Tuple[str, ...]:
        return tuple(s.table for s in self.scans if s.mode != "broadcast")


_CLEAN_NODES = (Scan, Select, Project, SamplerNode, Join)


def _clean(node: LogicalNode) -> Optional[str]:
    """None if the subtree is partitionable; else the reason it isn't."""
    for sub in node.walk():
        if not isinstance(sub, _CLEAN_NODES):
            return f"operator {type(sub).__name__} is not partition-pure"
        if isinstance(sub, Join) and sub.how != "inner":
            return f"{sub.how}-outer join needs a global view of unmatched rows"
        if isinstance(sub, SamplerNode) and not hasattr(sub.spec, "apply"):
            return "plan still carries logical sampler state (run ASALQA costing first)"
    return None


def _find_split(
    plan: LogicalNode,
) -> Tuple[Optional[LogicalNode], NodeAddress, Optional[Aggregate], Optional[NodeAddress], str]:
    """Locate the precursor subtree (with address) and the aggregate above it."""
    aggregates = [
        (address, node)
        for address, node in walk_with_addresses(plan)
        if isinstance(node, Aggregate)
    ]
    if not aggregates:
        why = _clean(plan)
        if why is None:
            return plan, (), None, None, ""
        return None, (), None, None, why
    # Bottom-most aggregate: one whose subtree contains no other aggregate.
    for address, agg in aggregates:
        inner = [n for n in agg.child.walk() if isinstance(n, Aggregate)]
        if inner:
            continue
        why = _clean(agg.child)
        if why is None:
            return agg.child, address + (0,), agg, address, ""
        return None, (), None, None, why
    return None, (), None, None, "nested aggregates with no partitionable precursor"


def _trace_to_scan(
    node: LogicalNode, address: NodeAddress, columns: Tuple[str, ...]
) -> Optional[Tuple[NodeAddress, Scan, Tuple[str, ...]]]:
    """Follow pass-through columns down to a single scan occurrence.

    Returns the scan's address, the scan, and the column names *at the scan*
    that carry the given output columns — or None when the columns are
    computed, split across inputs, or renamed through a non-identity
    projection.
    """
    if isinstance(node, Scan):
        if set(columns) <= set(node.output_columns()):
            return address, node, columns
        return None
    if isinstance(node, (Select, SamplerNode)):
        return _trace_to_scan(node.children[0], address + (0,), columns)
    if isinstance(node, Project):
        passthrough = node.identity_passthrough()
        if not all(c in passthrough for c in columns):
            return None
        return _trace_to_scan(
            node.child, address + (0,), tuple(passthrough[c] for c in columns)
        )
    if isinstance(node, Join):
        left_cols = set(node.left.output_columns())
        if set(columns) <= left_cols:
            return _trace_to_scan(node.left, address + (0,), columns)
        right_cols = set(node.right.output_columns())
        if set(columns) <= right_cols:
            return _trace_to_scan(node.right, address + (1,), columns)
        return None
    return None


def analyze_plan(
    plan,
    database: Database,
    min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
) -> PlanAnalysis:
    """Decide whether and how to run ``plan`` partition-parallel.

    Strategy preference, mirroring what a cluster optimizer would pick:

    1. **hash on stratification columns** when the precursor carries a
       distinct sampler whose (plain-column) strata trace to one scan — the
       sampler then runs with exact per-stratum state in every worker;
    2. **hash co-partitioning on join keys** when the topmost join's keys
       trace to a scan occurrence on both sides and both are large
       (fact-fact);
    3. **round-robin on the largest scan**, broadcasting everything else
       (the fact/dimension star-join layout).
    """
    plan = plan.plan if isinstance(plan, Query) else plan
    ordinals = scan_ordinals(plan)

    split, split_address, aggregate, aggregate_address, why = _find_split(plan)
    if split is None:
        return PlanAnalysis(ok=False, reason=why)

    occurrences = [
        (address, node)
        for address, node in walk_with_addresses(split, split_address)
        if isinstance(node, Scan)
    ]
    if not occurrences:
        return PlanAnalysis(ok=False, reason="no scans under the aggregate")
    rows = {address: database.table(s.table).num_rows for address, s in occurrences}
    largest_address, largest = max(occurrences, key=lambda pair: rows[pair[0]])
    if rows[largest_address] < min_partition_rows:
        return PlanAnalysis(
            ok=False,
            reason=f"largest input ({largest.table}, {rows[largest_address]} rows) below "
            f"the {min_partition_rows}-row parallel threshold",
        )

    relative = len(split_address)
    split_scan_ordinals = {
        address[relative:]: ordinals[address] for address, _ in occurrences
    }

    def scan_entry(
        address: NodeAddress, scan: Scan, mode: str, cols: Tuple[str, ...] = ()
    ) -> ScanPartitioning:
        return ScanPartitioning(address, ordinals[address], scan.table, mode, cols)

    def analysis(strategy: str, entries, aligned=frozenset()) -> PlanAnalysis:
        return PlanAnalysis(
            ok=True,
            reason="",
            strategy=strategy,
            split=split,
            split_address=split_address,
            aggregate=aggregate,
            aggregate_address=aggregate_address,
            scans=entries,
            aligned_sampler_addresses=aligned,
            split_scan_ordinals=split_scan_ordinals,
        )

    # 1. Stratification-aligned hash partitioning for a distinct sampler.
    for address, node in walk_with_addresses(split, split_address):
        if isinstance(node, SamplerNode) and isinstance(node.spec, DistinctSpec):
            plain = node.spec.plain_column_names()
            if not plain:
                continue
            traced = _trace_to_scan(node.child, address + (0,), plain)
            if traced is None:
                continue
            scan_address, _, source_cols = traced
            if rows[scan_address] < min_partition_rows:
                continue
            entries = [
                scan_entry(
                    a,
                    s,
                    "partition-hash" if a == scan_address else "broadcast",
                    source_cols if a == scan_address else (),
                )
                for a, s in occurrences
            ]
            return analysis(
                f"hash[distinct:{','.join(source_cols)}]",
                entries,
                aligned=frozenset({address[relative:]}),
            )

    # 2. Co-partitioned fact-fact join (self-joins included: each occurrence
    # is hash-partitioned on its own key columns, so matching keys meet).
    for address, node in walk_with_addresses(split, split_address):
        if not isinstance(node, Join):
            continue
        left_traced = _trace_to_scan(node.left, address + (0,), node.left_keys)
        right_traced = _trace_to_scan(node.right, address + (1,), node.right_keys)
        if left_traced is None or right_traced is None:
            continue
        (laddr, _, lcols), (raddr, _, rcols) = left_traced, right_traced
        if min(rows[laddr], rows[raddr]) < min_partition_rows:
            continue
        entries = []
        for a, s in occurrences:
            if a == laddr:
                entries.append(scan_entry(a, s, "partition-hash", lcols))
            elif a == raddr:
                entries.append(scan_entry(a, s, "partition-hash", rcols))
            else:
                entries.append(scan_entry(a, s, "broadcast"))
        return analysis(f"hash[join:{','.join(lcols)}={','.join(rcols)}]", entries)

    # 3. Round-robin the largest scan occurrence, broadcast the rest.
    entries = [
        scan_entry(a, s, "partition-rr" if a == largest_address else "broadcast")
        for a, s in occurrences
    ]
    return analysis(f"round-robin[{largest.table}]", entries)


def build_worker_plan(
    split: LogicalNode,
    split_scan_ordinals: Dict[NodeAddress, int],
    partition_index: int,
    num_partitions: int,
    aligned_sampler_addresses: frozenset,
) -> LogicalNode:
    """The precursor as one worker runs it.

    ``split_scan_ordinals`` and ``aligned_sampler_addresses`` are keyed by
    precursor-relative addresses (as produced by :func:`analyze_plan`).
    Scans are retargeted at the worker's catalog (one entry per scan
    occurrence, see :func:`worker_table_name`); samplers are swapped for
    their partition-local specs. Structure is preserved node-for-node, so
    the worker plan's addresses line up with the parent's precursor — that
    is what lets the parent merge per-node cardinalities back in.
    """

    def rebuild(node: LogicalNode, address: NodeAddress) -> LogicalNode:
        if isinstance(node, Scan):
            return Scan(
                worker_table_name(split_scan_ordinals[address]), node.output_columns()
            )
        children = [rebuild(child, address + (i,)) for i, child in enumerate(node.children)]
        if isinstance(node, SamplerNode):
            spec = node.spec.for_partition(
                partition_index, num_partitions, aligned=address in aligned_sampler_addresses
            )
            return SamplerNode(children[0], spec)
        return node.with_children(children)

    return rebuild(split, ())
