"""Seeded fault injection for the parallel execution layer.

A :class:`FaultPlan` decides, per ``(partition, attempt)`` pair, whether a
task execution should misbehave and how:

* ``crash``   — raise before doing any work (a task that dies);
* ``hang``    — sleep ``hang_seconds`` before working (a straggler; in a
  pool with spare capacity the scheduler's speculative duplicate wins);
* ``corrupt`` — complete, but return a payload damaged by the caller's
  corrupter (detected by result validation, charged as a failed attempt);
* ``pickle``  — complete, but return a payload that dies mid-pickle on its
  way back through the process pool's result pipe (in thread/inline modes
  the wrapper itself reaches validation and is rejected there);
* ``shm``     — complete, but have the shared-memory result transport hit
  an injected ``ENOSPC`` (a full ``/dev/shm`` arena); the transport falls
  back to pickling that payload, so the attempt still *succeeds* — this
  fault exercises the fallback, not the retry path (counted by the
  ``transport.shm_fallbacks`` metric).

Plans are deterministic: :meth:`FaultPlan.random` places faults with a
seeded generator, so a chaos run is exactly reproducible from its seed —
which is what lets the chaos suite assert that a crashed-and-retried query
is *bit-identical* to its fault-free run. :meth:`FaultPlan.lose_partition`
makes every attempt of one partition crash, simulating permanent partition
loss (the graceful-degradation trigger).

Used by ``tests/parallel/test_faults.py``, ``benchmarks/bench_chaos.py``
and the ``chaos`` CLI subcommand.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlanError

__all__ = ["FAULT_KINDS", "Fault", "InjectedFault", "UnpicklableResult", "FaultPlan", "corrupt_table"]

FAULT_KINDS = ("crash", "hang", "corrupt", "pickle", "shm")


@dataclass(frozen=True)
class Fault:
    """One injected misbehavior, addressed to a specific task execution."""

    partition: int
    attempt: int
    kind: str
    #: Hang duration (``hang`` faults only).
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise PlanError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")


class InjectedFault(RuntimeError):
    """The exception a ``crash`` fault raises inside a worker.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected crashes
    model arbitrary infrastructure failures, and the task runtime must wrap
    them into structured :class:`~repro.errors.TaskError`\\ s like any other
    foreign exception.
    """


class UnpicklableResult:
    """A result wrapper that dies mid-pickle.

    Returned by ``pickle`` faults: in process mode the worker's result
    serialization raises, surfacing as a failed attempt; in thread/inline
    modes the wrapper reaches the parent intact and is rejected by result
    validation instead.
    """

    def __init__(self, payload):
        self.payload = payload

    def __reduce__(self):
        raise pickle.PicklingError("injected fault: result died mid-pickle")


class FaultPlan:
    """A deterministic schedule of task-level faults.

    ``faults`` may target the same partition on several attempts; lookups
    are by exact ``(partition, attempt)`` pair. Partitions named in
    ``lost_partitions`` crash on *every* attempt — permanent loss.
    """

    def __init__(
        self,
        faults: Sequence[Fault] = (),
        lost_partitions: Sequence[int] = (),
        hang_seconds: float = 0.5,
    ):
        self.hang_seconds = float(hang_seconds)
        self.lost_partitions = frozenset(int(p) for p in lost_partitions)
        self._by_target: Dict[Tuple[int, int], Fault] = {}
        for fault in faults:
            key = (fault.partition, fault.attempt)
            if key in self._by_target:
                raise PlanError(f"duplicate fault for partition {key[0]} attempt {key[1]}")
            self._by_target[key] = fault

    # -- construction ---------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_partitions: int,
        crashes: int = 1,
        hangs: int = 1,
        corruptions: int = 0,
        pickle_bombs: int = 0,
        shm_exhaustions: int = 0,
        hang_seconds: float = 0.5,
        attempts: int = 1,
    ) -> "FaultPlan":
        """Place faults on distinct first-``attempts`` executions, seeded.

        Targets are drawn without replacement over the
        ``num_partitions * attempts`` grid (default: first attempts only, so
        a default retry budget always recovers). Raises if asked for more
        faults than the grid holds.
        """
        total = crashes + hangs + corruptions + pickle_bombs + shm_exhaustions
        slots = num_partitions * max(1, attempts)
        if total > slots:
            raise PlanError(
                f"cannot place {total} faults on {slots} (partition, attempt) slots"
            )
        rng = np.random.default_rng(seed)
        chosen = rng.choice(slots, size=total, replace=False)
        kinds = ["crash"] * crashes + ["hang"] * hangs + ["corrupt"] * corruptions + [
            "pickle"
        ] * pickle_bombs + ["shm"] * shm_exhaustions
        faults = [
            Fault(
                partition=int(slot) % num_partitions,
                attempt=int(slot) // num_partitions,
                kind=kind,
                seconds=hang_seconds if kind == "hang" else 0.0,
            )
            for slot, kind in zip(chosen, kinds)
        ]
        return cls(faults, hang_seconds=hang_seconds)

    @classmethod
    def lose_partition(cls, partition: int, hang_seconds: float = 0.5) -> "FaultPlan":
        """A plan in which one partition fails every attempt it is given."""
        return cls((), lost_partitions=(partition,), hang_seconds=hang_seconds)

    def merged_with(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans (duplicate targets raise)."""
        return FaultPlan(
            list(self._by_target.values()) + list(other._by_target.values()),
            lost_partitions=self.lost_partitions | other.lost_partitions,
            hang_seconds=max(self.hang_seconds, other.hang_seconds),
        )

    # -- lookup / injection ---------------------------------------------------
    @property
    def faults(self) -> Tuple[Fault, ...]:
        return tuple(self._by_target.values())

    @property
    def num_faults(self) -> int:
        return len(self._by_target) + len(self.lost_partitions)

    def fault_for(self, partition: int, attempt: int) -> Optional[Fault]:
        if partition in self.lost_partitions:
            return Fault(partition=partition, attempt=attempt, kind="crash")
        return self._by_target.get((partition, attempt))

    def shm_fault_for(self, partition: int, attempt: int) -> bool:
        """Whether this execution's result transport should hit an injected
        shared-memory ``ENOSPC`` (see :func:`~repro.parallel.transport.ship_result`).
        ``shm`` faults pass through :meth:`before_work`/:meth:`after_work`
        untouched — the work itself is healthy, only the shipping degrades."""
        fault = self.fault_for(partition, attempt)
        return fault is not None and fault.kind == "shm"

    def before_work(self, partition: int, attempt: int) -> None:
        """Apply pre-work faults: ``crash`` raises, ``hang`` straggles."""
        fault = self.fault_for(partition, attempt)
        if fault is None:
            return
        if fault.kind == "crash":
            raise InjectedFault(
                f"injected crash (partition {partition}, attempt {attempt})"
            )
        if fault.kind == "hang":
            time.sleep(fault.seconds or self.hang_seconds)

    def after_work(
        self,
        partition: int,
        attempt: int,
        payload,
        corrupter: Optional[Callable] = None,
    ):
        """Apply post-work faults: damage or booby-trap the payload."""
        fault = self.fault_for(partition, attempt)
        if fault is None:
            return payload
        if fault.kind == "corrupt" and corrupter is not None:
            return corrupter(payload)
        if fault.kind == "pickle":
            return UnpicklableResult(payload)
        return payload

    def summary(self) -> dict:
        counts: Dict[str, int] = {}
        for fault in self._by_target.values():
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        if self.lost_partitions:
            counts["lost-partition"] = len(self.lost_partitions)
        return counts

    def __repr__(self):
        parts = [f"{k}={v}" for k, v in sorted(self.summary().items())]
        return f"FaultPlan({', '.join(parts)})"


def corrupt_table(table):
    """Default corruption for Table payloads: poison the weight column with
    NaN when one exists, else drop the last column — both are caught by the
    parallel executor's structural result validation."""
    from repro.engine.table import WEIGHT_COLUMN

    if table.has_weights():
        bad = np.full(table.num_rows, np.nan)
        return table.with_columns({WEIGHT_COLUMN: bad})
    names = table.column_names
    return table.drop_columns([names[-1]]) if names else table
