"""Input partitioning strategies for partition-parallel execution.

The paper's samplers are "partitionable": running instances on disjoint
partitions of the input and unioning their outputs mimics a single instance
over the whole input (Section 4.1). This module supplies the two partition
layouts the parallel executor uses:

* **round-robin** — rows dealt by position. Balanced, strategy-free; right
  whenever per-row decisions don't depend on co-locating related rows
  (uniform and universe samplers, filters, broadcast joins).
* **hash** — rows routed by a keyed hash of a column set, so equal keys
  always share a partition. Required for co-partitioned (fact-fact) joins
  and for running the distinct sampler with its exact per-stratum state
  (every stratum wholly inside one partition).

Both preserve the reserved columns: Horvitz-Thompson weights (``__w__``)
and row lineage (``__rid*``) ride along with their rows, so the weight
invariant — the weighted sum over any union of partitions equals the
weighted sum over the whole input — holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.engine.table import Table
from repro.errors import PlanError

__all__ = ["Partitioner", "co_partitioners", "ROUND_ROBIN", "HASH"]

ROUND_ROBIN = "round-robin"
HASH = "hash"


@dataclass(frozen=True)
class Partitioner:
    """Splits tables into a fixed number of partitions.

    Parameters
    ----------
    num_partitions:
        Number of output partitions (always exactly this many tables,
        padding with empty partitions when the input is small).
    strategy:
        ``"round-robin"`` or ``"hash"``.
    columns:
        Key column set for the hash strategy (ignored for round-robin).
    seed:
        Hash seed; co-partitioned inputs must share it (and the partition
        count) so equal keys land in the same partition on both sides.
    """

    num_partitions: int
    strategy: str = ROUND_ROBIN
    columns: Tuple[str, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        if self.num_partitions < 1:
            raise PlanError(f"need at least one partition, got {self.num_partitions}")
        if self.strategy not in (ROUND_ROBIN, HASH):
            raise PlanError(f"unknown partition strategy {self.strategy!r}")
        if self.strategy == HASH and not self.columns:
            raise PlanError("hash partitioning requires a key column set")

    def split(self, table: Table) -> List[Table]:
        """Partition ``table`` into exactly ``num_partitions`` tables.

        The union of the partitions is the input: every row appears in
        exactly one partition with all its columns (weights and lineage
        included) unchanged.
        """
        if self.num_partitions == 1:
            return [table]
        by = list(self.columns) if self.strategy == HASH else None
        parts = table.partition(self.num_partitions, by=by, seed=self.seed)
        while len(parts) < self.num_partitions:
            parts.append(table.take(np.zeros(0, dtype=np.int64)))
        return parts

    def assignments(self, table: Table) -> np.ndarray:
        """Per-row partition index (mainly for tests and diagnostics)."""
        if self.strategy == HASH:
            return table.partition_assignments(list(self.columns), self.num_partitions, self.seed)
        return np.arange(table.num_rows, dtype=np.int64) % self.num_partitions

    def describe(self) -> str:
        if self.strategy == HASH:
            return f"hash({','.join(self.columns)})x{self.num_partitions}"
        return f"round-robin x{self.num_partitions}"


def co_partitioners(
    num_partitions: int,
    left_columns: Sequence[str],
    right_columns: Sequence[str],
    seed: int = 0,
) -> Tuple[Partitioner, Partitioner]:
    """A pair of hash partitioners that agree on the key subspace.

    Both sides of an equi-join partitioned with these route any pair of
    matching rows to the same partition index, because the hash is keyed by
    position in the key list, not by column name.
    """
    return (
        Partitioner(num_partitions, HASH, tuple(left_columns), seed),
        Partitioner(num_partitions, HASH, tuple(right_columns), seed),
    )
