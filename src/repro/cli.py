"""Command-line interface.

Usage::

    python -m repro plan q12               # show ASALQA's plan for a query
    python -m repro explain-analyze q07    # annotated operator tree (est vs actual)
    python -m repro evaluate --scale 0.3   # run the TPC-DS evaluation
    python -m repro trace                  # regenerate the Figure 2 analysis
    python -m repro speedup --parallelism 4  # partition-parallel speedup report
    python -m repro chaos --seed 7         # fault-injected run of the workload
    python -m repro validate-trace out.json  # schema-check an exported trace
    python -m repro serve --port 8642      # run the concurrent query service
    python -m repro client q12 --tenant ads  # query a running service
    python -m repro loadgen --sessions 50  # load-test a running service
    python -m repro slo --port 8642        # accuracy calibration + SLO burn report
    python -m repro postmortem postmortems/  # render a flight-recorder bundle
    python -m repro bench-report           # merge BENCH_*.json into one table
    python -m repro stats-catalog build    # materialize the partition-stats catalog

Every data-touching subcommand accepts ``--log-level`` (attach the
``repro`` logger hierarchy to stderr), ``--trace out.json`` (record a
Chrome/Perfetto trace of the whole run) and ``--metrics out.json`` (dump
the executor's metrics registry). The CLI operates on the built-in
TPC-DS-style workload; it exists so a reader can poke at the system
without writing a script.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _wants_stats(args) -> bool:
    """Whether the generated database should carry a partition-stats catalog."""
    return not getattr(args, "no_stats", False)


def _write_metrics(args, executor) -> None:
    """Dump the executor's metrics registry (plus legacy timings) as JSON."""
    path = getattr(args, "metrics", None)
    if not path:
        return
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(executor.snapshot(), fh, indent=2, sort_keys=True, default=str)
    print(f"wrote metrics registry to {path}")


def _cmd_plan(args) -> int:
    from repro.algebra.addressing import format_address, plan_fingerprint, walk_with_addresses
    from repro.engine.executor import Executor
    from repro.optimizer.planner import QuickrPlanner
    from repro.workloads.tpcds import QUERY_BUILDERS, generate_tpcds, query_by_name

    if args.query not in QUERY_BUILDERS:
        print(f"unknown query {args.query!r}; available: {', '.join(QUERY_BUILDERS)}")
        return 2
    db = generate_tpcds(scale=args.scale, seed=args.seed, stats=_wants_stats(args))
    planner = QuickrPlanner(db)
    result = planner.plan(query_by_name(db, args.query))

    print(f"query {args.query}: approximable={result.approximable}")
    print(f"plan fingerprint: {plan_fingerprint(result.plan)}")
    for decision in result.decisions:
        print(f"  {decision.spec!r}  <- {decision.reason} (support {decision.support:.1f})")

    print("\nplan (address  fingerprint  operator):")
    addressed = list(walk_with_addresses(result.plan))
    width = max(len(format_address(a)) for a, _ in addressed)
    for address, node in addressed:
        label = format_address(address).ljust(width)
        print(f"  {label}  {plan_fingerprint(node)[:12]}  {'  ' * len(address)}{node!r}")

    if args.execute:
        executor = Executor(db, parallelism=args.parallelism)
        exact = executor.execute(result.baseline_plan)
        approx = executor.execute(result.plan)
        if approx.parallel is not None:
            print(f"\nparallel execution: {approx.parallel.summary()}")
        gain = exact.cost.machine_hours / max(approx.cost.machine_hours, 1e-9)
        print(f"\nmachine-hours gain: {gain:.2f}x  "
              f"(answer rows {approx.table.num_rows} vs exact {exact.table.num_rows})")
        _write_metrics(args, executor)
    return 0


def _cmd_explain(args) -> int:
    from repro.engine.executor import Executor
    from repro.obs.explain import explain_analyze
    from repro.optimizer.planner import QuickrPlanner
    from repro.workloads.tpcds import QUERY_BUILDERS, generate_tpcds, queries, query_by_name

    db = generate_tpcds(scale=args.scale, seed=args.seed, stats=_wants_stats(args))
    planner = QuickrPlanner(db)
    executor = Executor(db, parallelism=args.parallelism)
    if args.query:
        if args.query not in QUERY_BUILDERS:
            print(f"unknown query {args.query!r}; available: {', '.join(QUERY_BUILDERS)}")
            return 2
        targets = [query_by_name(db, args.query)]
    else:
        targets = queries(db)
    for index, query in enumerate(targets):
        if index:
            print("\n" + "=" * 78 + "\n")
        print(explain_analyze(planner, executor, query))
    _write_metrics(args, executor)
    return 0


def _cmd_validate_trace(args) -> int:
    from repro.obs.trace import iter_trace_file, validate_chrome_trace

    events = list(iter_trace_file(args.path))
    problems = validate_chrome_trace(events)
    if problems:
        print(f"{args.path}: {len(problems)} problem(s) in {len(events)} events")
        for problem in problems[:25]:
            print(f"  - {problem}")
        if len(problems) > 25:
            print(f"  ... and {len(problems) - 25} more")
        return 1
    print(f"{args.path}: {len(events)} events, schema OK, no unclosed spans")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.experiments.figures import figure8a_performance, figure8b_error, table7_sampler_frequency
    from repro.experiments.report import format_table
    from repro.experiments.runner import ExperimentRunner
    from repro.workloads.tpcds import generate_tpcds, queries

    db = generate_tpcds(scale=args.scale, seed=args.seed, stats=_wants_stats(args))
    runner = ExperimentRunner(db, parallelism=args.parallelism)
    outcomes = runner.run_suite(queries(db))

    print(format_table([o.summary() for o in outcomes], title="per-query outcomes"))
    perf = figure8a_performance(outcomes)
    err = figure8b_error(outcomes)
    freq = table7_sampler_frequency(outcomes)
    print(f"\nmedian machine-hours gain: {perf['median']['machine_hours']:.2f}x "
          f"(>2x for {perf['fraction_mh_gain_over_2x']:.0%} of queries)")
    print(f"aggregates within 10%: {err['fraction_within_10pct']:.0%}; "
          f"no missed groups (full answer): {err['fraction_no_missed_groups_full']:.0%}")
    print(f"sampler mix: {', '.join(f'{k} {v:.0%}' for k, v in freq['distribution_across_samplers'].items())}")

    timings = runner.executor.timings()
    cache = timings["plan_cache"]
    print(f"\nplan compilation: {timings['compile_seconds']:.3f}s compile vs "
          f"{timings['execute_seconds']:.3f}s execute "
          f"(plan cache: {cache['hits']} hits / {cache['misses']} misses / "
          f"{cache['evictions']} evictions)")
    fault = timings.get("fault_tolerance")
    if fault:
        print("fault tolerance: "
              f"{fault['tasks']} tasks, {fault['retries']} retries, "
              f"{fault['speculative_wins']}/{fault['speculative_launches']} speculative wins, "
              f"{fault['failed_tasks']} permanently failed, "
              f"{fault['degraded_queries']} degraded quer{'y' if fault['degraded_queries'] == 1 else 'ies'}, "
              f"{fault['serial_reexecutions']} serial re-execution(s)")
        latency = fault.get("task_latency_s")
        if latency:
            print(f"task latency: p50 {latency['p50']:.4f}s, "
                  f"p95 {latency['p95']:.4f}s, max {latency['max']:.4f}s")
    _write_metrics(args, runner.executor)
    return 0


def _cmd_chaos(args) -> int:
    import numpy as np

    from repro.engine.executor import Executor
    from repro.experiments.report import format_table
    from repro.optimizer.planner import QuickrPlanner
    from repro.parallel import FaultPlan, ParallelOptions
    from repro.parallel.tasks import RetryPolicy
    from repro.workloads.tpcds import generate_tpcds, queries

    db = generate_tpcds(scale=args.scale, seed=args.seed, stats=_wants_stats(args))
    planner = QuickrPlanner(db)
    options = ParallelOptions(
        pool=args.pool,
        # Oversubscribe deliberately: on few-core machines the pool would
        # otherwise degenerate to one worker (inline path), and a chaos run
        # exists to exercise the concurrent scheduler — retries in flight,
        # stragglers overlapped by speculative duplicates.
        max_workers=args.parallelism + 1,
        retry=RetryPolicy(backoff_base=0.02, speculation_min_seconds=args.hang_seconds / 2),
        task_seed=args.seed,
    )
    executor = Executor(db, parallelism=args.parallelism, parallel_options=options)
    fleet = executor._parallel_executor()

    rows = []
    mismatches = 0
    for index, query in enumerate(queries(db)):
        planned = planner.plan(query).plan
        # The invariant under test: injected faults never change the
        # answer. The reference is a fault-free run of the *same* parallel
        # configuration (distinct-sampled plans are legitimately not
        # bit-identical to a serial run — the sampler is stream-order
        # stateful — but every configuration is deterministic with itself).
        fleet.options.fault_plan = None
        reference = executor.execute(planned)
        plan = FaultPlan.random(
            seed=args.seed * 1_000 + index,
            num_partitions=args.parallelism,
            crashes=args.crashes,
            hangs=args.hangs,
            corruptions=args.corruptions,
            hang_seconds=args.hang_seconds,
        )
        if args.lose_partition and index % 3 == 0:
            plan = plan.merged_with(FaultPlan.lose_partition(args.parallelism - 1))
        fleet.options.fault_plan = plan
        result = executor.execute(planned)
        metrics = result.parallel

        if result.degraded:
            verdict = f"degraded ({result.coverage:.0%} coverage)"
        elif metrics.strategy == "serial-fallback":
            verdict = "serial re-execution"
        else:
            same = (
                reference.table.column_names == result.table.column_names
                and reference.table.num_rows == result.table.num_rows
                and all(
                    np.array_equal(reference.table.column(c), result.table.column(c))
                    for c in reference.table.column_names
                )
            )
            verdict = "identical" if same else "MISMATCH"
            mismatches += 0 if same else 1
        rows.append(
            {
                "query": query.name,
                "faults": repr(plan)[len("FaultPlan("):-1] or "-",
                "retries": metrics.task_retries,
                "spec": f"{metrics.speculative_wins}/{metrics.speculative_launches}",
                "outcome": verdict,
                "wall_s": f"{metrics.wall_clock_seconds:.3f}",
            }
        )

    print(format_table(rows, title=f"chaos run (D={args.parallelism}, seed={args.seed})"))
    print(f"\ncumulative: {fleet.stats.summary()}")
    _write_metrics(args, executor)
    if mismatches:
        print(f"\n{mismatches} quer{'y' if mismatches == 1 else 'ies'} diverged "
              "from the fault-free reference")
        return 1
    print("\nevery recovered query matched its fault-free run bit-for-bit; "
          "degraded queries returned re-weighted partial answers")
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro.service import (
        AdmissionConfig,
        AuditorConfig,
        GovernorConfig,
        QueryServer,
        QueryService,
        ServiceConfig,
    )
    from repro.workloads.tpcds import generate_tpcds

    weights = {}
    for item in args.tenant_weight or []:
        name, _, value = item.partition("=")
        if not value:
            print(f"bad --tenant-weight {item!r}; expected NAME=WEIGHT")
            return 2
        weights[name] = float(value)

    db = generate_tpcds(scale=args.scale, seed=args.seed, stats=_wants_stats(args))
    config = ServiceConfig(
        num_workers=args.workers,
        admission=AdmissionConfig(
            max_queue_depth=args.max_queue_depth,
            tenant_quota=args.tenant_quota,
            tenant_weights=weights,
        ),
        governor=GovernorConfig(
            enabled=not args.no_governor,
            default_memory_budget_bytes=(
                int(args.memory_budget_mb * 1024 * 1024)
                if args.memory_budget_mb is not None else None
            ),
        ),
        drain_seconds=args.drain_seconds,
        metrics_port=args.metrics_port,
        metrics_host=args.host,
        telemetry_path=args.telemetry,
        telemetry_interval_seconds=args.telemetry_interval,
        postmortem_dir=args.postmortem_dir,
        audit=AuditorConfig(
            enabled=args.audit_fraction > 0,
            sample_fraction=args.audit_fraction,
        ),
        latency_slo_ms=args.latency_slo_ms,
    )
    service = QueryService(db, config)
    server = QueryServer(service, host=args.host, port=args.port)
    server.start()
    print(f"serving TPC-DS scale {args.scale} on {server.address[0]}:{server.address[1]} "
          f"({args.workers} workers, queue depth {args.max_queue_depth}, "
          f"tenant quota {args.tenant_quota}, "
          f"governor {'on' if not args.no_governor else 'off'})", flush=True)
    if service.metrics_address is not None:
        mhost, mport = service.metrics_address
        print(f"metrics: http://{mhost}:{mport}/metrics "
              f"(OpenMetrics; /healthz also served)", flush=True)
    if args.telemetry:
        print(f"telemetry: appending JSONL snapshots to {args.telemetry} "
              f"every {args.telemetry_interval:.1f}s", flush=True)
    if args.postmortem_dir:
        print(f"postmortems: dumping bundles to {args.postmortem_dir}", flush=True)
    if args.audit_fraction > 0:
        print(f"auditor: exact-replaying ~{args.audit_fraction:.0%} of served "
              f"approximate answers in the background", flush=True)

    def _stop(signum, frame):
        print(f"\nsignal {signum}: draining (grace {args.drain_seconds:.1f}s) "
              f"then shutting down", flush=True)
        # stop() drains: new queries get rejected.draining, in-flight ones
        # keep their grace, stragglers are cancelled at the next checkpoint.
        server.stop()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    try:
        while not server.wait(timeout=0.5):
            pass
    finally:
        server.stop()
    summary = service.stats()
    print(f"served {summary['queries']['served']:.0f} quer"
          f"{'y' if summary['queries']['served'] == 1 else 'ies'}, "
          f"rejected {summary['queries']['rejected']:.0f}; "
          f"peak queue depth {summary['admission']['peak_queue_depth']}")
    _write_metrics(args, service.executor)
    return 0


def _cmd_client(args) -> int:
    from repro.errors import AdmissionRejected, GovernanceError, ServiceError
    from repro.service import ServiceClient

    try:
        client = ServiceClient(args.host, args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"cannot connect to {args.host}:{args.port}: {exc}")
        return 1
    with client:
        client.hello(tenant=args.tenant, mode=args.mode)
        if args.shutdown:
            client.shutdown()
            print("server acknowledged shutdown")
            return 0
        if args.stats:
            import json

            print(json.dumps(client.stats(), indent=2, sort_keys=True, default=str))
            return 0
        if not args.query:
            print("nothing to do: pass a query name, --stats or --shutdown")
            return 2
        try:
            reply = client.query(args.query, deadline_ms=args.deadline_ms)
        except AdmissionRejected as exc:
            print(f"rejected ({exc.reason}): {exc}")
            return 3
        except GovernanceError as exc:
            print(f"cancelled ({exc.reason_code}): {exc}")
            return 4
        except ServiceError as exc:
            print(f"error: {exc}")
            return 1
        stats = reply.stats
        print(f"{reply.query} [{reply.mode}] -> {reply.num_rows} rows "
              f"(digest {reply.digest[:12]}…) in {stats.get('execute_ms', 0):.1f} ms "
              f"(+{stats.get('queue_wait_ms', 0):.1f} ms queued, "
              f"cache {'hit' if stats.get('plan_cache_hit') else 'miss'})")
        if reply.table is not None and args.rows:
            for row in list(reply.table.iter_rows())[: args.rows]:
                print("  ", row)
    return 0


def _cmd_loadgen(args) -> int:
    from repro.service import LoadConfig, run_load

    config = LoadConfig(
        sessions=args.sessions,
        queries_per_session=args.queries,
        tenants=tuple(args.tenants.split(",")),
        query_names=args.query_names.split(",") if args.query_names else None,
        mode=args.mode,
        deadline_ms=args.deadline_ms,
        timeout_seconds=args.timeout,
        seed=args.seed,
    )
    report = run_load(args.host, args.port, config)
    summary = report.summary()
    latency = summary["latency_seconds"]

    def _ms(value):
        return f"{value * 1000:.1f} ms" if value is not None else "-"

    print(f"{summary['sessions']} sessions x {args.queries} queries: "
          f"{summary['served']} served ({summary['degraded']} degraded), "
          f"{sum(report.rejected.values())} rejected {summary['rejected'] or ''}, "
          f"{sum(report.cancelled.values())} cancelled {summary['cancelled'] or ''}, "
          f"{summary['errors']} errors, "
          f"{summary['protocol_errors']} protocol errors")
    print(f"throughput {summary['qps']:.2f} qps over {summary['wall_seconds']:.2f}s; "
          f"latency p50 {_ms(latency['p50'])}, p95 {_ms(latency['p95'])}, "
          f"p99 {_ms(latency['p99'])}, max {_ms(latency['max'])}")
    if summary.get("peak_queue_depth") is not None:
        print(f"server peak queue depth {summary['peak_queue_depth']} "
              f"(bound {summary['max_queue_depth']})")
    unstable = {k: v for k, v in summary["distinct_digests_per_query"].items() if v > 1}
    if unstable:
        print(f"WARNING: non-deterministic answers for {unstable}")
    if args.output:
        report.write_json(args.output, mode=args.mode,
                          queries_per_session=args.queries, seed=args.seed)
        print(f"wrote load report to {args.output}")
    if report.protocol_errors or report.errors:
        return 1
    return 0


def _cmd_slo(args) -> int:
    from repro.experiments.report import format_table
    from repro.service import ServiceClient

    try:
        client = ServiceClient(args.host, args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"cannot connect to {args.host}:{args.port}: {exc}")
        return 1
    with client:
        client.hello()
        payload = client.slo()
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0

    calibration = payload.get("calibration") or []
    if calibration:
        nominal = payload.get("nominal_coverage", 0.95)
        rows = [
            {
                "tenant": row["tenant"],
                "sampler": row["sampler_kind"],
                "rung": row["rung"],
                "audits": row["audits"],
                "coverage": (
                    f"{row['observed_coverage']:.1%}"
                    if row["observed_coverage"] is not None else "-"
                ),
                "rel_err mean/max": (
                    f"{row['mean_rel_error']:.4f}/{row['max_rel_error']:.4f}"
                    if row["mean_rel_error"] is not None else "-"
                ),
                "missed groups": (
                    f"{row['groups_missed']}/"
                    f"{row['groups_missed'] + row['groups_matched']}"
                ),
            }
            for row in calibration
        ]
        print(format_table(
            rows,
            title=f"CI calibration vs nominal {nominal:.0%} (exact-replay audits)",
        ))
    else:
        print("no completed audits yet (serve with --audit-fraction > 0 "
              "and send approximate queries)")

    slo = payload.get("slo") or {}
    if slo:
        slo_ms = payload.get("latency_slo_ms")
        target = payload.get("slo_target", 0.99)
        rows = [
            {
                "tenant": tenant,
                "requests": entry["requests"],
                "violations": entry["violations"],
                "cancelled": entry["cancelled"],
                "mean_ms": (
                    entry["mean_latency_ms"]
                    if entry["mean_latency_ms"] is not None else "-"
                ),
                "budget burn": (
                    f"{entry['error_budget_burn']:.2f}x"
                    if entry["error_budget_burn"] is not None else "-"
                ),
            }
            for tenant, entry in sorted(slo.items())
        ]
        bound = f"{slo_ms:.0f} ms bound" if slo_ms is not None else "no latency bound"
        print("\n" + format_table(
            rows, title=f"latency SLO (target {target:.0%}, {bound})"
        ))

    extras = []
    for name in ("auditor", "flight"):
        section = payload.get(name) or {}
        if section:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(section.items()))
            extras.append(f"{name}: {detail}")
    if payload.get("audits_abandoned"):
        extras.append(f"audits abandoned: {payload['audits_abandoned']}")
    if extras:
        print("\n" + "\n".join(extras))
    return 0


def _cmd_postmortem(args) -> int:
    import os

    from repro.obs.flight import render_bundle

    path = args.path
    if os.path.isdir(path) and not os.path.exists(os.path.join(path, "record.json")):
        # A dump directory rather than one bundle: bundle names embed the
        # zero-padded query id, so lexical order is arrival order.
        bundles = sorted(
            os.path.join(path, entry)
            for entry in os.listdir(path)
            if entry.startswith("postmortem-")
        )
        if not bundles:
            print(f"{path}: no postmortem bundles")
            return 1
        if args.list:
            for bundle in bundles:
                print(bundle)
            return 0
        path = bundles[-1]
        print(f"rendering newest of {len(bundles)} bundle(s): {path}\n")
    try:
        print(render_bundle(path))
    except (OSError, ValueError) as exc:
        print(f"cannot render {path}: {exc}")
        return 1
    return 0


def _bench_headline(bench, series) -> str:
    """One-line summary of a bench artifact's series, keyed by producer."""
    if bench == "transport":
        rss = series.get("peak_rss_kb")
        return (f"shuffle speedup {series.get('speedup_shuffle')}x, "
                f"tpc-ds {series.get('speedup_tpcds')}x"
                + (f", peak rss {rss:,} KiB" if rss else ""))
    if bench == "governor":
        runs = series.get("runs") or {}
        parts = [
            f"{label} p99 {entry.get('p99_seconds')}s"
            for label, entry in sorted(runs.items())
            if isinstance(entry, dict)
        ]
        attribution = series.get("selection_attribution") or {}
        if attribution.get("rungs"):
            parts.append(f"{len(attribution['rungs'])} queries rung-attributed")
        return ", ".join(parts) or "-"
    if bench == "prune":
        skip = series.get("selective_skip_fraction")
        credit = series.get("machine_hours_credit_total")
        if skip is None:
            return "-"
        return (f"selective skip {skip:.0%}, "
                f"machine-hours credit {credit:.3f}" if credit is not None
                else f"selective skip {skip:.0%}")
    known = [k for k in ("qps", "served", "rejected", "sessions") if k in series]
    if known:
        return ", ".join(f"{k}={series[k]}" for k in known)
    return f"{len(series)} top-level key(s)"


def _cmd_bench_report(args) -> int:
    import glob as globmod

    from repro.experiments.report import format_table, load_bench

    files = list(args.files) or sorted(globmod.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json artifacts found; pass paths explicitly")
        return 1
    rows = []
    failures = 0
    for path in files:
        try:
            payload = load_bench(path)
        except (OSError, ValueError) as exc:
            rows.append({"file": path, "bench": "ERROR", "schema": "-",
                         "headline": str(exc)})
            failures += 1
            continue
        meta = payload["meta"]
        series = payload["series"] if isinstance(payload["series"], dict) else {}
        rows.append(
            {
                "file": path,
                "bench": meta.get("bench", "?"),
                "schema": meta.get("schema", "-"),
                "headline": _bench_headline(meta.get("bench"), series),
            }
        )
    print(format_table(rows, title="bench artifacts"))
    return 1 if failures else 0


def _cmd_trace(args) -> int:
    from repro.experiments.figures import figure2
    from repro.experiments.report import format_table

    data = figure2(num_queries=args.queries, seed=args.seed)
    print(f"total input: {data['total_pb']:.0f} PB; "
          f"half the cluster time touches {data['pb_at_half_cluster_time']:.1f} PB")
    rows = []
    for metric, paper in data["paper"].items():
        measured = data["measured"][metric]
        rows.append(
            {"metric": metric, **{f"{p}th": f"{measured[p]:.1f} ({paper[p]:g})" for p in (25, 50, 75, 90, 95)}}
        )
    print(format_table(rows, "Figure 2b percentiles: measured (paper)"))
    return 0


def _cmd_bench_transport(args) -> int:
    import multiprocessing as mp

    from repro.experiments.report import format_table
    from repro.experiments.transport import measure_transport, write_report
    from repro.parallel import available_parallelism, transport
    from repro.workloads.tpcds import QUERY_BUILDERS, generate_tpcds

    if "fork" not in mp.get_all_start_methods() or not transport.shm_available():
        print("bench-transport needs fork process workers and POSIX shared memory")
        return 2
    names = args.queries.split(",") if args.queries else None
    if names:
        unknown = [n for n in names if n not in QUERY_BUILDERS]
        if unknown:
            print(f"unknown queries: {', '.join(unknown)}; available: {', '.join(QUERY_BUILDERS)}")
            return 2

    db = generate_tpcds(scale=args.scale, seed=args.seed, stats=_wants_stats(args))
    kwargs = dict(
        degree=args.parallelism,
        repeat=args.repeat,
        shuffle_rows=args.shuffle_rows,
        scale=args.scale,
    )
    if names:
        kwargs["names"] = names
    report = measure_transport(db, **kwargs)

    rows = []
    for r in report["queries"] + [report["shuffle"]]:
        rows.append(
            {
                "query": r["query"],
                "transport": r["transport"],
                "pickle_s": f"{r['seconds_pickle']:.3f}",
                "shm_s": f"{r['seconds_shm']:.3f}",
                "bytes_pickled": f"{r['bytes_pickled']:,}",
                "bytes_on_pipe": f"{r['bytes_on_pipe_shm']:,}",
                "identical": "yes" if r["identical"] else "NO",
            }
        )
    print(format_table(rows, title=f"shm vs pickle transport (D={args.parallelism})"))
    print(
        f"\nspeedup: tpc-ds {report['speedup_tpcds']}x, "
        f"transport-bound shuffle {report['speedup_shuffle']}x; "
        f"peak rss {report['peak_rss_kb']:,} KiB"
    )
    cores = available_parallelism()
    if cores < args.parallelism:
        print(f"note: only {cores} usable core(s); pickle serialization and worker "
              "compute contend for the same core, so the measured ratio is a floor")
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_speedup(args) -> int:
    from repro.engine.executor import Executor
    from repro.experiments.report import format_table
    from repro.optimizer.planner import QuickrPlanner
    from repro.parallel import ParallelOptions, available_parallelism
    from repro.workloads.tpcds import QUERY_BUILDERS, generate_tpcds, queries, query_by_name

    db = generate_tpcds(scale=args.scale, seed=args.seed, stats=_wants_stats(args))
    planner = QuickrPlanner(db)
    if args.query:
        if args.query not in QUERY_BUILDERS:
            print(f"unknown query {args.query!r}; available: {', '.join(QUERY_BUILDERS)}")
            return 2
        targets = [query_by_name(db, args.query)]
    else:
        targets = queries(db)

    options = ParallelOptions(
        pool=args.pool, merge=args.merge, measure_serial_baseline=True
    )
    executor = Executor(db, parallelism=args.parallelism, parallel_options=options)
    rows = []
    for query in targets:
        result = executor.execute(planner.plan(query).plan)
        metrics = result.parallel
        if metrics is None:  # parallelism <= 1 runs the plain serial path
            rows.append(
                {
                    "query": query.name,
                    "strategy": "serial",
                    "pool": "-",
                    "modeled": "1.00x",
                    "measured": "-",
                    "wall_s": "-",
                }
            )
            continue
        measured = metrics.measured_speedup
        rows.append(
            {
                "query": query.name,
                "strategy": metrics.strategy,
                "pool": metrics.pool_mode,
                "modeled": f"{metrics.modeled_speedup:.2f}x",
                "measured": f"{measured:.2f}x" if measured is not None else "-",
                "wall_s": f"{metrics.wall_clock_seconds:.3f}",
            }
        )
    print(format_table(rows, title=f"partition-parallel speedup (D={args.parallelism})"))
    _write_metrics(args, executor)
    cores = available_parallelism()
    if cores < args.parallelism:
        print(f"\nnote: only {cores} usable core(s); measured speedup is "
              "bounded by hardware, modeled speedup shows the cluster-model ceiling")
    return 0


def _cmd_stats_catalog(args) -> int:
    """Build, inspect or validate the partition-statistics catalog."""
    from repro.experiments.report import format_table

    if args.workload == "tpch":
        from repro.workloads.tpch import generate_tpch

        db = generate_tpch(scale=args.scale, seed=args.seed)
    else:
        from repro.workloads.tpcds import generate_tpcds

        db = generate_tpcds(scale=args.scale, seed=args.seed)
    catalog = db.partition_stats
    if catalog is None:
        print("database carries no partition-statistics catalog")
        return 1

    if args.tables:
        tables = [t.strip() for t in args.tables.split(",") if t.strip()]
    else:
        tables = sorted(catalog.cluster_columns) or sorted(db.table_names())
    missing = [t for t in tables if t not in db]
    if missing:
        print(f"unknown table(s): {', '.join(missing)}")
        return 1

    if args.action == "build":
        rows = []
        for name in tables:
            layout = catalog.layout(name, args.partitions)
            rollup = catalog.table_rollup(name, args.partitions)
            summaries = catalog.summaries(name, args.partitions)
            rows.append(
                {
                    "table": name,
                    "layout": layout.kind,
                    "cluster_col": layout.cluster_column or "-",
                    "partitions": len(summaries),
                    "rows": rollup.rows,
                    "MiB": round(rollup.bytes / (1024 * 1024), 2),
                }
            )
        print(format_table(rows, title=f"partition catalog (P={args.partitions})"))
        print(f"built: {len(catalog.built())} (table, partition-count) pair(s)")
        return 0

    if args.action == "inspect":
        for name in tables:
            summaries = catalog.summaries(name, args.partitions)
            layout = catalog.layout(name, args.partitions)
            cluster = layout.cluster_column
            rows = []
            for summary in summaries:
                row = {
                    "partition": summary.partition,
                    "rows": summary.rows,
                    "KiB": round(summary.bytes / 1024, 1),
                }
                if cluster and cluster in summary.columns:
                    col = summary.columns[cluster]
                    row[f"{cluster} min"] = col.min_value
                    row[f"{cluster} max"] = col.max_value
                    row["distinct~"] = col.distinct
                rows.append(row)
            print(format_table(rows, title=f"{name} ({layout.kind})"))
        return 0

    # validate: force summaries to exist, then cross-check against live data.
    for name in tables:
        catalog.summaries(name, args.partitions)
    problems: List[str] = []
    for name in tables:
        problems.extend(catalog.validate(name))
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}")
        print(f"{len(problems)} problem(s) found")
        return 1
    print(f"catalog consistent: {len(tables)} table(s) x {args.partitions} partition(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.obs.log import LEVELS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quickr reproduction: lazy approximation of complex ad-hoc queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every data-touching subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--log-level", default=None, choices=list(LEVELS),
                        help="attach the repro logger hierarchy to stderr at this level")
    common.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome/Perfetto trace of the run to FILE")
    common.add_argument("--metrics", default=None, metavar="FILE",
                        help="write the executor's metrics registry (JSON) to FILE")
    common.add_argument("--no-stats", action="store_true",
                        help="generate the workload database without a partition-"
                             "statistics catalog (disables partition pruning)")

    plan = sub.add_parser("plan", parents=[common],
                          help="show ASALQA's plan for a TPC-DS query")
    plan.add_argument("query", help="query name, e.g. q12")
    plan.add_argument("--scale", type=float, default=0.3)
    plan.add_argument("--seed", type=int, default=1)
    plan.add_argument("--execute", action="store_true", help="also run the plans and report gain")
    plan.add_argument("--parallelism", type=int, default=1,
                      help="degree of partition parallelism for --execute")
    plan.set_defaults(func=_cmd_plan)

    explain = sub.add_parser(
        "explain-analyze", parents=[common],
        help="run a query and render the annotated operator tree "
             "(estimated vs actual rows, sampler telemetry, CI widths)",
    )
    explain.add_argument("query", nargs="?", default=None,
                         help="query name, e.g. q07 (default: all 24)")
    explain.add_argument("--scale", type=float, default=0.3)
    explain.add_argument("--seed", type=int, default=1)
    explain.add_argument("--parallelism", type=int, default=1,
                         help="degree of partition parallelism; >1 also reports "
                              "the partition prune/select decision")
    explain.set_defaults(func=_cmd_explain)

    evaluate = sub.add_parser("evaluate", parents=[common],
                              help="run the full TPC-DS evaluation")
    evaluate.add_argument("--scale", type=float, default=0.3)
    evaluate.add_argument("--seed", type=int, default=1)
    evaluate.add_argument("--parallelism", type=int, default=1,
                          help="degree of partition parallelism for query execution")
    evaluate.set_defaults(func=_cmd_evaluate)

    speedup = sub.add_parser("speedup", parents=[common],
                             help="measure partition-parallel speedup per query")
    speedup.add_argument("--query", default=None, help="single query name (default: all)")
    speedup.add_argument("--scale", type=float, default=0.3)
    speedup.add_argument("--seed", type=int, default=1)
    speedup.add_argument("--parallelism", type=int, default=4)
    speedup.add_argument("--pool", default="auto", choices=["auto", "process", "thread", "inline"])
    speedup.add_argument("--merge", default="rows", choices=["rows", "partial"])
    speedup.set_defaults(func=_cmd_speedup)

    bench_transport = sub.add_parser(
        "bench-transport", parents=[common],
        help="compare shared-memory vs pickle result transport at fixed degree "
             "(per-query wall clock, bytes on the pipe, peak RSS)",
    )
    bench_transport.add_argument("--scale", type=float, default=0.15)
    bench_transport.add_argument("--seed", type=int, default=7)
    bench_transport.add_argument("--parallelism", type=int, default=4)
    bench_transport.add_argument("--repeat", type=int, default=1,
                                 help="timed runs per transport; best is kept")
    bench_transport.add_argument("--queries", default=None,
                                 help="comma-separated query names (default: a "
                                      "transport-heavy subset)")
    bench_transport.add_argument("--shuffle-rows", type=int, default=1_500_000,
                                 help="rows in the transport-bound shuffle microbench")
    bench_transport.add_argument("--out", default="BENCH_exec.json",
                                 help="where to write the JSON report")
    bench_transport.set_defaults(func=_cmd_bench_transport)

    chaos = sub.add_parser(
        "chaos", parents=[common],
        help="run the workload under seeded fault injection (crashes, stragglers, corruption)",
    )
    chaos.add_argument("--scale", type=float, default=0.3)
    chaos.add_argument("--seed", type=int, default=7, help="fault placement + task seed")
    chaos.add_argument("--parallelism", type=int, default=4)
    chaos.add_argument("--pool", default="thread", choices=["auto", "process", "thread", "inline"])
    chaos.add_argument("--crashes", type=int, default=1, help="injected crashes per query")
    chaos.add_argument("--hangs", type=int, default=1, help="injected stragglers per query")
    chaos.add_argument("--corruptions", type=int, default=0,
                       help="injected corrupt results per query")
    chaos.add_argument("--hang-seconds", type=float, default=0.3,
                       help="how long an injected straggler sleeps")
    chaos.add_argument("--lose-partition", action="store_true",
                       help="also permanently lose one partition on every third query "
                            "(exercises graceful degradation)")
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="run the concurrent query service (JSON-line protocol over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--scale", type=float, default=0.3)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads draining the shared run queue")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="bounded run queue; overflow is rejected (backpressure)")
    serve.add_argument("--tenant-quota", type=int, default=16,
                       help="max outstanding queries per tenant")
    serve.add_argument("--drain-seconds", type=float, default=5.0,
                       help="grace given to in-flight queries on SIGTERM/SIGINT "
                            "before their cancellation tokens fire")
    serve.add_argument("--no-governor", action="store_true",
                       help="disable in-flight governance (deadlines, budgets, "
                            "degradation ladder)")
    serve.add_argument("--memory-budget-mb", type=float, default=None,
                       help="per-query cap on live intermediate bytes (MiB); "
                            "over-budget queries degrade down the ladder")
    serve.add_argument("--tenant-weight", action="append", metavar="NAME=WEIGHT",
                       help="weighted round-robin weight for a tenant (repeatable)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve OpenMetrics at /metrics on this port "
                            "(0 picks an ephemeral port)")
    serve.add_argument("--telemetry", default=None, metavar="FILE",
                       help="append a JSONL metrics snapshot to FILE every "
                            "--telemetry-interval seconds")
    serve.add_argument("--telemetry-interval", type=float, default=10.0,
                       help="seconds between telemetry snapshots")
    serve.add_argument("--postmortem-dir", default=None, metavar="DIR",
                       help="dump flight-recorder postmortem bundles (spans, "
                            "decision trail, metrics) for cancelled/failed/"
                            "degraded queries into DIR")
    serve.add_argument("--audit-fraction", type=float, default=0.0,
                       help="fraction of served approximate answers the "
                            "background auditor re-executes exactly to check "
                            "CI calibration (0 disables)")
    serve.add_argument("--latency-slo-ms", type=float, default=None,
                       help="latency SLO bound; served answers over it burn "
                            "the tenant's error budget (see 'repro slo')")
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client", parents=[common],
        help="send one query (or --stats/--shutdown) to a running service",
    )
    client.add_argument("query", nargs="?", default=None, help="query name, e.g. q12")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8642)
    client.add_argument("--tenant", default="default")
    client.add_argument("--mode", default="quickr", choices=["quickr", "exact"])
    client.add_argument("--deadline-ms", type=float, default=None,
                        help="per-query deadline; infeasible queries are rejected")
    client.add_argument("--timeout", type=float, default=60.0)
    client.add_argument("--rows", type=int, default=0,
                        help="print up to N answer rows")
    client.add_argument("--stats", action="store_true", help="print service stats as JSON")
    client.add_argument("--shutdown", action="store_true", help="stop the server")
    client.set_defaults(func=_cmd_client)

    loadgen = sub.add_parser(
        "loadgen", parents=[common],
        help="drive concurrent sessions against a running service and report qps/p50/p99",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8642)
    loadgen.add_argument("--sessions", type=int, default=20)
    loadgen.add_argument("--queries", type=int, default=3,
                         help="queries per session")
    loadgen.add_argument("--tenants", default="alpha,beta,gamma,delta",
                         help="comma-separated tenant names, assigned round-robin")
    loadgen.add_argument("--query-names", default=None,
                         help="comma-separated query subset (default: server's suite)")
    loadgen.add_argument("--mode", default="quickr", choices=["quickr", "exact"])
    loadgen.add_argument("--deadline-ms", type=float, default=None)
    loadgen.add_argument("--timeout", type=float, default=120.0)
    loadgen.add_argument("--seed", type=int, default=1)
    loadgen.add_argument("--output", default=None, metavar="FILE",
                         help="write the machine-readable load report (JSON) to FILE")
    loadgen.set_defaults(func=_cmd_loadgen)

    slo = sub.add_parser(
        "slo",
        help="fetch a running service's accuracy calibration (exact-replay "
             "audits) and latency-SLO error-budget report",
    )
    slo.add_argument("--host", default="127.0.0.1")
    slo.add_argument("--port", type=int, default=8642)
    slo.add_argument("--timeout", type=float, default=30.0)
    slo.add_argument("--json", action="store_true",
                     help="print the raw ledger payload as JSON")
    slo.set_defaults(func=_cmd_slo)

    postmortem = sub.add_parser(
        "postmortem",
        help="render a flight-recorder postmortem bundle (decision trail, "
             "governance ticket, prune footer, span tree)",
    )
    postmortem.add_argument(
        "path",
        help="a bundle directory, its record.json, or the dump dir "
             "(renders the newest bundle)",
    )
    postmortem.add_argument("--list", action="store_true",
                            help="when PATH is a dump dir, list bundles "
                                 "instead of rendering")
    postmortem.set_defaults(func=_cmd_postmortem)

    bench_report = sub.add_parser(
        "bench-report",
        help="merge BENCH_*.json artifacts (shared repro-bench envelope) "
             "into one summary table",
    )
    bench_report.add_argument("files", nargs="*",
                              help="artifact paths (default: ./BENCH_*.json)")
    bench_report.set_defaults(func=_cmd_bench_report)

    stats = sub.add_parser(
        "stats-catalog", parents=[common],
        help="build, inspect or validate the partition-statistics catalog "
             "that drives partition pruning",
    )
    stats.add_argument("action", choices=["build", "inspect", "validate"],
                       help="build: materialize + summarize; inspect: per-partition "
                            "detail; validate: cross-check summaries against data")
    stats.add_argument("--workload", default="tpcds", choices=["tpcds", "tpch"])
    stats.add_argument("--scale", type=float, default=0.3)
    stats.add_argument("--seed", type=int, default=1)
    stats.add_argument("--partitions", type=int, default=8,
                       help="partition count to lay out and summarize")
    stats.add_argument("--tables", default=None,
                       help="comma-separated table subset (default: the "
                            "cluster-column tables)")
    stats.set_defaults(func=_cmd_stats_catalog)

    trace = sub.add_parser("trace", help="regenerate the Figure 2 production-trace analysis")
    trace.add_argument("--queries", type=int, default=20_000)
    trace.add_argument("--seed", type=int, default=2016)
    trace.set_defaults(func=_cmd_trace)

    validate = sub.add_parser(
        "validate-trace",
        help="schema-check an exported Chrome/Perfetto trace "
             "(every event has ph/ts/pid/tid, no unclosed spans)",
    )
    validate.add_argument("path", help="trace file written by --trace")
    validate.set_defaults(func=_cmd_validate_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if getattr(args, "log_level", None):
        from repro.obs.log import configure

        configure(args.log_level)

    trace_path = getattr(args, "trace", None)
    tracer = None
    if trace_path:
        from repro.obs import trace as obs_trace

        tracer = obs_trace.Tracer()
        previous = obs_trace.get_tracer()
        obs_trace.set_tracer(tracer)
    try:
        code = args.func(args)
    finally:
        if tracer is not None:
            obs_trace.set_tracer(previous)
    if tracer is not None:
        count = tracer.write_chrome(trace_path)
        print(f"wrote {count} trace events to {trace_path}")
        unclosed = tracer.unclosed()
        if unclosed:
            print(f"warning: {len(unclosed)} span(s) never closed "
                  f"(first: {unclosed[0].name})")
        problems = obs_trace.validate_chrome_trace(tracer.to_chrome())
        if problems:
            print(f"warning: trace failed schema validation ({problems[0]})")
    return code


if __name__ == "__main__":
    sys.exit(main())
