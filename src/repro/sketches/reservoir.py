"""Bounded reservoir sampling (Vitter's algorithm R).

The distinct sampler (paper Section 4.1.2) keeps a small per-value reservoir
while a value is "early in the probabilistic mode" so those rows can be
flushed later with a correct Horvitz-Thompson weight instead of the biased
weight a naive streaming pass would assign.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

import numpy as np

from repro.errors import SamplerError

__all__ = ["Reservoir"]

T = TypeVar("T")


class Reservoir(Generic[T]):
    """Uniform sample of up to ``capacity`` items from a stream."""

    __slots__ = ("capacity", "_items", "_seen", "_rng")

    def __init__(self, capacity: int, rng: Optional[np.random.Generator] = None):
        if capacity <= 0:
            raise SamplerError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: List[T] = []
        self._seen = 0
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def items_seen(self) -> int:
        return self._seen

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, item: T) -> None:
        """Observe one stream item; keeps each with probability capacity/seen."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            slot = int(self._rng.integers(0, self._seen))
            if slot < self.capacity:
                self._items[slot] = item

    def drain(self) -> List[T]:
        """Return and clear the held items.

        Each item seen so far had inclusion probability
        ``min(1, capacity / items_seen)``; the caller assigns HT weights
        ``items_seen / len(drained)`` accordingly.
        """
        items, self._items = self._items, []
        self._seen = 0
        return items

    def peek(self) -> List[T]:
        return list(self._items)
