"""One-pass, bounded-memory stream summaries used by the samplers and stats."""

from repro.sketches.distinct_count import KMVCounter, exact_distinct, exact_distinct_multi
from repro.sketches.heavy_hitters import DEFAULT_SUPPORT, DEFAULT_TAU, LossyCounter
from repro.sketches.reservoir import Reservoir

__all__ = [
    "KMVCounter",
    "exact_distinct",
    "exact_distinct_multi",
    "DEFAULT_SUPPORT",
    "DEFAULT_TAU",
    "LossyCounter",
    "Reservoir",
]
