"""Manku-Motwani lossy counting for heavy-hitter detection.

The paper's distinct sampler bounds its memory by tracking approximate
frequencies only for heavy hitters (Section 4.1.2): "for an input of size N
and constants s, tau, our sketch identifies values with frequency above
(s +/- tau) N and estimates their frequency to within +/- tau N ... memory
usage is (1/tau) log(tau N)". Quickr uses tau = 1e-4, s = 1e-2.

This module implements the classic lossy-counting algorithm: the stream is
conceptually divided into buckets of width ceil(1/tau); at each bucket
boundary, entries whose (count + error-slack) falls below the bucket index
are evicted. Frequencies are underestimated by at most tau * N.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import SamplerError

__all__ = ["LossyCounter", "DEFAULT_TAU", "DEFAULT_SUPPORT"]

#: Paper defaults (Section 4.1.2): tau = 1e-4, s = 1e-2.
DEFAULT_TAU = 1e-4
DEFAULT_SUPPORT = 1e-2


class LossyCounter:
    """Streaming heavy-hitter sketch with deterministic error bounds.

    Parameters
    ----------
    tau:
        Error parameter: estimated frequencies are within ``tau * N`` of the
        truth, using ``O((1/tau) log(tau N))`` entries.
    support:
        Report threshold ``s``: :meth:`heavy_hitters` returns values whose
        true frequency may exceed ``s * N``.
    """

    def __init__(self, tau: float = DEFAULT_TAU, support: float = DEFAULT_SUPPORT):
        if not 0 < tau < 1:
            raise SamplerError(f"tau must be in (0,1), got {tau}")
        if not 0 < support < 1:
            raise SamplerError(f"support must be in (0,1), got {support}")
        if support < tau:
            raise SamplerError(f"support ({support}) must be >= tau ({tau})")
        self.tau = tau
        self.support = support
        self._bucket_width = math.ceil(1.0 / tau)
        self._current_bucket = 1
        self._seen = 0
        # value -> (count, max undercount when inserted)
        self._entries: Dict[Hashable, Tuple[int, int]] = {}

    @property
    def items_seen(self) -> int:
        return self._seen

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def add(self, value: Hashable, count: int = 1) -> None:
        """Observe ``value`` (optionally ``count`` times at once)."""
        self._seen += count
        if value in self._entries:
            cnt, err = self._entries[value]
            self._entries[value] = (cnt + count, err)
        else:
            self._entries[value] = (count, self._current_bucket - 1)
        boundary = self._current_bucket * self._bucket_width
        if self._seen >= boundary:
            self._compress()
            self._current_bucket = self._seen // self._bucket_width + 1

    def add_many(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.add(value)

    def _compress(self, bucket: int | None = None) -> None:
        if bucket is None:
            bucket = self._current_bucket
        doomed = [v for v, (cnt, err) in self._entries.items() if cnt + err <= bucket]
        for v in doomed:
            del self._entries[v]

    def estimate(self, value: Hashable) -> int:
        """Lower-bound frequency estimate (0 if evicted or never seen)."""
        entry = self._entries.get(value)
        return entry[0] if entry is not None else 0

    def estimate_upper(self, value: Hashable) -> int:
        """Upper-bound frequency estimate (count + insertion-time slack)."""
        entry = self._entries.get(value)
        if entry is None:
            return int(self.tau * self._seen)
        cnt, err = entry
        return cnt + err

    def heavy_hitters(self) -> List[Tuple[Hashable, int]]:
        """Values whose frequency may exceed ``support * N``, with estimates.

        Guarantees: every value with true frequency >= support * N is
        reported; no value with true frequency < (support - tau) * N is.
        """
        threshold = (self.support - self.tau) * self._seen
        out = [(v, cnt) for v, (cnt, err) in self._entries.items() if cnt >= threshold]
        out.sort(key=lambda pair: -pair[1])
        return out

    def is_heavy(self, value: Hashable) -> bool:
        threshold = (self.support - self.tau) * self._seen
        return self.estimate(value) >= threshold

    def merge(self, other: "LossyCounter") -> "LossyCounter":
        """Combine two sketches built over disjoint partitions of a stream.

        Needed for the partitionable execution mode: each parallel sampler
        instance keeps its own sketch and the union must still identify the
        global heavy hitters. Error slacks add — and a value tracked by only
        one input inherits the *other* input's eviction bound (it may have
        occurred up to ``bucket - 1`` times in that stream before being
        evicted), so :meth:`estimate_upper` stays an upper bound after the
        merge.
        """
        if other.tau != self.tau or other.support != self.support:
            raise SamplerError("cannot merge sketches with different parameters")
        merged = LossyCounter(self.tau, self.support)
        merged._seen = self._seen + other._seen
        merged._current_bucket = merged._seen // merged._bucket_width + 1
        slack_self = self._current_bucket - 1
        slack_other = other._current_bucket - 1
        values = list(self._entries)
        values.extend(v for v in other._entries if v not in self._entries)
        for v in values:
            mine = self._entries.get(v)
            theirs = other._entries.get(v)
            cnt = (mine[0] if mine else 0) + (theirs[0] if theirs else 0)
            err = (mine[1] if mine is not None else slack_self) + (
                theirs[1] if theirs is not None else slack_other
            )
            merged._entries[v] = (cnt, err)
        # Evict with the floor(tau * N) threshold, not the (possibly one
        # past) current bucket index: an evicted value's true count must
        # stay coverable by ``estimate_upper``'s tau * N fallback.
        merged._compress(merged._seen // merged._bucket_width)
        return merged

    # -- bulk construction and serialization (partition catalog) -----------------
    @classmethod
    def from_exact_counts(
        cls,
        values: Sequence[Hashable],
        counts: Sequence[int],
        tau: float = DEFAULT_TAU,
        support: float = DEFAULT_SUPPORT,
    ) -> "LossyCounter":
        """Build a sketch from exact per-value counts in one shot.

        The partition catalog already pays for one ``np.unique`` pass per
        column; feeding the exact counts here skips the per-row streaming
        loop. Entries below the ``tau * N`` floor are dropped exactly as the
        streaming eviction would drop them (any evicted value's true count
        is at most ``tau * N``), and survivors carry zero slack.
        """
        sketch = cls(tau, support)
        total = int(np.sum(counts)) if len(counts) else 0
        sketch._seen = total
        sketch._current_bucket = total // sketch._bucket_width + 1
        floor_drop = int(tau * total)
        for value, count in zip(values, counts):
            count = int(count)
            if count > floor_drop:
                key = value.item() if hasattr(value, "item") else value
                sketch._entries[key] = (count, 0)
        return sketch

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot; inverse of :meth:`from_dict`."""
        return {
            "tau": self.tau,
            "support": self.support,
            "seen": self._seen,
            "bucket": self._current_bucket,
            "entries": [[v, cnt, err] for v, (cnt, err) in self._entries.items()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LossyCounter":
        sketch = cls(float(payload["tau"]), float(payload["support"]))
        sketch._seen = int(payload["seen"])
        sketch._current_bucket = int(payload["bucket"])
        sketch._entries = {
            value: (int(cnt), int(err)) for value, cnt, err in payload["entries"]
        }
        return sketch
