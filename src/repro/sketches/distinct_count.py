"""Distinct-value counting: exact (for base-table statistics) and a
Flajolet-Martin style probabilistic counter (for one-pass stat collection
over large streams, following Bar-Yossef et al., "Counting distinct elements
in a data stream").

The catalog (paper Table 2) needs the number of distinct values per
interesting column and column set; the optimizer's C1 support check divides
cardinalities by these counts.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Sequence

import numpy as np

from repro.samplers.hashing import _to_uint64, mix64

__all__ = ["exact_distinct", "exact_distinct_multi", "KMVCounter"]


def exact_distinct(values: np.ndarray) -> int:
    """Exact distinct count of a single column."""
    if len(values) == 0:
        return 0
    return int(len(np.unique(values)))


def exact_distinct_multi(columns: Sequence[np.ndarray]) -> int:
    """Exact distinct count over a tuple of columns (a column set)."""
    if not columns:
        return 0
    n = len(columns[0])
    if n == 0:
        return 0
    stacked = np.rec.fromarrays(columns)
    return int(len(np.unique(stacked)))


class KMVCounter:
    """K-minimum-values distinct count estimator.

    Keeps the ``k`` smallest 64-bit hashes seen; the estimate is
    ``(k - 1) / max_kept_normalized_hash``. Mergeable across partitions
    (take the union's k smallest), so it fits the same streaming,
    partitionable execution mode as the samplers.
    """

    def __init__(self, k: int = 1024, seed: int = 0x5EED):
        self.k = int(k)
        self.seed = int(seed)
        self._hashes: set = set()
        self._max: int = -1

    def add(self, value: Hashable) -> None:
        h = int(mix64(_to_uint64(np.asarray([value])), self.seed)[0])
        if len(self._hashes) < self.k:
            self._hashes.add(h)
            self._max = max(self._max, h)
        elif h < self._max and h not in self._hashes:
            self._hashes.discard(self._max)
            self._hashes.add(h)
            self._max = max(self._hashes)

    def add_many(self, values: Iterable[Hashable]) -> None:
        for value in values:
            self.add(value)

    def add_array(self, values: np.ndarray) -> None:
        """Vectorized, seed-stable bulk insert (one hash pass per distinct
        value; independent of ``PYTHONHASHSEED``, so sketches built in
        different processes agree bit-for-bit). Equivalent to calling
        :meth:`add` on every element."""
        values = np.asarray(values)
        if values.size == 0:
            return
        hashes = mix64(_to_uint64(np.unique(values)), self.seed)
        if hashes.size > self.k:
            hashes = np.partition(hashes, self.k - 1)[: self.k]
        self._hashes.update(int(h) for h in hashes)
        if len(self._hashes) > self.k:
            self._hashes = set(sorted(self._hashes)[: self.k])
        self._max = max(self._hashes) if self._hashes else -1

    @classmethod
    def from_values(
        cls, values: np.ndarray, k: int = 1024, seed: int = 0x5EED
    ) -> "KMVCounter":
        sketch = cls(k, seed)
        sketch.add_array(values)
        return sketch

    def estimate(self) -> int:
        """Estimated number of distinct values observed."""
        count = len(self._hashes)
        if count < self.k:
            return count
        # k-th smallest normalized hash ~ k / D for D distinct values.
        normalized = self._max / float(2**64)
        if normalized <= 0:
            return count
        return int(round((self.k - 1) / normalized))

    def merge(self, other: "KMVCounter") -> "KMVCounter":
        if other.k != self.k or other.seed != self.seed:
            raise ValueError("cannot merge KMV counters with different parameters")
        merged = KMVCounter(self.k, self.seed)
        union = sorted(self._hashes | other._hashes)[: self.k]
        merged._hashes = set(union)
        merged._max = union[-1] if union else -1
        return merged

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot; inverse of :meth:`from_dict`."""
        return {"k": self.k, "seed": self.seed, "hashes": sorted(self._hashes)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "KMVCounter":
        sketch = cls(int(payload["k"]), int(payload["seed"]))
        sketch._hashes = {int(h) for h in payload["hashes"]}
        sketch._max = max(sketch._hashes) if sketch._hashes else -1
        return sketch
