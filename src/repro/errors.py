"""Exception hierarchy for the Quickr reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses separate user mistakes (bad queries, unknown columns)
from internal invariant violations (plan corruption).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A column or table reference could not be resolved."""


class PlanError(ReproError):
    """A logical or physical plan is malformed or violates an invariant."""


class ExpressionError(ReproError):
    """An expression is malformed or applied to incompatible operands."""


class SamplerError(ReproError):
    """A sampler was configured with invalid parameters."""


class OptimizerError(ReproError):
    """Query optimization failed or produced an inconsistent plan."""


class CatalogError(ReproError):
    """A table is missing from the catalog or its statistics are stale."""


class WorkloadError(ReproError):
    """A workload generator or query suite was misconfigured."""


class ExecutionError(ReproError):
    """A query failed while executing (as opposed to while planning)."""


class TaskError(ExecutionError):
    """One partition task failed.

    Carries the partition context a raw worker traceback would lose: which
    partition, which attempt, and a short failure kind (``exception``,
    ``validation``, ``result-unpicklable``, ``pool-broken``, ``cancelled``).
    The original exception, when one exists, is attached as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        partition: int | None = None,
        attempt: int | None = None,
        kind: str = "exception",
    ):
        context = []
        if partition is not None:
            context.append(f"partition {partition}")
        if attempt is not None:
            context.append(f"attempt {attempt}")
        prefix = f"[{', '.join(context)}] " if context else ""
        super().__init__(f"{prefix}{message}")
        self.partition = partition
        self.attempt = attempt
        self.kind = kind


class TaskCancelled(ExecutionError):
    """A task attempt observed its cancellation flag and aborted early.

    Raised cooperatively (between plan operators) when a speculative
    duplicate of the same task already won; the scheduler discards the
    attempt rather than counting it as a failure.
    """


class DegradedResultError(ExecutionError):
    """A partition was permanently lost and the query could not complete.

    Raised only after every recovery path failed: retries exhausted, the
    plan does not qualify for sample-aware degradation (no uniform/universe
    sampler root), and the serial re-execution fallback itself errored."""


class GovernanceError(ExecutionError):
    """An in-flight query was stopped by its governance contract.

    Raised cooperatively at morsel/operator/task boundaries when a query's
    :class:`~repro.engine.governance.GovernanceContext` says it must no
    longer run — the client cancelled it, its deadline passed, or it blew
    its memory budget. ``reason_code`` is the short machine-readable cause
    the service puts on the wire (``client-disconnect``, ``deadline``,
    ``budget``, ``shutdown``, ...).
    """

    reason_code = "governed"

    def __init__(self, message: str, reason_code: str | None = None):
        super().__init__(message)
        if reason_code is not None:
            self.reason_code = reason_code


class QueryCancelled(GovernanceError):
    """The query's cancellation token fired (client disconnect, shutdown
    drain, explicit cancel) and execution unwound at the next cooperative
    checkpoint."""

    reason_code = "cancelled"


class DeadlineExceeded(GovernanceError):
    """The query's absolute deadline passed while it was still executing."""

    reason_code = "deadline"


class BudgetExceeded(GovernanceError):
    """The query's live intermediate state exceeded its memory budget."""

    reason_code = "budget"


class ServiceError(ReproError):
    """The query service failed at the protocol or transport layer."""


class ProtocolError(ServiceError):
    """A wire message was malformed (bad framing, missing fields, unknown
    op) — the peer's fault, answered with an error response rather than a
    dropped connection."""


class AdmissionRejected(ServiceError):
    """The admission controller refused a query — explicitly, never by
    hanging.

    ``reason`` is one of ``backpressure`` (the shared run queue is full),
    ``quota`` (the tenant is over its outstanding-query quota) or
    ``deadline`` (the remaining deadline budget cannot cover the query's
    expected runtime, so running it would only waste cluster time).
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason
