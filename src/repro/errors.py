"""Exception hierarchy for the Quickr reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses separate user mistakes (bad queries, unknown columns)
from internal invariant violations (plan corruption).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A column or table reference could not be resolved."""


class PlanError(ReproError):
    """A logical or physical plan is malformed or violates an invariant."""


class ExpressionError(ReproError):
    """An expression is malformed or applied to incompatible operands."""


class SamplerError(ReproError):
    """A sampler was configured with invalid parameters."""


class OptimizerError(ReproError):
    """Query optimization failed or produced an inconsistent plan."""


class CatalogError(ReproError):
    """A table is missing from the catalog or its statistics are stale."""


class WorkloadError(ReproError):
    """A workload generator or query suite was misconfigured."""
