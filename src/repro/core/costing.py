"""Costing sampled expressions: turning logical sampler states into physical
samplers (paper Section 4.2.6).

Quickr uses two high-level simplifications, which we keep:

* sampling probability is never allowed above ``MAX_PROBABILITY = 0.1``
  (otherwise the gain is not worth the risk);
* the error goal is fixed: with high probability miss no groups and keep
  aggregates within +-10% of truth.

Meeting the goal reduces to two checks over the derived statistics at the
sampler's input:

* **C1** — is the stratification requirement S empty, or can some
  probability ``p <= 0.1`` give every distinct value of S at least ``k``
  expected rows? Support is ``rows / NumDV(S) * ds * sfm``.
* **C2** — is the universe requirement U empty?

C1 and C2  -> uniform sampler with the smallest adequate p.
C1 and !C2 -> universe sampler on U (stratification needs are met).
!C1 and C2 -> distinct sampler on S, if there is any data reduction
              (at least ``K_LOW = 3`` rows per stratum).
otherwise  -> pass-through (the query sub-plan is not sampled).

``k = 30`` because ~30 samples make the central-limit confidence intervals
meaningful; the paper's sweep shows plans are stable for k in [5, 100]
(we reproduce that sweep in the ablation benchmarks).

The module also performs the bottom-up *global* pass (Appendix A): paired
universe samplers on the two inputs of a join must end up with identical
columns-count, probability and seed, and nested samplers are forbidden.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra.addressing import format_address
from repro.algebra.logical import LogicalNode, SamplerNode
from repro.core.sampler_state import SamplerState
from repro.obs import trace as obs_trace
from repro.samplers.base import PassThroughSpec, SamplerSpec
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec
from repro.stats.derivation import NodeStats, StatsDeriver

__all__ = ["CostingOptions", "SamplerDecision", "choose_physical", "materialize_plan", "strip_passthrough"]

#: The paper's hard cap on sampling probability.
MAX_PROBABILITY = 0.1

#: Minimum expected rows per answer group (central-limit support), k.
SUPPORT_K = 30

#: Minimum rows per stratum for the distinct sampler to be worthwhile, k_l.
K_LOW = 3


@dataclass(frozen=True)
class CostingOptions:
    """Tunables of the costing pass (defaults are the paper's)."""

    k: int = SUPPORT_K
    max_probability: float = MAX_PROBABILITY
    k_low: int = K_LOW
    min_probability: float = 1e-4
    distinct_reservoir: int = 10
    seed: int = 2016
    #: Target relative error for aggregate values (the paper's +-10%).
    error_target: float = 0.10
    #: z-score for the error target; 1.15 aims for ~80% of aggregates within
    #: the target, matching the paper's reported error profile.
    error_z: float = 1.15
    #: Clamp for the per-column coefficient-of-variation estimate.
    cv_bounds: tuple = (0.5, 2.5)

    def required_rows_per_group(self, value_cv: float) -> float:
        """Samples per group needed for both group coverage (k) and the
        aggregate-value error target: with coefficient of variation cv,
        the relative standard error after n samples is ~ cv / sqrt(n), so
        n >= (z * cv / error_target)^2.

        The paper sizes p purely by k = 30 because at petabyte scale even
        p = 0.1 leaves every group with thousands of rows; at laptop scale
        the variance term binds, so we make the dependence explicit ("if
        the underlying data value has high variance, more support is
        needed", Section 3).
        """
        variance_rows = (self.error_z * value_cv / self.error_target) ** 2
        return max(float(self.k), variance_rows)


@dataclass
class SamplerDecision:
    """Why a seeded sampler became the physical sampler it became."""

    state: SamplerState
    spec: SamplerSpec
    support: float
    c1: bool
    c2: bool
    reason: str


def _support(state: SamplerState, stats: NodeStats, include_optional: bool = True) -> float:
    """Expected rows per distinct value of S reaching the answer.

    Columns that entered S only because of COUNT DISTINCT and that the
    universe requirement covers are excluded: the universe sampler
    estimates those counts exactly by rescaling (Table 8), so they impose
    no stratification burden (Section 4.2.4). With
    ``include_optional=False``, the optionally-added columns (from *IF
    conditions and COUNT DISTINCT, Figure 4) are dropped too — losing them
    widens variance for the conditional aggregates but cannot make answer
    groups disappear.
    """
    if stats.rows <= 0:
        return 0.0
    effective = state.strat_cols - (state.cd_cols & state.univ_cols)
    if not include_optional:
        # COUNT DISTINCT columns stay: dropping them does not merely widen
        # variance, it biases the distinct count downward (a uniform sample
        # simply does not see most values). Only universe sampling on the
        # counted column (handled above) or stratification can prevent that.
        effective = effective - (state.opt_cols - state.cd_cols)
    strata = stats.distinct_independent(effective) if effective else 1.0
    return stats.rows / max(1.0, strata) * state.ds * state.sfm


def _value_cv(state: SamplerState, stats: NodeStats, options: CostingOptions) -> float:
    """Coefficient of variation of the aggregated values, from the catalog.

    The worst (largest) per-column cv among the QVS columns visible at the
    sampler's input; 1.0 when none are visible (e.g. the sampler was pushed
    to the join side that does not carry the aggregated column).
    """
    lo, hi = options.cv_bounds
    best = 1.0
    for column in state.value_cols:
        source = stats.lineage.get(column)
        if source is None or len(source[1]) != 1:
            continue
        table, base_cols = source
        (base_col,) = base_cols
        cv = stats.catalog.value_skew(table, base_col)
        if cv > best:
            best = cv
    return min(hi, max(lo, best))


def choose_physical(
    state: SamplerState,
    stats: NodeStats,
    options: CostingOptions,
    seed: int,
) -> SamplerDecision:
    """Section 4.2.6's check sequence for one sampler."""
    needed_rows = options.required_rows_per_group(_value_cv(state, stats, options))
    support = _support(state, stats)
    c1 = support > 0 and needed_rows / support <= options.max_probability
    if not c1 and state.opt_cols:
        # Retry without the optional stratification columns (Figure 4: *IF
        # and COUNT DISTINCT columns are only optionally added to S).
        relaxed = _support(state, stats, include_optional=False)
        if relaxed > 0 and needed_rows / relaxed <= options.max_probability:
            support = relaxed
            c1 = True
    c2 = not state.univ_cols

    if support <= 0:
        return SamplerDecision(state, PassThroughSpec(), support, c1, c2, "empty input")

    needed_p = needed_rows / support
    p = min(options.max_probability, max(options.min_probability, needed_p))

    if c1 and c2:
        return SamplerDecision(state, UniformSpec(p, seed=seed), support, c1, c2, "C1 and C2: uniform")
    if c1 and not c2:
        if state.dissonant():
            return SamplerDecision(state, PassThroughSpec(), support, c1, c2, "dissonant strat/universe")
        # Under universe sampling the per-group support that matters is the
        # number of distinct *key-subspace values* per group (Proposition 4:
        # a group survives with probability 1 - (1-p)^|G(C)|, and variance
        # scales with the kept key values, not the kept rows). Size p so
        # that p * |G(C)| >= k as well.
        universe_values = stats.distinct(state.univ_cols)
        universe_support = min(universe_values, support)
        if universe_support <= 0 or needed_rows / universe_support > options.max_probability:
            return SamplerDecision(
                state, PassThroughSpec(), support, c1, c2, "too few key-subspace values per group"
            )
        p_univ = min(
            options.max_probability,
            max(options.min_probability, needed_rows / universe_support),
        )
        spec = UniverseSpec(tuple(sorted(state.univ_cols)), p_univ, seed=seed)
        return SamplerDecision(state, spec, support, c1, c2, "C1 only: universe")
    if not c1 and c2:
        # Prefer stratifying on the full requirement; fall back to the
        # required-only subset when the optional columns alone make the
        # strata too numerous for any data reduction.
        # A stratum's kept rows must still reach the answer: downstream
        # selections/joins thin them by ds (and sfm rescales the stratum
        # count), so the frequency floor delta is inflated accordingly —
        # keeping delta rows of which 2% survive protects nothing.
        reach = min(1.0, state.ds * state.sfm)
        effective_delta = int(math.ceil(options.k / max(reach, 1e-6)))
        for columns, label in (
            (state.strat_cols, "C2 only: distinct"),
            (
                state.strat_cols - (state.opt_cols - state.cd_cols),
                "C2 only: distinct (optional strata dropped)",
            ),
        ):
            if not columns:
                continue
            strata = stats.distinct_independent(columns)
            per_stratum = stats.rows / max(1.0, strata) * state.ds * state.sfm
            leak_fraction = effective_delta * strata / max(1.0, stats.rows)
            if per_stratum >= options.k_low and leak_fraction < 0.5:
                spec = DistinctSpec(
                    tuple(sorted(columns)),
                    delta=effective_delta,
                    p=options.max_probability,
                    seed=seed,
                    reservoir_size=options.distinct_reservoir,
                )
                return SamplerDecision(state, spec, support, c1, c2, label)
        return SamplerDecision(state, PassThroughSpec(), support, c1, c2, "no data reduction")
    return SamplerDecision(state, PassThroughSpec(), support, c1, c2, "stratification unmet under universe")


def materialize_plan(
    plan: LogicalNode,
    deriver: StatsDeriver,
    options: Optional[CostingOptions] = None,
) -> Tuple[LogicalNode, List[SamplerDecision]]:
    """Replace every logical sampler state with a physical sampler.

    Performs the bottom-up global pass: members of a universe *family*
    (the two inputs of a join sampled together) receive identical
    probability and seed, and the whole family degrades to pass-through if
    any member cannot be a universe sampler. Nested samplers are
    suppressed by making the outer one a pass-through.
    """
    options = options or CostingOptions()
    decisions: List[SamplerDecision] = []

    # First pass: tentative decisions per sampler, grouped by family.
    samplers: List[Tuple[SamplerNode, SamplerDecision]] = []
    counter = {"next": 0}
    tracer = obs_trace.current_tracer()

    def tentative(node: LogicalNode, path: tuple) -> None:
        for index, child in enumerate(node.children):
            tentative(child, path + (index,))
        if isinstance(node, SamplerNode) and isinstance(node.spec, SamplerState):
            counter["next"] += 1
            seed = options.seed * 1_000_003 + counter["next"]
            decision = choose_physical(node.spec, deriver.stats_for(node.child), options, seed)
            if tracer is not None:
                span = tracer.begin(
                    "asalqa.decision",
                    address=format_address(path),
                    kind=decision.spec.kind,
                    c1=decision.c1,
                    c2=decision.c2,
                    support=round(decision.support, 2),
                    reason=decision.reason,
                )
                tracer.end(span)
            samplers.append((node, decision))

    tentative(plan, ())

    # Family coordination.
    families: Dict[int, List[int]] = {}
    for index, (node, decision) in enumerate(samplers):
        family = node.spec.family
        if family is not None:
            families.setdefault(family, []).append(index)
    for family, members in families.items():
        specs = [samplers[i][1].spec for i in members]
        if len(members) < 2 or not all(isinstance(s, UniverseSpec) for s in specs):
            for i in members:
                node, decision = samplers[i]
                decision.spec = PassThroughSpec()
                decision.reason += " (universe family unsatisfied)"
        else:
            # Every member's probability is the smallest meeting *its* C1
            # bound; the pair must share one p, so take the largest of the
            # lower bounds (still capped at MAX_PROBABILITY by each member).
            shared_p = max(s.p for s in specs)
            shared_seed = options.seed * 7_000_003 + family
            for rank, i in enumerate(members):
                node, decision = samplers[i]
                old = decision.spec
                # The family shares one key subspace; a joined row's
                # inclusion probability is p once, so only the first member
                # emits the 1/p Horvitz-Thompson weight.
                decision.spec = UniverseSpec(
                    old.columns, shared_p, seed=shared_seed, emit_weight=(rank == 0)
                )

    by_key = {id(node): decision for node, decision in samplers}

    # Nested samplers are forbidden (Appendix A). When two samplers end up
    # on the same root-to-leaf path, keep the *deeper* one — it is closer
    # to the input, where gains are largest — and pass the outer through.
    def has_live_sampler_below(node: LogicalNode) -> bool:
        for child in node.children:
            if isinstance(child, SamplerNode) and id(child) in by_key:
                if not isinstance(by_key[id(child)].spec, PassThroughSpec):
                    return True
            if has_live_sampler_below(child):
                return True
        return False

    for node, decision in samplers:
        if not isinstance(decision.spec, PassThroughSpec) and has_live_sampler_below(node):
            decision.spec = PassThroughSpec()
            decision.reason += " (outer of nested pair suppressed)"

    # Final pass: rebuild the tree with the settled physical specs.
    def rebuild(node: LogicalNode) -> LogicalNode:
        if isinstance(node, SamplerNode) and id(node) in by_key:
            decision = by_key[id(node)]
            decisions.append(decision)
            return SamplerNode(rebuild(node.child), decision.spec)
        children = [rebuild(c) for c in node.children]
        return node.with_children(children) if node.children else node

    rebuilt = rebuild(plan)
    return rebuilt, decisions


def strip_passthrough(plan: LogicalNode) -> LogicalNode:
    """Remove pass-through sampler nodes, yielding the clean final plan."""
    if isinstance(plan, SamplerNode) and isinstance(plan.spec, PassThroughSpec):
        return strip_passthrough(plan.child)
    if not plan.children:
        return plan
    return plan.with_children([strip_passthrough(c) for c in plan.children])
