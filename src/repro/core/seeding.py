"""Seeding samplers before aggregations (paper Section 4.2.2, Figure 4).

Each statement with aggregations is conceptually split into a *precursor*
(all joins, selections, UDFs and projections), a *sampler*, and a
*successor* (the aggregations, rewritten as unbiased estimators, plus any
HAVING / ORDER BY / LIMIT). In our plan representation the split is simply
a :class:`~repro.algebra.logical.SamplerNode` inserted between an
``Aggregate`` and its child — the child subtree is the precursor and the
aggregate (later rewritten by :mod:`repro.core.rewrite`) is the successor.

Seeding is optimistic: if the accuracy goal cannot be met, the costing pass
replaces the sampler with a pass-through (Section 4.2.6's default option).

The initial logical state per Figure 4: answer (group-by) columns are added
to the stratification requirement S, columns in *IF conditions and in
COUNT(DISTINCT) are also added (the latter tagged so their overlap with a
future universe requirement is allowed), and ``U = {}``, ``ds = 1``,
``sfm = 1``.
"""

from __future__ import annotations

from typing import Tuple

from repro.algebra.aggregates import AggKind
from repro.algebra.logical import Aggregate, LogicalNode, SamplerNode
from repro.core.sampler_state import SamplerState

__all__ = ["seed_samplers", "initial_state_for"]


def initial_state_for(aggregate: Aggregate) -> SamplerState:
    """The Figure 4 initial sampler state for one aggregation.

    Group-by columns are required stratification. Columns from *IF
    conditions and COUNT(DISTINCT) are *optionally* added (Figure 4):
    stratifying on them corrects conditional skew, but when they would
    make stratification infeasible the costing pass may drop them (they
    only widen variance; they cannot make groups disappear).
    """
    strat = set(aggregate.group_by)
    optional: set = set()
    cd_cols: set = set()
    value_cols: set = set()
    for agg in aggregate.aggs:
        if agg.cond is not None:
            optional |= agg.cond.columns()
        if agg.kind is AggKind.COUNT_DISTINCT and agg.expr is not None:
            cols = agg.expr.columns()
            optional |= cols
            cd_cols |= cols
        elif agg.expr is not None:
            # QVS columns: their value skew decides how much support an
            # aggregate needs for a +-10% answer (Section 4.2.6 costing).
            value_cols |= agg.value_columns()
    return SamplerState(
        strat_cols=frozenset(strat | optional),
        univ_cols=frozenset(),
        ds=1.0,
        sfm=1.0,
        cd_cols=frozenset(cd_cols),
        opt_cols=frozenset(optional - strat),
        value_cols=frozenset(value_cols),
    )


def seed_samplers(plan: LogicalNode) -> Tuple[LogicalNode, int]:
    """Insert a seeded sampler below every sampleable aggregation.

    Returns the new plan and the number of samplers seeded. Aggregations
    containing MIN/MAX (or other non-estimable aggregates) are left alone —
    a sample cannot bound an extreme value, so such queries keep exact
    sub-plans and may end up unapproximable.
    """
    count = 0

    def visit(node: LogicalNode) -> LogicalNode:
        nonlocal count
        new_children = [visit(child) for child in node.children]
        node = node.with_children(new_children) if node.children else node
        if isinstance(node, Aggregate) and not isinstance(node.child, SamplerNode):
            if node.is_sampleable():
                count += 1
                seeded = SamplerNode(node.child, initial_state_for(node))
                return node.with_children([seeded])
        return node

    return visit(plan), count
