"""Sampler push-down transformation rules (paper Sections 4.2.3-4.2.5).

Each rule takes a sampler (its logical state) sitting directly above an
operator and returns alternative subtrees where the sampler has moved below
that operator, with the state adjusted so accuracy is provably no worse
(dominance, Section 4.3) or the loss is accounted for in ``ds``/``sfm``.

* ``push_past_select`` — Figure 5: alternative A1 stratifies additionally
  on the predicate columns (no accuracy loss, possibly less gain);
  alternative A2 keeps the state but scales the downstream selectivity
  (more gain, more risk — priced by the costing pass).
* ``push_past_project`` — Proposition 7: strictly better; sampler columns
  are renamed through the projection (stratification on a computed column
  falls back to its generating columns, which is a finer stratification).
* ``push_past_join`` — Figures 6/7: the ``OneSideHelper`` /
  ``PushSamplerOnOneSide`` / ``PushSamplerOntoBothSides`` pseudocode,
  including the sfm correction when stratification columns are replaced by
  join keys and the introduction of universe requirements when sampling
  both inputs.
* ``push_past_union`` — the sampler clones into every branch.

The second half of the module is **prune-predicate extraction**: turning a
query predicate into per-partition feasibility checks against the summary
statistics of the partition catalog (:mod:`repro.stats.catalog`). The
contract is tri-state collapsed to a sound boolean:
:func:`partition_feasible` returns ``False`` only when *no row of the
partition can possibly satisfy the predicate* — every shape the analysis
does not understand returns ``True`` (retain), so pruning never changes an
answer, it only skips work (Rong et al., §3.1).
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Mapping, Optional

from repro.algebra.expressions import And, Cmp, Col, Expr, IsIn, Lit, Not, Or
from repro.algebra.logical import Join, LogicalNode, Project, SamplerNode, Select, UnionAll
from repro.core.sampler_state import SamplerState
from repro.stats.derivation import StatsDeriver, estimate_selectivity

__all__ = [
    "push_past_select",
    "push_past_project",
    "push_past_join",
    "push_past_union",
    "alternatives_below",
    "prune_conjuncts",
    "partition_feasible",
]

#: Enumerate all subsets of the remaining join keys only up to this size;
#: larger key sets fall back to the two extreme choices (all or none).
MAX_KEY_SUBSET_ENUMERATION = 3


def push_past_select(state: SamplerState, select: Select, deriver: StatsDeriver) -> List[LogicalNode]:
    """Figure 5: generate A1 (stratify on predicate columns) and A2 (scale ds)."""
    predicate_cols = frozenset(select.predicate.columns())
    child = select.child
    alternatives: List[LogicalNode] = []
    missing = predicate_cols - state.strat_cols

    if not missing:
        # Already stratified on every predicate column: pushing is free.
        pushed = SamplerNode(child, state)
        return [Select(pushed, select.predicate)]

    # A1: add the predicate columns to the stratification requirement.
    a1_state = state.with_strat(missing)
    if not a1_state.dissonant():
        alternatives.append(Select(SamplerNode(child, a1_state), select.predicate))

    # A2: keep the requirement, penalize downstream selectivity. When some
    # predicate columns are already stratified the answer loses less, so the
    # penalty shrinks accordingly (the paper's heuristic in Section 4.2.3).
    selectivity = estimate_selectivity(select.predicate, deriver.stats_for(child))
    exponent = len(missing) / max(1, len(predicate_cols))
    a2_state = state.scaled_ds(selectivity**exponent)
    if not a2_state.dissonant() and not (state.univ_cols & predicate_cols):
        alternatives.append(Select(SamplerNode(child, a2_state), select.predicate))
    elif not a2_state.dissonant() and _small_overlap(state.univ_cols, predicate_cols):
        # Rule V2: universe samplers may cross a select only when the
        # predicate barely touches the universe columns.
        alternatives.append(Select(SamplerNode(child, a2_state), select.predicate))
    return alternatives


def _small_overlap(left: frozenset, right: frozenset) -> bool:
    overlap = left & right
    if not overlap:
        return True
    return len(overlap) < min(len(left), len(right))


def push_past_project(state: SamplerState, project: Project, deriver: StatsDeriver) -> List[LogicalNode]:
    """Proposition 7: push below a projection, renaming sampler columns.

    Universe columns must be pure renames (hash inputs have to be the exact
    key values). Stratification on a computed column falls back to the
    columns that generated it — a finer stratification, hence no worse.
    """
    mapping = project.mapping
    new_strat = set()
    for name in state.strat_cols:
        expr = mapping.get(name)
        if expr is None:
            return []
        if isinstance(expr, Col):
            new_strat.add(expr.name)
        else:
            inputs = expr.columns()
            if not inputs:
                continue  # stratifying on a constant is vacuous
            new_strat |= inputs
    new_univ = set()
    for name in state.univ_cols:
        expr = mapping.get(name)
        if not isinstance(expr, Col):
            return []
        new_univ.add(expr.name)
    new_cd = set()
    for name in state.cd_cols:
        expr = mapping.get(name)
        if isinstance(expr, Col):
            new_cd.add(expr.name)
    new_opt = set()
    for name in state.opt_cols:
        expr = mapping.get(name)
        if expr is None:
            continue
        if isinstance(expr, Col):
            new_opt.add(expr.name)
        else:
            new_opt |= expr.columns()
    new_value = set()
    for name in state.value_cols:
        expr = mapping.get(name)
        if expr is None:
            continue
        if isinstance(expr, Col):
            new_value.add(expr.name)
        else:
            new_value |= expr.columns()
    from dataclasses import replace

    new_state = replace(
        state,
        strat_cols=frozenset(new_strat),
        univ_cols=frozenset(new_univ),
        cd_cols=frozenset(new_cd) & frozenset(new_strat),
        opt_cols=frozenset(new_opt) & frozenset(new_strat),
        value_cols=frozenset(new_value),
    )
    if new_state.dissonant():
        return []
    return [Project(SamplerNode(project.child, new_state), mapping)]


def push_past_union(state: SamplerState, union: UnionAll, deriver: StatsDeriver) -> List[LogicalNode]:
    """Clone the sampler into every union branch (schemas are identical)."""
    return [UnionAll([SamplerNode(child, state) for child in union.children])]


# -- join rules (Figure 7 pseudocode) -------------------------------------------

def _project_colset(columns: frozenset, source_keys, target_keys) -> frozenset:
    """ProjectColSet: replace columns named in ``source_keys`` with the
    positionally-corresponding names in ``target_keys``."""
    mapping = dict(zip(source_keys, target_keys))
    return frozenset(mapping.get(c, c) for c in columns)


def _prepare_univ_col(univ: frozenset, keys: frozenset) -> Optional[frozenset]:
    """PrepareUnivCol: universe sampling below a join is possible only when
    there is no prior universe requirement or it coincides with the keys."""
    if not univ or univ == keys:
        return keys
    return None


def _one_side_helper(
    state: SamplerState,
    left: LogicalNode,
    right: LogicalNode,
    left_keys,
    right_keys,
    univ_left: frozenset,
    deriver: StatsDeriver,
) -> List[SamplerState]:
    """OneSideHelper: states for a sampler on ``left`` replacing the sampler
    above ``left JOIN right``."""
    left_stats = deriver.stats_for(left)
    right_stats = deriver.stats_for(right)
    left_cols = set(left.output_columns())

    # The join following the (pushed) sampler filters the sampled rows: a
    # left row survives only if the (possibly filtered) right side matches.
    # That reduction reaches the answer, so it scales the downstream
    # selectivity. Fan-out joins (selectivity > 1) are conservatively
    # clamped: ds in the paper only ever shrinks.
    dv_l = max(1.0, left_stats.distinct(left_keys))
    dv_r = max(1.0, right_stats.distinct(_project_colset(frozenset(left_keys), left_keys, right_keys)))
    join_rows = left_stats.rows * right_stats.rows / max(dv_l, dv_r)
    join_selectivity = min(1.0, join_rows / max(1.0, left_stats.rows))

    # Normalize stratification columns into left-side names.
    s_full = _project_colset(state.strat_cols, right_keys, left_keys)
    s_left = frozenset(s_full & left_cols)
    cd_left = _project_colset(state.cd_cols, right_keys, left_keys) & s_full
    opt_left = _project_colset(state.opt_cols, right_keys, left_keys) & s_full
    value_left = frozenset(
        _project_colset(state.value_cols, right_keys, left_keys) & left_cols
    )
    sfm = state.sfm

    missing_strats = s_full - s_left
    missing_keys = frozenset(left_keys) - s_left
    if missing_strats and missing_keys:
        # Replace unavailable stratification columns with the join keys and
        # correct the support estimate: stratifying store_sales on
        # sold_date_sk instead of d_year overstates the number of strata by
        # ~365x, making per-group support look ~365x smaller than it is, so
        # sfm goes *up* by the distinct-count ratio (Section 4.2.4 prose;
        # the ratio is keys-over-replaced-columns, capped by the key count
        # actually present on the right side).
        key_distinct = min(
            left_stats.distinct(missing_keys),
            right_stats.distinct(_project_colset(missing_keys, left_keys, right_keys)),
        )
        replaced_distinct = max(1.0, right_stats.distinct(missing_strats))
        sfm = sfm * max(1.0, key_distinct) / replaced_distinct
        s_left = s_left | frozenset(left_keys)

    remaining_keys = frozenset(left_keys) - s_left
    if len(remaining_keys) <= MAX_KEY_SUBSET_ENUMERATION:
        subsets = [frozenset(c) for r in range(len(remaining_keys) + 1)
                   for c in itertools.combinations(sorted(remaining_keys), r)]
    else:
        subsets = [frozenset(), remaining_keys]

    from dataclasses import replace

    alternatives: List[SamplerState] = []
    for chosen in subsets:
        skipped = remaining_keys - chosen
        ds = state.ds * join_selectivity
        if skipped:
            dv_left = max(1.0, left_stats.distinct(skipped))
            dv_right = max(
                1.0,
                right_stats.distinct(_project_colset(skipped, left_keys, right_keys)),
            )
            ds = ds / dv_left * min(dv_left, dv_right)
        candidate = replace(
            state,
            strat_cols=s_left | chosen,
            univ_cols=univ_left,
            sfm=sfm,
            ds=ds,
            cd_cols=frozenset(cd_left & (s_left | chosen)),
            opt_cols=frozenset(opt_left & (s_left | chosen)),
            value_cols=value_left,
        )
        if candidate.dissonant():
            continue
        alternatives.append(candidate)
    return alternatives


def push_past_join(
    state: SamplerState,
    join: Join,
    deriver: StatsDeriver,
    family_of: Callable[[Join], int],
) -> List[LogicalNode]:
    """Figures 6/7: push a sampler below one or both inputs of an equi-join."""
    alternatives: List[LogicalNode] = []
    left, right = join.left, join.right
    left_cols = set(left.output_columns())
    right_cols = set(right.output_columns())

    # PushSamplerOnOneSide (left, then right by symmetry).
    univ_left = _project_colset(state.univ_cols, join.right_keys, join.left_keys)
    if not (univ_left - left_cols):
        for new_state in _one_side_helper(
            state, left, right, join.left_keys, join.right_keys, univ_left, deriver
        ):
            alternatives.append(join.with_children([SamplerNode(left, new_state), right]))

    univ_right = _project_colset(state.univ_cols, join.left_keys, join.right_keys)
    if not (univ_right - right_cols):
        for new_state in _one_side_helper(
            state, right, left, join.right_keys, join.left_keys, univ_right, deriver
        ):
            alternatives.append(join.with_children([left, SamplerNode(right, new_state)]))

    # PushSamplerOntoBothSides: requires a shared universe requirement.
    u_left = _prepare_univ_col(univ_left, frozenset(join.left_keys))
    u_right = _prepare_univ_col(
        _project_colset(state.univ_cols, join.left_keys, join.right_keys),
        frozenset(join.right_keys),
    )
    if u_left is not None and u_right is not None and join.how == "inner":
        left_states = _one_side_helper(
            state, left, right, join.left_keys, join.right_keys, u_left, deriver
        )
        right_states = _one_side_helper(
            state, right, left, join.right_keys, join.left_keys, u_right, deriver
        )
        for ls in left_states:
            for rs in right_states:
                family = state.family if state.family is not None else family_of(join)
                from dataclasses import replace

                ls_fam = replace(ls, family=family)
                rs_fam = replace(rs, family=family)
                alternatives.append(
                    join.with_children([SamplerNode(left, ls_fam), SamplerNode(right, rs_fam)])
                )
    return alternatives


def alternatives_below(
    sampler: SamplerNode,
    deriver: StatsDeriver,
    family_of: Callable[[Join], int],
) -> List[LogicalNode]:
    """All one-step push-downs for a sampler node (dispatch by child type)."""
    state = sampler.spec
    if not isinstance(state, SamplerState):
        return []
    child = sampler.child
    if isinstance(child, Select):
        return push_past_select(state, child, deriver)
    if isinstance(child, Project):
        return push_past_project(state, child, deriver)
    if isinstance(child, Join):
        return push_past_join(state, child, deriver, family_of)
    if isinstance(child, UnionAll):
        return push_past_union(state, child, deriver)
    return []


# -- prune-predicate extraction (partition catalog, Rong et al.) ----------------

#: Comparison rewrites for ``lit OP col`` -> ``col OP' lit``.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}

#: Comparison rewrites for ``NOT (col OP lit)`` -> ``col OP' lit``.
_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def prune_conjuncts(predicate: Expr) -> List[Expr]:
    """A predicate as its flat conjunct list (a single-element list when it
    is not a conjunction). Each conjunct prunes independently: a partition
    infeasible for *any* conjunct is infeasible for the whole predicate."""
    if isinstance(predicate, And):
        return predicate.conjuncts()
    return [predicate]


def partition_feasible(predicate: Expr, columns: Mapping[str, object]) -> bool:
    """Can any row of a partition satisfy ``predicate``?

    ``columns`` maps column names to
    :class:`~repro.stats.catalog.ColumnSummary`-shaped objects (``min_value``
    / ``max_value`` / ``null_count`` / ``values``). Returns ``False`` only on
    proof of infeasibility; unknown expression shapes, missing summaries and
    type mismatches all return ``True`` so the partition is retained.
    """
    if isinstance(predicate, And):
        return all(partition_feasible(c, columns) for c in predicate.conjuncts())
    if isinstance(predicate, Or):
        return partition_feasible(predicate.left, columns) or partition_feasible(
            predicate.right, columns
        )
    if isinstance(predicate, Not):
        child = predicate.child
        if isinstance(child, Cmp):
            return partition_feasible(
                Cmp(_NEGATE[child.op], child.left, child.right), columns
            )
        if isinstance(child, IsIn) and isinstance(child.child, Col):
            summary = columns.get(child.child.name)
            if summary is None or summary.values is None:
                return True
            # NOT IN is infeasible only when every present value is listed.
            return not set(summary.values) <= set(child.values)
        return True
    if isinstance(predicate, Cmp):
        return _cmp_feasible(predicate, columns)
    if isinstance(predicate, IsIn):
        return _isin_feasible(predicate, columns)
    return True


def _cmp_feasible(cmp: Cmp, columns: Mapping[str, object]) -> bool:
    left, op, right = cmp.left, cmp.op, cmp.right
    if isinstance(left, Lit) and isinstance(right, Col):
        left, right = right, left
        op = _FLIP[op]
    if not (isinstance(left, Col) and isinstance(right, Lit)):
        return True
    summary = columns.get(left.name)
    if summary is None:
        return True
    value = right.value
    lo, hi = summary.min_value, summary.max_value
    if lo is None:
        # No non-null values: NaN comparisons are all False — except ``!=``,
        # which every null row vacuously satisfies (NumPy semantics).
        return op == "!=" and summary.null_count > 0
    try:
        if op == "==":
            if summary.values is not None:
                return value in set(summary.values)
            return not (value < lo or value > hi)
        if op == "!=":
            if summary.null_count > 0:
                return True  # a NaN row satisfies any inequality
            if summary.values is not None:
                return any(v != value for v in summary.values)
            return not (lo == hi == value)
        if op == "<":
            return bool(lo < value)
        if op == "<=":
            return bool(lo <= value)
        if op == ">":
            return bool(hi > value)
        if op == ">=":
            return bool(hi >= value)
    except TypeError:
        return True  # incomparable literal/column types: retain
    return True


def _isin_feasible(pred: IsIn, columns: Mapping[str, object]) -> bool:
    if not isinstance(pred.child, Col):
        return True
    summary = columns.get(pred.child.name)
    if summary is None:
        return True
    lo, hi = summary.min_value, summary.max_value
    if lo is None:
        return False  # only nulls (or empty): NaN never matches a value list
    if summary.values is not None:
        present = set(summary.values)
        return any(v in present for v in pred.values)
    try:
        return any(not (v < lo or v > hi) for v in pred.values)
    except TypeError:
        return True
