"""Sampling dominance (paper Definition 1, Propositions 5-9).

``E1 => E2`` ("E2 dominates E1") when the two expressions share a core (the
plan with samplers removed) and E2 has no higher estimator variance
(v-dominance) and no higher group-miss probability (c-dominance). Dominance
is transitive across projections, selections and joins (Proposition 1),
which is what lets the accuracy analysis unroll a multi-sampler plan into a
single at-root sampler.

This module provides:

* the rule table (switching rule Prop. 6 and push rules Props. 7-9) as
  introspectable objects — the same names the paper uses (U1..U3, D1..D3,
  V1..V3);
* ``core_of`` — strip samplers to compare plan cores;
* an *empirical* dominance checker that re-executes two sampled plans under
  many seeds and compares measured per-group variance and group coverage.
  This is how the property tests validate the rule table end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.algebra.logical import LogicalNode, SamplerNode
from repro.engine.executor import Executor
from repro.engine.table import Database
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec

__all__ = ["DominanceRule", "RULES", "core_of", "reseed_plan", "EmpiricalDominance", "empirical_dominance"]


@dataclass(frozen=True)
class DominanceRule:
    """One dominance relationship from the paper's rule table."""

    name: str
    statement: str
    proposition: str
    weak: bool = False  # weak dominance (~=>) holds probabilistically for large groups


RULES: Dict[str, DominanceRule] = {
    rule.name: rule
    for rule in [
        DominanceRule(
            "switch-VU",
            "Universe(p, C) => Uniform(p): uniform has no worse variance/coverage",
            "Prop. 6",
        ),
        DominanceRule(
            "switch-UD",
            "Uniform(p) => Distinct(p, C, delta): stratification only helps",
            "Prop. 6",
        ),
        DominanceRule("U1", "Uniform commutes with projection", "Prop. 7"),
        DominanceRule("D1", "Distinct commutes with projection when D is a subset of C", "Prop. 7"),
        DominanceRule("V1", "Universe commutes with projection when D is a subset of C", "Prop. 7"),
        DominanceRule("U2", "Uniform commutes with selection", "Prop. 8"),
        DominanceRule("D2a", "Distinct below a select stratifies additionally on predicate columns", "Prop. 8"),
        DominanceRule("D2b", "Distinct below a select scales delta by 1/selectivity (weak)", "Prop. 8", weak=True),
        DominanceRule("D2c", "Distinct below a select with unchanged state (weak)", "Prop. 8", weak=True),
        DominanceRule("V2", "Universe crosses a select when the overlap with predicate columns is small", "Prop. 8"),
        DominanceRule("U3", "Uniform splits across join inputs with p = p1*p2 (c-dominance)", "Prop. 9"),
        DominanceRule("D3a", "Distinct pushes to one join input, stratifying on the join keys too", "Prop. 9"),
        DominanceRule("D3b", "Distinct pushes to one join input when D is within that input's columns", "Prop. 9"),
        DominanceRule("V3a", "Universe on both join inputs equals universe on the join output", "Prop. 9"),
        DominanceRule("V3b", "Universe pushes to one join input when D is within that input's columns", "Prop. 9"),
    ]
}


def core_of(plan: LogicalNode) -> LogicalNode:
    """The paper's Lambda(E): the expression with all samplers removed."""
    if isinstance(plan, SamplerNode):
        return core_of(plan.child)
    if not plan.children:
        return plan
    return plan.with_children([core_of(c) for c in plan.children])


def reseed_plan(plan: LogicalNode, seed: int) -> LogicalNode:
    """Clone a physical plan with fresh sampler seeds (for Monte-Carlo runs).

    Universe samplers that share a seed (a family) keep sharing the new
    seed, preserving the identical-subspace invariant.
    """
    if isinstance(plan, SamplerNode):
        child = reseed_plan(plan.child, seed)
        spec = plan.spec
        if isinstance(spec, UniformSpec):
            spec = UniformSpec(spec.p, seed=seed + spec.seed)
        elif isinstance(spec, DistinctSpec):
            spec = DistinctSpec(
                spec.columns, spec.delta, spec.p, seed=seed + spec.seed, reservoir_size=spec.reservoir_size
            )
        elif isinstance(spec, UniverseSpec):
            spec = UniverseSpec(spec.columns, spec.p, seed=seed * 1_000_003 + spec.seed, emit_weight=spec.emit_weight)
        return SamplerNode(child, spec)
    if not plan.children:
        return plan
    return plan.with_children([reseed_plan(c, seed) for c in plan.children])


@dataclass
class EmpiricalDominance:
    """Monte-Carlo comparison of two sampled plans with the same core."""

    mean_variance_1: float
    mean_variance_2: float
    miss_rate_1: float
    miss_rate_2: float
    trials: int

    @property
    def v_dominates(self) -> bool:
        """Plan 2 has no worse (estimated) variance than plan 1."""
        tolerance = 0.05 * max(self.mean_variance_1, self.mean_variance_2, 1e-12)
        return self.mean_variance_2 <= self.mean_variance_1 + tolerance

    @property
    def c_dominates(self) -> bool:
        """Plan 2 misses groups no more often than plan 1."""
        return self.miss_rate_2 <= self.miss_rate_1 + 1.0 / self.trials

    @property
    def dominates(self) -> bool:
        return self.v_dominates and self.c_dominates


def _group_estimates(table, group_cols: Tuple[str, ...], value_col: str) -> Dict[tuple, float]:
    out = {}
    for i in range(table.num_rows):
        key = tuple(table.column(c)[i] for c in group_cols)
        out[key] = float(table.column(value_col)[i])
    return out


def empirical_dominance(
    plan1: LogicalNode,
    plan2: LogicalNode,
    database: Database,
    group_cols: Tuple[str, ...],
    value_col: str,
    trials: int = 30,
    seed: int = 0,
) -> EmpiricalDominance:
    """Estimate whether ``plan2`` dominates ``plan1`` by re-executing both
    under ``trials`` independent sampler seeds and measuring per-group
    estimator variance and group coverage against the exact answer."""
    executor = Executor(database)
    exact = executor.execute(core_of(plan1)).table
    truth = _group_estimates(exact, group_cols, value_col)

    def run(plan: LogicalNode) -> Tuple[float, float]:
        per_group: Dict[tuple, List[float]] = {key: [] for key in truth}
        misses = 0
        for trial in range(trials):
            result = executor.execute(reseed_plan(plan, seed + 7919 * (trial + 1))).table
            got = _group_estimates(result, group_cols, value_col)
            for key in truth:
                if key in got:
                    per_group[key].append(got[key])
                else:
                    misses += 1
        variances = [np.var(vals) for vals in per_group.values() if len(vals) > 1]
        mean_var = float(np.mean(variances)) if variances else 0.0
        miss_rate = misses / (trials * max(1, len(truth)))
        return mean_var, miss_rate

    var1, miss1 = run(plan1)
    var2, miss2 = run(plan2)
    return EmpiricalDominance(var1, var2, miss1, miss2, trials)
