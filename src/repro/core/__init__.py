"""Quickr's contribution: ASALQA, sampler states, push-down rules, accuracy."""

from repro.core.accuracy import (
    AccuracyReport,
    UnrolledSampler,
    analyze_plan,
    confidence_interval,
    ht_estimate,
    ht_variance_independent,
    ht_variance_universe,
    miss_probability_distinct,
    miss_probability_uniform,
    miss_probability_universe,
    unroll_plan,
)
from repro.core.asalqa import Asalqa, AsalqaOptions, AsalqaResult
from repro.core.costing import (
    CostingOptions,
    SamplerDecision,
    choose_physical,
    materialize_plan,
    strip_passthrough,
)
from repro.core.dominance import (
    RULES,
    DominanceRule,
    EmpiricalDominance,
    core_of,
    empirical_dominance,
    reseed_plan,
)
from repro.core.rewrite import WeightedAggregate, finalize_plan
from repro.core.sampler_state import SamplerState
from repro.core.seeding import initial_state_for, seed_samplers

__all__ = [
    "AccuracyReport",
    "UnrolledSampler",
    "analyze_plan",
    "confidence_interval",
    "ht_estimate",
    "ht_variance_independent",
    "ht_variance_universe",
    "miss_probability_distinct",
    "miss_probability_uniform",
    "miss_probability_universe",
    "unroll_plan",
    "Asalqa",
    "AsalqaOptions",
    "AsalqaResult",
    "CostingOptions",
    "SamplerDecision",
    "choose_physical",
    "materialize_plan",
    "strip_passthrough",
    "RULES",
    "DominanceRule",
    "EmpiricalDominance",
    "core_of",
    "empirical_dominance",
    "reseed_plan",
    "WeightedAggregate",
    "finalize_plan",
    "SamplerState",
    "initial_state_for",
    "seed_samplers",
]
