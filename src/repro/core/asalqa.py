"""ASALQA — place Appropriate Samplers at Appropriate Locations in the
Query plan, Automatically (paper Section 4.2).

The algorithm, mirroring the paper's structure on top of a Cascades-style
exploration:

1. **Seed** a sampler with its initial logical state before every
   sampleable aggregation (Section 4.2.2).
2. **Explore**: transformation rules repeatedly push samplers toward the
   raw inputs — past projects, selects, joins (one or both sides, possibly
   introducing universe requirements) and unions — generating a space of
   alternative logical plans (Sections 4.2.3-4.2.5). Alternatives are
   de-duplicated structurally and the frontier is capped.
3. **Cost**: each alternative's sampler states are materialized into
   physical samplers via the C1/C2 checks (Section 4.2.6); the global
   universe-agreement and no-nesting requirements are enforced bottom-up
   (Appendix A); the stage-based cluster model prices each physical plan
   using statistics derived from the catalog.
4. **Choose** the cheapest plan whose samplers all satisfy the accuracy
   requirement. If its samplers are all pass-throughs, the query is
   declared *unapproximable* and receives the plan without samplers —
   which happens for roughly a quarter of TPC-DS, as in the paper.
5. **Finalize**: the winning plan's aggregates are rewritten into
   Horvitz-Thompson successors with confidence intervals (Table 8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.algebra.addressing import format_address
from repro.algebra.builder import Query
from repro.algebra.logical import Join, LogicalNode, SamplerNode
from repro.core.costing import CostingOptions, SamplerDecision, materialize_plan, strip_passthrough
from repro.core.pushdown import alternatives_below
from repro.core.rewrite import finalize_plan
from repro.core.sampler_state import SamplerState
from repro.core.seeding import seed_samplers
from repro.engine.costmodel import cost_plan
from repro.engine.metrics import ClusterConfig, PlanCost
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.samplers.base import PassThroughSpec
from repro.stats.catalog import Catalog
from repro.stats.derivation import StatsDeriver

__all__ = ["AsalqaOptions", "AsalqaResult", "Asalqa"]

_LOG = obs_log.logger("core.asalqa")


@dataclass(frozen=True)
class AsalqaOptions:
    """Exploration and costing knobs."""

    max_alternatives: int = 192
    costing: CostingOptions = field(default_factory=CostingOptions)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    compute_ci: bool = True


@dataclass
class AsalqaResult:
    """Everything the optimizer decided about one query."""

    query_name: str
    baseline_plan: LogicalNode
    plan: LogicalNode
    approximable: bool
    decisions: List[SamplerDecision]
    estimated_cost: PlanCost
    baseline_cost: PlanCost
    alternatives_explored: int
    qo_time_seconds: float

    @property
    def sampler_specs(self) -> list:
        return [
            node.spec
            for node in self.plan.walk()
            if isinstance(node, SamplerNode) and not isinstance(node.spec, PassThroughSpec)
        ]

    def sampler_kinds(self) -> List[str]:
        return [spec.kind for spec in self.sampler_specs]

    def estimated_gain(self) -> float:
        """Predicted Baseline/Quickr machine-hours ratio."""
        mine = self.estimated_cost.machine_hours
        if mine <= 0:
            return 1.0
        return self.baseline_cost.machine_hours / mine

    def summary(self) -> dict:
        return {
            "query": self.query_name,
            "approximable": self.approximable,
            "samplers": self.sampler_kinds(),
            "estimated_gain": round(self.estimated_gain(), 3),
            "alternatives": self.alternatives_explored,
            "qo_time_s": round(self.qo_time_seconds, 4),
        }


def _plans_with_paths(plan: LogicalNode):
    """Yield (node, path) pairs; paths are child-index tuples from the root."""

    def walk(node: LogicalNode, path: tuple):
        yield node, path
        for index, child in enumerate(node.children):
            yield from walk(child, path + (index,))

    yield from walk(plan, ())


def _sampler_paths(subtree: LogicalNode) -> List[tuple]:
    """Subtree-relative paths of the logical sampler states inside it."""
    return [
        path
        for node, path in _plans_with_paths(subtree)
        if isinstance(node, SamplerNode) and isinstance(node.spec, SamplerState)
    ]


def _replace_at(plan: LogicalNode, path: tuple, replacement: LogicalNode) -> LogicalNode:
    if not path:
        return replacement
    children = list(plan.children)
    children[path[0]] = _replace_at(children[path[0]], path[1:], replacement)
    return plan.with_children(children)


class Asalqa:
    """The sampler-aware query optimizer."""

    def __init__(self, catalog: Catalog, options: Optional[AsalqaOptions] = None):
        self.catalog = catalog
        self.options = options or AsalqaOptions()
        self.deriver = StatsDeriver(catalog)

    # -- public API -------------------------------------------------------------
    def optimize(self, query: Query) -> AsalqaResult:
        """Produce a sampled (or provably unapproximable) plan for a query."""
        start = time.perf_counter()
        baseline_plan = query.plan
        baseline_cost = self._cost(baseline_plan)

        with obs_trace.maybe_span("asalqa.seed", query=query.name) as span:
            seeded, num_seeded = seed_samplers(baseline_plan)
            if span is not None:
                span.attributes["seeded"] = num_seeded
        if num_seeded == 0:
            _LOG.debug("%s: no sampleable aggregation; unapproximable", query.name)
            return AsalqaResult(
                query_name=query.name,
                baseline_plan=baseline_plan,
                plan=baseline_plan,
                approximable=False,
                decisions=[],
                estimated_cost=baseline_cost,
                baseline_cost=baseline_cost,
                alternatives_explored=0,
                qo_time_seconds=time.perf_counter() - start,
            )

        with obs_trace.maybe_span("asalqa.explore", query=query.name) as span:
            candidates = self._explore(seeded)
            if span is not None:
                span.attributes["alternatives"] = len(candidates)
        with obs_trace.maybe_span("asalqa.cost", query=query.name) as span:
            best_plan, best_cost, best_decisions = None, None, []
            seen_physical: set = set()
            for candidate in candidates:
                physical, decisions = materialize_plan(
                    candidate, self.deriver, self.options.costing
                )
                stripped = strip_passthrough(physical)
                key = stripped.key()
                if key in seen_physical:
                    continue
                seen_physical.add(key)
                cost = self._cost(stripped)
                if best_cost is None or cost.machine_hours < best_cost.machine_hours:
                    best_plan, best_cost, best_decisions = stripped, cost, decisions
            if span is not None:
                span.attributes["unique_physical"] = len(seen_physical)

        live = [
            node
            for node in best_plan.walk()
            if isinstance(node, SamplerNode) and not isinstance(node.spec, PassThroughSpec)
        ]
        # The baseline plan always meets the accuracy goal, so a sampled plan
        # must actually beat it to be worth the added error (Section 4.2:
        # "picks the best performing plan among those that meet the desired
        # accuracy" — the plan without samplers is in that set).
        if live and best_cost.machine_hours >= baseline_cost.machine_hours * 0.98:
            live = []
        if not live:
            _LOG.debug(
                "%s: no sampled plan beats the baseline (%d alternatives); unapproximable",
                query.name,
                len(candidates),
            )
            return AsalqaResult(
                query_name=query.name,
                baseline_plan=baseline_plan,
                plan=baseline_plan,
                approximable=False,
                decisions=best_decisions,
                estimated_cost=baseline_cost,
                baseline_cost=baseline_cost,
                alternatives_explored=len(candidates),
                qo_time_seconds=time.perf_counter() - start,
            )

        with obs_trace.maybe_span("asalqa.finalize", query=query.name):
            final = finalize_plan(best_plan, compute_ci=self.options.compute_ci)
        _LOG.debug(
            "%s: approximable via %s (%d alternatives explored)",
            query.name,
            [type(n.spec).__name__ for n in live],
            len(candidates),
        )
        return AsalqaResult(
            query_name=query.name,
            baseline_plan=baseline_plan,
            plan=final,
            approximable=True,
            decisions=best_decisions,
            estimated_cost=best_cost,
            baseline_cost=baseline_cost,
            alternatives_explored=len(candidates),
            qo_time_seconds=time.perf_counter() - start,
        )

    # -- internals ---------------------------------------------------------------
    def _cost(self, plan: LogicalNode) -> PlanCost:
        return cost_plan(
            plan, lambda node, address: self.deriver.stats_for(node).rows, self.options.cluster
        )

    def _family_of(self, join: Join) -> int:
        return hash(join.key()) & 0x7FFFFFFF

    def _explore(self, seeded: LogicalNode) -> List[LogicalNode]:
        """Breadth-first generation of push-down alternatives."""
        tracer = obs_trace.current_tracer()
        seen: Dict[tuple, None] = {seeded.key(): None}
        frontier: List[LogicalNode] = [seeded]
        out: List[LogicalNode] = [seeded]
        limit = self.options.max_alternatives
        while frontier and len(out) < limit:
            plan = frontier.pop(0)
            for node, path in _plans_with_paths(plan):
                if not isinstance(node, SamplerNode) or not isinstance(node.spec, SamplerState):
                    continue
                for subtree in alternatives_below(node, self.deriver, self._family_of):
                    alternative = _replace_at(plan, path, subtree)
                    key = alternative.key()
                    if key in seen:
                        continue
                    seen[key] = None
                    if tracer is not None:
                        # One span per accepted rule firing: the sampler at
                        # ``path`` pushed past the operator now rooting the
                        # replaced subtree, landing at the ``after`` addresses.
                        span = tracer.begin(
                            "asalqa.pushdown",
                            rule=f"push_past_{type(subtree).__name__.lower()}",
                            before=format_address(path),
                            after=",".join(
                                format_address(path + sub)
                                for sub in _sampler_paths(subtree)
                            ),
                        )
                        tracer.end(span)
                    frontier.append(alternative)
                    out.append(alternative)
                    if len(out) >= limit:
                        return out
        return out
