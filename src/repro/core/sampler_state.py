"""Logical sampler state (paper Section 4.2.1).

During plan exploration, a sampler's *requirements* — rather than its
physical implementation — travel with it through the transformation rules.
The state is the 4-tuple the paper denotes ``{S, U, ds, sfm}``:

* ``strat_cols`` (S) — columns the sampler must stratify on so no answer
  group is missed;
* ``univ_cols`` (U) — columns the sampler must universe-sample on so a
  downstream join remains a perfect join on the chosen key subspace;
* ``ds`` — downstream selectivity: the cumulative selectivity of operators
  between the sampler and the answer (pushing past an un-stratified select
  shrinks it);
* ``sfm`` — stratification frequency multiplier: corrects group-support
  estimates when stratification columns are replaced by join keys with a
  different distinct count (Section 4.2.4).

Two bookkeeping fields extend the paper's tuple: ``cd_cols`` marks columns
that entered S only because of COUNT / COUNT DISTINCT (overlap between such
columns and U is explicitly allowed, Section 4.2.4), and ``family``
identifies paired universe samplers on the two inputs of a join so the
physical pass can give them identical parameters (Appendix A's global
requirement).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional

__all__ = ["SamplerState"]


@dataclass(frozen=True)
class SamplerState:
    """Requirements of a logical sampler during ASALQA exploration."""

    strat_cols: FrozenSet[str] = frozenset()
    univ_cols: FrozenSet[str] = frozenset()
    ds: float = 1.0
    sfm: float = 1.0
    cd_cols: FrozenSet[str] = frozenset()
    opt_cols: FrozenSet[str] = frozenset()
    value_cols: FrozenSet[str] = frozenset()
    family: Optional[int] = None

    def key(self) -> tuple:
        return (
            "state",
            tuple(sorted(self.strat_cols)),
            tuple(sorted(self.univ_cols)),
            round(self.ds, 9),
            round(self.sfm, 9),
            tuple(sorted(self.cd_cols)),
            tuple(sorted(self.opt_cols)),
            tuple(sorted(self.value_cols)),
            self.family,
        )

    # -- functional updates ------------------------------------------------------
    def with_strat(self, columns) -> "SamplerState":
        return replace(self, strat_cols=self.strat_cols | frozenset(columns))

    def with_univ(self, columns, family: Optional[int] = None) -> "SamplerState":
        return replace(
            self,
            univ_cols=frozenset(columns),
            family=family if family is not None else self.family,
        )

    def scaled_ds(self, factor: float) -> "SamplerState":
        return replace(self, ds=self.ds * factor)

    def scaled_sfm(self, factor: float) -> "SamplerState":
        return replace(self, sfm=self.sfm * factor)

    def renamed(self, mapping: dict) -> "SamplerState":
        """Rename all column references (pushing through projections/joins)."""
        return replace(
            self,
            strat_cols=frozenset(mapping.get(c, c) for c in self.strat_cols),
            univ_cols=frozenset(mapping.get(c, c) for c in self.univ_cols),
            cd_cols=frozenset(mapping.get(c, c) for c in self.cd_cols),
            opt_cols=frozenset(mapping.get(c, c) for c in self.opt_cols),
            value_cols=frozenset(mapping.get(c, c) for c in self.value_cols),
        )

    def dissonant(self) -> bool:
        """True when stratification and universe requirements clash.

        Columns in both S and U are troublesome: the universe sampler keeps
        only a subspace of their values while stratification wants them all.
        Overlap is tolerated when it is small relative to either set, or
        when the overlapping columns are in S only because of COUNT
        DISTINCT (whose estimate the universe sampler can rescale exactly).
        """
        overlap = (self.strat_cols & self.univ_cols) - self.cd_cols
        if not overlap:
            return False
        return len(overlap) >= min(len(self.strat_cols), len(self.univ_cols))

    def __repr__(self):
        parts = []
        if self.strat_cols:
            parts.append(f"S={sorted(self.strat_cols)}")
        if self.univ_cols:
            parts.append(f"U={sorted(self.univ_cols)}")
        parts.append(f"ds={self.ds:.3g}")
        parts.append(f"sfm={self.sfm:.3g}")
        if self.family is not None:
            parts.append(f"family={self.family}")
        return f"SamplerState({', '.join(parts)})"
