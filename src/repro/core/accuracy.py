"""Accuracy analysis of sampled plans (paper Section 4.3, Appendix B).

Three pieces:

* **Horvitz-Thompson estimation** (Proposition 3): unbiased estimates and
  one-pass variance for all three samplers. The grouped, vectorized forms
  live in the executor (:mod:`repro.engine.operators`); the standalone
  forms here are the reference used by tests and by plan analysis.
* **Group coverage** (Proposition 4): the probability that a group appears
  in the answer, per sampler.
* **Plan unrolling** (Figure 9): a plan with samplers at arbitrary
  locations is mapped — via the dominance rules — to an equivalent
  expression with a *single* sampler just below the aggregation. The
  unrolled sampler gives conservative (no-better) error predictions for
  the real plan, which is exactly how ASALQA certifies accuracy without
  simulating every intermediate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.algebra.logical import (
    Aggregate,
    Join,
    LogicalNode,
    Project,
    SamplerNode,
    Select,
    UnionAll,
)
from repro.engine.operators import Z_95
from repro.samplers.base import PassThroughSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec
from repro.stats.derivation import StatsDeriver

__all__ = [
    "ht_estimate",
    "ht_variance_independent",
    "ht_variance_universe",
    "confidence_interval",
    "miss_probability_uniform",
    "miss_probability_distinct",
    "miss_probability_universe",
    "UnrollStep",
    "UnrolledSampler",
    "AccuracyReport",
    "unroll_plan",
    "analyze_plan",
]


# -- Horvitz-Thompson estimators (Proposition 3, Equations 1-2) -----------------

def ht_estimate(values: np.ndarray, weights: np.ndarray) -> float:
    """Unbiased estimate of sum(values over the full population)."""
    return float(np.sum(np.asarray(values, dtype=np.float64) * np.asarray(weights, dtype=np.float64)))


def ht_variance_independent(values: np.ndarray, weights: np.ndarray) -> float:
    """Estimated variance when rows were included independently
    (uniform or distinct samplers): sum_i (w_i^2 - w_i) y_i^2."""
    v = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    return float(np.sum((w * w - w) * v * v))


def ht_variance_universe(values: np.ndarray, key_codes: np.ndarray, p: float) -> float:
    """Estimated variance under universe sampling: rows sharing a key value
    are perfectly correlated, so (1-p)/p^2 * sum_g (sum_{i in g} y_i)^2."""
    v = np.asarray(values, dtype=np.float64)
    codes = np.asarray(key_codes)
    _, inverse = np.unique(codes, return_inverse=True)
    sums = np.bincount(inverse, weights=v)
    return float((1.0 - p) / (p * p) * np.sum(sums * sums))


def confidence_interval(estimate: float, variance: float, z: float = Z_95) -> Tuple[float, float]:
    """Central-limit-theorem confidence interval."""
    half = z * math.sqrt(max(0.0, variance))
    return (estimate - half, estimate + half)


# -- group coverage (Proposition 4) ------------------------------------------------

def miss_probability_uniform(p: float, group_size: float) -> float:
    """P[group missed] = (1-p)^|G| for the uniform sampler."""
    if group_size <= 0:
        return 1.0
    return float((1.0 - p) ** group_size)


def miss_probability_distinct(p: float, group_size: float, stratified_on_group: bool) -> float:
    """Zero when the stratification columns contain the group-by columns;
    otherwise no worse than the uniform sampler."""
    if stratified_on_group:
        return 0.0
    return miss_probability_uniform(p, group_size)


def miss_probability_universe(p: float, distinct_key_values_in_group: float) -> float:
    """P[group missed] = (1-p)^|G(C)| where G(C) is the set of distinct
    key-subspace values among the group's rows."""
    if distinct_key_values_in_group <= 0:
        return 1.0
    return float((1.0 - p) ** distinct_key_values_in_group)


# -- plan unrolling (Figure 9) ---------------------------------------------------

@dataclass
class UnrollStep:
    """One dominance-rule application while floating a sampler to the root."""

    rule: str
    operator: str
    detail: str = ""


@dataclass
class UnrolledSampler:
    """The single at-root sampler equivalent (for analysis) of a plan."""

    kind: str
    p: float
    columns: Tuple[str, ...] = ()
    delta: Optional[int] = None
    steps: List[UnrollStep] = field(default_factory=list)


@dataclass
class AccuracyReport:
    """Predicted accuracy of a sampled plan at one aggregation."""

    unrolled: Optional[UnrolledSampler]
    groups: float
    support_per_group: float
    miss_probability: float
    relative_standard_error: float

    def meets_goal(self, max_miss: float = 1e-3, max_error: float = 0.2) -> bool:
        return self.miss_probability <= max_miss and self.relative_standard_error <= max_error


def _float_sampler_up(node: LogicalNode, steps: List[UnrollStep]):
    """Return the sampler spec floated to ``node``'s output, or None.

    Implements the inverted push-down rules: U1/U2/U3, D1/D2/D3 and
    V1/V2/V3a (Propositions 7-9). A universe family across a join collapses
    into one universe sampler above the join (rule V3a read right-to-left);
    independent samplers on both join sides compose into a sampler whose
    probability is the product (rule U3).
    """
    if isinstance(node, SamplerNode):
        if isinstance(node.spec, PassThroughSpec):
            return _float_sampler_up(node.child, steps)
        below = _float_sampler_up(node.child, steps)
        if below is not None:
            steps.append(UnrollStep("no-nesting", "sampler", "nested samplers are forbidden"))
        return node.spec
    if isinstance(node, (Select,)):
        spec = _float_sampler_up(node.child, steps)
        if spec is not None:
            rule = {"uniform": "U2", "distinct": "D2", "universe": "V2"}.get(spec.kind, "U2")
            steps.append(UnrollStep(rule, "select", "sampler commutes with selection"))
        return spec
    if isinstance(node, Project):
        spec = _float_sampler_up(node.child, steps)
        if spec is not None:
            rule = {"uniform": "U1", "distinct": "D1", "universe": "V1"}.get(spec.kind, "U1")
            steps.append(UnrollStep(rule, "project", "sampler commutes with projection"))
        return spec
    if isinstance(node, Join):
        left = _float_sampler_up(node.left, steps)
        right = _float_sampler_up(node.right, steps)
        if left is None and right is None:
            return None
        if left is None or right is None:
            only = left or right
            rule = {"uniform": "U3", "distinct": "D3b", "universe": "V3b"}.get(only.kind, "U3")
            steps.append(UnrollStep(rule, "join", "one-sided sampler floats above the join"))
            return only
        if (
            isinstance(left, UniverseSpec)
            and isinstance(right, UniverseSpec)
            and left.same_subspace_as(right)
        ):
            steps.append(
                UnrollStep(
                    "V3a",
                    "join",
                    "paired universe samplers equal one universe sampler of the join output",
                )
            )
            return UniverseSpec(left.columns, left.p, seed=left.seed)
        # Independent samplers on both sides: composed inclusion is the
        # product of probabilities (rule U3 with p = p1 * p2).
        p1 = getattr(left, "p", 1.0)
        p2 = getattr(right, "p", 1.0)
        steps.append(UnrollStep("U3", "join", f"independent samplers compose: p = {p1:g} * {p2:g}"))
        return UniformSpec(max(1e-12, p1 * p2), seed=getattr(left, "seed", 0))
    if isinstance(node, UnionAll):
        specs = [_float_sampler_up(c, steps) for c in node.children]
        live = [s for s in specs if s is not None]
        if not live:
            return None
        steps.append(UnrollStep("union", "union-all", "identical samplers merge across branches"))
        return live[0]
    if isinstance(node, Aggregate):
        # Nested aggregation boundary: inner estimates are treated as exact.
        return None
    if node.children:
        return _float_sampler_up(node.children[0], steps)
    return None


def unroll_plan(plan: LogicalNode) -> Optional[UnrolledSampler]:
    """Figure 9: collapse a plan's samplers into one at-root equivalent."""
    aggregates = [n for n in plan.walk() if isinstance(n, Aggregate)]
    if not aggregates:
        return None
    root_aggregate = aggregates[0]
    steps: List[UnrollStep] = []
    spec = _float_sampler_up(root_aggregate.child, steps)
    if spec is None:
        return None
    return UnrolledSampler(
        kind=spec.kind,
        p=getattr(spec, "p", 1.0),
        columns=tuple(getattr(spec, "columns", ())),
        delta=getattr(spec, "delta", None),
        steps=steps,
    )


def analyze_plan(plan: LogicalNode, deriver: StatsDeriver) -> AccuracyReport:
    """Predict miss probability and relative error for a sampled plan.

    Uses the unrolled single-sampler equivalent plus derived statistics: a
    group's support is the unsampled rows-per-group at the aggregation
    input; by dominance, the true plan's error is no worse than the
    unrolled sampler's error at that support.
    """
    aggregates = [n for n in plan.walk() if isinstance(n, Aggregate)]
    if not aggregates:
        return AccuracyReport(None, 0.0, 0.0, 0.0, 0.0)
    aggregate = aggregates[0]
    stats = deriver.stats_for(aggregate.child)
    groups = stats.distinct(aggregate.group_by) if aggregate.group_by else 1.0
    # Support is defined on the unsampled relation: divide out the sampler's
    # expected pass fraction if a sampler sits directly below.
    rows = stats.rows
    unrolled = unroll_plan(plan)
    if unrolled is None:
        return AccuracyReport(None, groups, rows / max(1.0, groups), 0.0, 0.0)
    unsampled_rows = rows / max(unrolled.p, 1e-12) if unrolled.p < 1.0 else rows
    support = unsampled_rows / max(1.0, groups)

    if unrolled.kind == "universe":
        sampler_node_inputs = [
            n for n in plan.walk() if isinstance(n, SamplerNode) and isinstance(n.spec, UniverseSpec)
        ]
        key_values = support
        if sampler_node_inputs:
            child_stats = deriver.stats_for(sampler_node_inputs[0].child)
            key_values = min(support, child_stats.distinct(sampler_node_inputs[0].spec.columns))
        miss = miss_probability_universe(unrolled.p, key_values)
        kept = max(1.0, unrolled.p * key_values)
    elif unrolled.kind == "distinct":
        strat_covers_group = set(aggregate.group_by) <= set(unrolled.columns)
        miss = miss_probability_distinct(unrolled.p, support, strat_covers_group)
        kept = max(1.0, max(unrolled.delta or 0, unrolled.p * support))
    else:
        miss = miss_probability_uniform(unrolled.p, support)
        kept = max(1.0, unrolled.p * support)

    relative_se = 1.0 / math.sqrt(kept)
    return AccuracyReport(
        unrolled=unrolled,
        groups=groups,
        support_per_group=support,
        miss_probability=miss,
        relative_standard_error=relative_se,
    )
