"""Sampled-view reuse — the paper's first "future work" direction (§7):

    "Queries can be sped up further by reusing sampled views [28]."

When ASALQA places a sampler over some sub-expression, the sampler's output
is a *sampled view* of that sub-expression. A later query whose plan
contains a structurally identical sampled sub-expression can read the
materialized view instead of re-scanning and re-sampling the inputs —
turning Quickr's zero-apriori-overhead lazy sampling into an incremental
cache that pays for itself after the first query.

Correctness requirements implemented here:

* **Structural identity** — views are keyed by the canonical plan
  fingerprint (:func:`repro.algebra.addressing.plan_fingerprint`): the same
  core expression *and* the same sampler spec, including seed (so universe
  families stay consistent across queries), with commutative plan parts
  canonicalized — a later query that writes the same join with its inputs
  swapped still hits the view.
* **Staleness** — views are tagged with the epochs of the base tables they
  read; bumping a table's epoch (data changed) invalidates its views.
* **Budget** — the store holds at most ``max_rows`` across views and
  evicts least-recently-used views first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.algebra.addressing import plan_fingerprint
from repro.algebra.analysis import base_tables
from repro.algebra.logical import LogicalNode, SamplerNode, Scan
from repro.engine.table import Table
from repro.errors import PlanError

__all__ = ["SampledView", "ViewStore", "MaterializingExecutor"]


@dataclass
class SampledView:
    """One cached sampler output, keyed by its canonical plan fingerprint."""

    key: str
    table: Table
    source_tables: frozenset
    epochs: Tuple[Tuple[str, int], ...]
    created_at: float
    last_used_at: float
    hits: int = 0

    @property
    def rows(self) -> int:
        return self.table.num_rows


class ViewStore:
    """An LRU store of sampled views with staleness tracking."""

    def __init__(self, max_rows: int = 1_000_000):
        self.max_rows = int(max_rows)
        self._views: Dict[str, SampledView] = {}
        self._epochs: Dict[str, int] = {}

    # -- epochs -----------------------------------------------------------------
    def epoch_of(self, table_name: str) -> int:
        return self._epochs.get(table_name, 0)

    def bump_epoch(self, table_name: str) -> None:
        """Signal that a base table changed; its views become stale."""
        self._epochs[table_name] = self.epoch_of(table_name) + 1
        stale = [
            key
            for key, view in self._views.items()
            if table_name in view.source_tables
        ]
        for key in stale:
            del self._views[key]

    # -- store ---------------------------------------------------------------------
    def total_rows(self) -> int:
        return sum(v.rows for v in self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def put(self, plan: SamplerNode, table: Table) -> Optional[SampledView]:
        """Materialize a sampler node's output. Oversized views are skipped."""
        if not isinstance(plan, SamplerNode):
            raise PlanError("only sampler outputs are materialized as sampled views")
        if table.num_rows > self.max_rows:
            return None
        sources = frozenset(base_tables(plan))
        view = SampledView(
            key=plan_fingerprint(plan),
            table=table,
            source_tables=sources,
            epochs=tuple(sorted((name, self.epoch_of(name)) for name in sources)),
            created_at=time.monotonic(),
            last_used_at=time.monotonic(),
        )
        self._views[view.key] = view
        self._evict()
        return view

    def get(self, plan: LogicalNode) -> Optional[SampledView]:
        """A fresh view for this (canonically identical) sub-plan, or None."""
        view = self._views.get(plan_fingerprint(plan))
        if view is None:
            return None
        current = tuple(sorted((name, self.epoch_of(name)) for name in view.source_tables))
        if current != view.epochs:
            del self._views[view.key]
            return None
        view.last_used_at = time.monotonic()
        view.hits += 1
        return view

    def _evict(self) -> None:
        while self.total_rows() > self.max_rows and self._views:
            oldest = min(self._views.values(), key=lambda v: v.last_used_at)
            del self._views[oldest.key]

    def stats(self) -> dict:
        return {
            "views": len(self._views),
            "rows": self.total_rows(),
            "hits": sum(v.hits for v in self._views.values()),
        }


class MaterializingExecutor:
    """An executor wrapper that materializes and reuses sampled views.

    On execution, every live sampler sub-plan is looked up in the store;
    hits replace the whole subtree's work with a cached-table read, misses
    execute normally and populate the store. The cost model sees the reuse
    as a scan of the view's cardinality — which is exactly what a cluster
    reading a materialized view would pay.
    """

    def __init__(self, executor, store: Optional[ViewStore] = None):
        self.executor = executor
        self.store = store if store is not None else ViewStore()

    def execute(self, query):
        from repro.algebra.builder import Query

        plan = query.plan if isinstance(query, Query) else query
        rewritten, reused = self._rewrite(plan)
        result = self.executor.execute(rewritten)
        if not reused:
            self._harvest(plan, result)
        return result

    # -- internals --------------------------------------------------------------
    def _rewrite(self, plan: LogicalNode):
        """Replace cached sampler subtrees with scans of their views."""
        reused = False

        def visit(node: LogicalNode) -> LogicalNode:
            nonlocal reused
            if isinstance(node, SamplerNode):
                view = self.store.get(node)
                if view is not None:
                    reused = True
                    name = self._register_view(view)
                    return Scan(name, node.output_columns())
            if not node.children:
                return node
            return node.with_children([visit(c) for c in node.children])

        return visit(plan), reused

    def _register_view(self, view: SampledView) -> str:
        # The fingerprint is stable across processes and runs, so the view's
        # catalog name is too (unlike hash(), which is salted per process).
        name = f"__view_{view.key[:12]}"
        database = self.executor.database
        if name not in database:
            database.register(Table(name, view.table.to_dict()))
        return name

    def _harvest(self, plan: LogicalNode, result) -> None:
        """Materialize every executed sampler output into the store."""

        for node in plan.walk():
            if isinstance(node, SamplerNode) and hasattr(node.spec, "apply"):
                if self.store.get(node) is not None:
                    continue
                # Re-derive the sampler's output deterministically (the
                # sampler seeds are fixed, so this equals what the main
                # execution produced).
                sub_result = self.executor.execute(node)
                self.store.put(node, sub_result.table)
