"""Successor rewriting: aggregates become unbiased estimators (Table 8).

After ASALQA settles the physical samplers, every aggregation above a
sampler is replaced by a :class:`WeightedAggregate` — the "successor" of
the seeding split. The executor then computes, per the paper's Table 8:

====================  ==================================================
true value            estimate rewritten by Quickr
====================  ==================================================
SUM(x)                SUM(w * x)
COUNT(*)              SUM(w)
AVG(x)                SUM(w * x) / SUM(w)
SUM(IF(f(x), y, z))   SUM(IF(f(x), w * y, w * z))
COUNT(DISTINCT x)     COUNT(DISTINCT x) * (universe-sampled on x ? w : 1)
====================  ==================================================

plus an optional confidence-interval column per aggregate (the successor's
"(b) appends an optional column that offers a confidence interval").

The COUNT DISTINCT universe correction is the paper's observation that the
number of unique values in the chosen subspace scales up by the inverse of
the fraction of subspace chosen — the same column the sampler sub-samples
on can still be counted.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.algebra.aggregates import AggKind
from repro.algebra.logical import Aggregate, Join, LogicalNode, SamplerNode
from repro.samplers.base import PassThroughSpec
from repro.samplers.universe import UniverseSpec

__all__ = ["WeightedAggregate", "finalize_plan", "samplers_below"]


class WeightedAggregate(Aggregate):
    """Aggregate annotated with Horvitz-Thompson estimation metadata.

    ``universe_rescale`` maps COUNT DISTINCT aliases to their 1/p factor
    when a universe sampler below subsumes the counted columns.
    ``universe_variance`` is ``(universe column names, p)`` when the
    sub-plan's dominant sampler is a universe sampler, switching the
    variance estimator to the correlated-inclusion form.
    """

    def __init__(
        self,
        child: LogicalNode,
        group_by,
        aggs,
        compute_ci: bool = True,
        universe_rescale: Optional[Dict[str, float]] = None,
        universe_variance: Optional[Tuple[Tuple[str, ...], float]] = None,
    ):
        super().__init__(child, group_by, aggs)
        self.compute_ci = compute_ci
        self.universe_rescale = dict(universe_rescale or {})
        self.universe_variance = universe_variance

    def with_children(self, children) -> "WeightedAggregate":
        (child,) = children
        return WeightedAggregate(
            child,
            self.group_by,
            self.aggs,
            self.compute_ci,
            self.universe_rescale,
            self.universe_variance,
        )

    def key(self) -> tuple:
        rescale = tuple(sorted(self.universe_rescale.items()))
        return ("wagg", self.group_by, tuple(a.key() for a in self.aggs), rescale, self.child.key())


def join_key_equivalence(node: LogicalNode) -> Dict[str, str]:
    """Union-find over equi-join key pairs: column -> class representative.

    Inside an aggregate's subtree, `ss_customer_sk = sr_customer_sk = ...`
    all carry the same values on surviving rows, so a universe sampler on
    any of them restricts the value subspace of all of them. COUNT DISTINCT
    rescaling and variance grouping use this equivalence.
    """
    parent: Dict[str, str] = {}

    def find(col: str) -> str:
        parent.setdefault(col, col)
        while parent[col] != col:
            parent[col] = parent[parent[col]]
            col = parent[col]
        return col

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for current in node.walk():
        if isinstance(current, Join):
            for lk, rk in zip(current.left_keys, current.right_keys):
                union(lk, rk)
    return {col: find(col) for col in list(parent)}


def samplers_below(node: LogicalNode, stop_at_aggregate: bool = True):
    """Physical samplers in the subtree, not crossing nested aggregations."""
    found = []

    def visit(current: LogicalNode) -> None:
        if stop_at_aggregate and isinstance(current, Aggregate) and current is not node:
            return
        if isinstance(current, SamplerNode) and not isinstance(current.spec, PassThroughSpec):
            found.append(current.spec)
        for child in current.children:
            visit(child)

    visit(node)
    return found


def _universe_annotations(
    aggregate: Aggregate, specs: Sequence
) -> Tuple[Dict[str, float], Optional[Tuple[Tuple[str, ...], float]]]:
    """COUNT DISTINCT rescale factors and variance mode for one aggregate."""
    universes = [s for s in specs if isinstance(s, UniverseSpec)]
    if not universes:
        return {}, None
    equivalence = join_key_equivalence(aggregate)

    def canonical(columns) -> frozenset:
        return frozenset(equivalence.get(c, c) for c in columns)

    rescale: Dict[str, float] = {}
    for agg in aggregate.aggs:
        if agg.kind is AggKind.COUNT_DISTINCT and agg.expr is not None:
            counted = canonical(agg.expr.columns())
            # The sampler kept a p-fraction of the key subspace; when the
            # counted columns include some universe sampler's key columns
            # (up to equi-join equivalence), the in-sample distinct count
            # scales up by exactly 1/p.
            for universe in universes:
                if counted and canonical(universe.columns) <= counted:
                    rescale[agg.alias] = 1.0 / universe.p
                    break
    # For variance, the correlated unit is the key-subspace value. Use any
    # column of the aggregate input that is join-equivalent to the universe
    # columns; paired family members share p.
    available = set(aggregate.child.output_columns())
    representative = universes[0]
    target = canonical(representative.columns)
    ucols_present = tuple(
        c for c in sorted(available) if equivalence.get(c, c) in target
    )[: len(representative.columns)]
    variance_mode = (ucols_present or tuple(representative.columns), representative.p)
    return rescale, variance_mode


def finalize_plan(plan: LogicalNode, compute_ci: bool = True) -> LogicalNode:
    """Rewrite every aggregate above live samplers into its successor form."""

    def visit(node: LogicalNode) -> LogicalNode:
        children = [visit(c) for c in node.children]
        node = node.with_children(children) if node.children else node
        if isinstance(node, Aggregate) and not isinstance(node, WeightedAggregate):
            specs = samplers_below(node)
            if specs:
                rescale, variance_mode = _universe_annotations(node, specs)
                return WeightedAggregate(
                    node.child,
                    node.group_by,
                    node.aggs,
                    compute_ci=compute_ci,
                    universe_rescale=rescale,
                    universe_variance=variance_mode,
                )
        return node

    return visit(plan)
