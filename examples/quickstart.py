"""Quickstart: approximate a query with zero setup.

Builds a TPC-DS-style database, writes an ad-hoc aggregation query, and
lets Quickr decide whether and how to sample it. No apriori samples, no
configuration — the optimizer injects the sampler and rewrites the
aggregates into unbiased estimators with confidence intervals.

Run:  python examples/quickstart.py
"""

from repro import Executor, QuickrPlanner, col, scan
from repro.algebra import avg, count, sum_
from repro.workloads.tpcds import generate_tpcds


def main():
    print("Generating a TPC-DS-style database ...")
    db = generate_tpcds(scale=0.4, seed=7)
    print(f"  {db.total_rows():,} rows across {len(db.table_names())} tables\n")

    # An ad-hoc query: average basket stats per item category under
    # e-mail promotions (the shape of TPC-DS q7).
    query = (
        scan(db, "store_sales")
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .join(scan(db, "promotion"), on=[("ss_promo_sk", "p_promo_sk")])
        .where(col("p_channel_email") == 1)
        .groupby("i_category")
        .agg(
            avg(col("ss_quantity"), "avg_quantity"),
            sum_(col("ss_ext_sales_price"), "revenue"),
            count("baskets"),
        )
        .build("category_report")
    )

    planner = QuickrPlanner(db)
    executor = Executor(db)

    # Baseline: the same optimizer without samplers.
    baseline = planner.plan_baseline(query)
    exact = executor.execute(baseline.plan)

    # Quickr: ASALQA decides whether/where to sample.
    result = planner.plan(query)
    print(f"ASALQA decision: approximable={result.approximable}, samplers={result.sampler_kinds()}")
    for decision in result.decisions:
        print(f"  {decision.spec!r}  <- {decision.reason}")
    approx = executor.execute(result.plan)

    gain = exact.cost.machine_hours / approx.cost.machine_hours
    print(f"\nmachine-hours gain: {gain:.2f}x  (runtime gain "
          f"{exact.cost.runtime / approx.cost.runtime:.2f}x)\n")

    print(f"{'category':<14}{'revenue (exact)':>18}{'revenue (approx)':>18}{'+-95% CI':>12}")
    exact_map = dict(zip(exact.table.column("i_category"), exact.table.column("revenue")))
    for i in range(approx.table.num_rows):
        cat = approx.table.column("i_category")[i]
        est = approx.table.column("revenue")[i]
        ci = approx.table.column("revenue__ci")[i] if approx.table.has_column("revenue__ci") else 0.0
        print(f"{cat:<14}{exact_map.get(cat, float('nan')):>18,.0f}{est:>18,.0f}{ci:>12,.0f}")


if __name__ == "__main__":
    main()
